"""The minimizer-based indexes: MWST, MWSA, MWST-G, MWSA-G.

All four variants share the :class:`MinimizerIndexData` built in
:mod:`repro.indexes.minimizer_core`; they differ in

* how the leaf collections are searched — the tree variants (MWST*) walk a
  compacted trie, the array variants (MWSA*) binary-search the sorted leaf
  arrays (exactly the suffix-tree vs suffix-array trade-off of the paper);
* how candidates are generated — the plain variants use the simple,
  practically fast query of Section 5 (match the longer pattern piece, then
  verify every candidate), the *-G* variants implement the Theorem 9 query
  that intersects both pieces through a 2D range-reporting grid.

Every variant verifies its candidates against the weighted string, so all of
them return exactly ``Occ_{1/z}(P, X)``.
"""

from __future__ import annotations

import time

from ..core.estimation import ZEstimation
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..geometry.grid import Grid2D
from ..sampling.minimizers import MinimizerScheme
from .base import UncertainStringIndex
from .engine import locate_minimizer_batch
from .minimizer_core import MinimizerIndexData, build_index_data_from_estimation
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel
from .verification import verify_against_source

__all__ = [
    "MinimizerIndexBase",
    "MinimizerWST",
    "MinimizerWSA",
    "GridMinimizerWST",
    "GridMinimizerWSA",
]


class MinimizerIndexBase(UncertainStringIndex):
    """Shared implementation of the four minimizer-based index variants."""

    name = "MWST"
    #: Tree variants walk compacted tries; array variants binary-search leaves.
    use_trie = True
    #: Grid variants intersect both pattern pieces through the 2D grid.
    use_grid = False

    def __init__(
        self,
        source: WeightedString,
        z: float,
        data: MinimizerIndexData,
        stats: IndexStats,
        grid: Grid2D | None = None,
    ) -> None:
        super().__init__(source, z)
        self._data = data
        self._stats = stats
        self._grid = grid
        self._grid_brute_force_limit: int | None = (
            grid.brute_force_limit if grid is not None else None
        )
        self._forward_trie = None
        self._backward_trie = None
        if self.use_trie:
            self._forward_trie = data.forward.build_trie()
            self._backward_trie = data.backward.build_trie()

    # -- construction -----------------------------------------------------------------
    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        ell: int,
        *,
        scheme: MinimizerScheme | None = None,
        estimation: ZEstimation | None = None,
        data: MinimizerIndexData | None = None,
        space_model: SpaceModel = DEFAULT_SPACE_MODEL,
        method: str = "vectorized",
        grid_brute_force_limit: int | None = None,
    ) -> "MinimizerIndexBase":
        """Build the index through the explicit z-estimation path (Lemma 5).

        A pre-built :class:`MinimizerIndexData` (or z-estimation) may be
        shared across variants; the benchmark harness relies on this to
        compare the variants on identical samples.  ``method`` selects the
        array-backed fast path (default) or the per-leaf reference path.
        ``grid_brute_force_limit`` overrides the grid's backend-selection
        threshold (grid variants only; ignored elsewhere).
        """
        started = time.perf_counter()
        tracker = ConstructionTracker()
        # The input probability matrix is resident during every construction.
        tracker.allocate(space_model.probabilities(len(source) * source.sigma))
        if data is None:
            data = build_index_data_from_estimation(
                source, z, ell, scheme=scheme, estimation=estimation, method=method
            )
        elif data.ell != ell:
            raise ConstructionError(
                f"shared index data was built for ell={data.ell}, not ell={ell}"
            )
        entries = data.counters.get("estimation_entries", len(source) * int(z))
        # Explicit construction keeps the z-estimation plus the sampled leaves.
        tracker.allocate(space_model.codes(entries) + space_model.words(entries))
        tracker.allocate(
            data.forward.size_bytes(space_model) + data.backward.size_bytes(space_model)
        )
        grid = None
        if cls.use_grid:
            if data.pairs is None:
                raise ConstructionError(
                    "grid variants need the leaf pairing; build the index data "
                    "with keep_pairs=True (the estimation path does by default)"
                )
            grid = Grid2D(data.pairs, brute_force_limit=grid_brute_force_limit)
            tracker.allocate(space_model.words(4 * len(data.pairs)))
        index_size = data.size_bytes(
            space_model, as_tree=cls.use_trie, with_grid=cls.use_grid
        )
        stats = IndexStats(
            name=cls.name,
            index_size_bytes=index_size,
            construction_space_bytes=tracker.peak_bytes,
            construction_seconds=time.perf_counter() - started,
            counters=dict(data.counters),
        )
        return cls(source, z, data, stats, grid)

    # -- updates ----------------------------------------------------------------------------
    def _rebuild_updated(self, positions) -> dict:
        """Localized repair: re-derive only the leaves an update touched.

        :func:`~repro.indexes.minimizer_core.apply_updates_to_data` diffs the
        old and new derivations and rebuilds only the affected leaves (plus
        the query caches on top); when the data cannot be repaired locally —
        space-efficient construction, store-loaded data, or updates dirtying
        most of the index — it returns ``None`` and the universal
        full-rebuild strategy takes over.
        """
        from .minimizer_core import apply_updates_to_data

        outcome = apply_updates_to_data(self._data, positions)
        if outcome is None:
            return super()._rebuild_updated(positions)
        data, details = outcome
        self._data = data
        self._forward_trie = self._backward_trie = None
        if self.use_trie:
            self._forward_trie = data.forward.build_trie()
            self._backward_trie = data.backward.build_trie()
        self._grid = (
            Grid2D(data.pairs, brute_force_limit=self._grid_brute_force_limit)
            if self.use_grid
            else None
        )
        self._stats.index_size_bytes = data.size_bytes(
            as_tree=self.use_trie, with_grid=self.use_grid
        )
        self._stats.counters.update(
            {key: data.counters[key] for key in ("forward_leaves", "backward_leaves")}
        )
        return details

    # -- queries ----------------------------------------------------------------------------
    @property
    def minimum_pattern_length(self) -> int:
        return self._data.ell

    @property
    def data(self) -> MinimizerIndexData:
        """The shared minimizer index data (for inspection and tests)."""
        return self._data

    @property
    def grid(self) -> Grid2D | None:
        """The 2D range-reporting grid (grid variants only)."""
        return self._grid

    def _range(self, collection, trie, piece) -> tuple[int, int]:
        if self.use_trie and trie is not None:
            return trie.descend(piece)
        return collection.prefix_range(piece)

    def _candidates(self, codes) -> set[int]:
        data = self._data
        mu, forward_piece, backward_piece = data.split_pattern(codes)
        if self.use_grid:
            flo, fhi = self._range(data.forward, self._forward_trie, forward_piece)
            blo, bhi = self._range(data.backward, self._backward_trie, backward_piece)
            if flo >= fhi or blo >= bhi:
                return set()
            points = self._grid.report(flo, fhi, blo, bhi)
            forward_positions = data.forward.positions
            return {int(forward_positions[x]) - mu for x, _ in points}
        # Simple query (Section 5): search only the longer piece, verify later.
        if len(forward_piece) >= len(backward_piece):
            lo, hi = self._range(data.forward, self._forward_trie, forward_piece)
            return data.candidate_positions(range(lo, hi), data.forward, mu)
        lo, hi = self._range(data.backward, self._backward_trie, backward_piece)
        return data.candidate_positions(range(lo, hi), data.backward, mu)

    def _locate_codes(self, codes) -> list[int]:
        """Scalar strategy: candidate generation + per-candidate verification."""
        results = []
        for candidate in self._candidates(codes):
            if candidate < 0 or candidate + len(codes) > len(self._source):
                continue
            if verify_against_source(self._source, codes, candidate, self._z):
                results.append(candidate)
        return sorted(results)

    def _batch_locate(self, code_lists: list) -> list[list[int]]:
        """Vectorised batch strategy shared by all minimizer variants."""
        return locate_minimizer_batch(self, code_lists)

    def _batch_locate_probs(self, code_lists: list):
        """Batch strategy surfacing the verification stage's exact products."""
        return locate_minimizer_batch(self, code_lists, with_probabilities=True)


class MinimizerWST(MinimizerIndexBase):
    """MWST: minimizer solid-factor *trees* with the simple Section-5 query."""

    name = "MWST"
    use_trie = True
    use_grid = False


class MinimizerWSA(MinimizerIndexBase):
    """MWSA: array (binary-search) variant with the simple Section-5 query."""

    name = "MWSA"
    use_trie = False
    use_grid = False


class GridMinimizerWST(MinimizerIndexBase):
    """MWST-G: tree variant with the Theorem 9 grid-based query."""

    name = "MWST-G"
    use_trie = True
    use_grid = True


class GridMinimizerWSA(MinimizerIndexBase):
    """MWSA-G: array variant with the Theorem 9 grid-based query."""

    name = "MWSA-G"
    use_trie = False
    use_grid = True
