"""The query model and the unified planner/executor of every index variant.

Historically each index answered exactly one query shape — ``locate``, the
sorted z-valid occurrence positions — through its own scalar loop, while the
batch engine, the sharded fan-out and the CLI each re-implemented the
validate / deduplicate / dispatch steps around it.  This module replaces all
of that with one pipeline:

* :class:`Query` describes a request: a pattern, a :class:`QueryMode`
  (``exists`` / ``count`` / ``locate`` / ``locate_probs`` / ``topk``), an
  optional per-query threshold override ``z`` and an optional multi-z sweep
  ``zs``;
* :class:`QueryResult` carries the answer — occurrence positions **and**
  their exact occurrence probabilities, which the verification stage used to
  compute and throw away;
* :class:`QueryPlanner` turns a batch of queries into an
  :class:`ExecutionPlan` (coerce + validate once, deduplicate patterns,
  choose the scalar or batch strategy — the sharded index's strategies fan
  out across its shards) and executes it through the index's
  ``_locate_codes`` / ``_batch_locate`` / ``_batch_locate_probs`` hooks.

Exactness contract: ``locate`` positions are bit-identical to the historical
per-variant query loops (the planner calls the very same strategies), and
every reported probability equals the brute-force left-to-right ``float64``
product ``p(P[0]) · p(P[1]) · ...`` exactly (see
:func:`~repro.indexes.verification.exact_occurrence_products`).

Threshold overrides answer *stricter* thresholds only: an occurrence valid
for ``z' <= z`` is necessarily valid for the built ``z``, so the planner
filters the indexed answer; ``z' > z`` would require occurrences the index
never stored and raises :class:`~repro.errors.QueryError`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..core.numerics import solid_probability_mask, validate_threshold
from ..errors import PatternError, QueryError
from .base import coerce_pattern_array

__all__ = ["QueryMode", "Query", "QueryResult", "ExecutionPlan", "QueryPlanner"]


class QueryMode(str, Enum):
    """What a query asks for about its pattern's z-valid occurrences."""

    #: Is there at least one occurrence?
    EXISTS = "exists"
    #: How many occurrences are there?
    COUNT = "count"
    #: The sorted occurrence positions (the classic query).
    LOCATE = "locate"
    #: The sorted positions together with their occurrence probabilities.
    LOCATE_PROBS = "locate_probs"
    #: The ``k`` most probable occurrences, most probable first.
    TOPK = "topk"


#: Modes whose results carry per-occurrence probabilities.
_PROBABILITY_MODES = (QueryMode.LOCATE_PROBS, QueryMode.TOPK)


@dataclass(frozen=True)
class Query:
    """One query request (pattern + mode + optional threshold overrides).

    ``z`` answers at a single stricter threshold; ``zs`` sweeps several
    thresholds in one request (the result then carries one sub-result per
    z in :attr:`QueryResult.sweep`).  The two are mutually exclusive.
    """

    pattern: object
    mode: QueryMode = QueryMode.LOCATE
    k: int | None = None
    z: float | None = None
    zs: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        try:
            mode = QueryMode(self.mode)
        except ValueError:
            known = ", ".join(m.value for m in QueryMode)
            raise QueryError(
                f"unknown query mode {self.mode!r}; known modes: {known}"
            ) from None
        object.__setattr__(self, "mode", mode)
        if mode is QueryMode.TOPK:
            try:
                k = None if self.k is None else int(self.k)
            except (TypeError, ValueError):
                raise QueryError(f"k must be an integer, got {self.k!r}") from None
            if k is None or k < 1:
                raise QueryError("topk queries need k >= 1")
            object.__setattr__(self, "k", k)
        elif self.k is not None:
            raise QueryError(
                f"k is only meaningful for topk queries, not {mode.value!r}"
            )
        if self.z is not None and self.zs is not None:
            raise QueryError("give either a z override or a multi-z sweep, not both")
        if self.z is not None:
            object.__setattr__(self, "z", validate_threshold(self.z))
        if self.zs is not None:
            zs = tuple(validate_threshold(value) for value in self.zs)
            if not zs:
                raise QueryError("a multi-z sweep needs at least one z value")
            object.__setattr__(self, "zs", zs)


@dataclass
class QueryResult:
    """The answer to one :class:`Query` (treat as read-only).

    ``count`` and ``exists`` are always filled for single-z results;
    ``positions`` / ``probabilities`` are filled according to the mode
    (``topk`` results are ordered most-probable-first, position-ascending on
    ties; every other mode reports positions in ascending order).  Multi-z
    sweep results have ``z is None`` and one single-z result per requested
    threshold in :attr:`sweep`.
    """

    pattern: object
    mode: QueryMode
    z: float | None
    count: int | None = None
    exists: bool = False
    positions: list[int] | None = None
    probabilities: list[float] | None = None
    sweep: tuple["QueryResult", ...] | None = None

    def as_dict(self) -> dict:
        """JSON-ready dictionary (``None`` payload fields are omitted)."""
        payload: dict = {"mode": self.mode.value}
        if isinstance(self.pattern, str):
            payload["pattern"] = self.pattern
        else:
            payload["pattern"] = [int(code) for code in self.pattern]
        if self.sweep is not None:
            payload["exists"] = self.exists
            payload["sweep"] = [result.as_dict() for result in self.sweep]
            return payload
        payload["z"] = self.z
        payload["count"] = self.count
        payload["exists"] = self.exists
        if self.positions is not None:
            payload["positions"] = self.positions
        if self.probabilities is not None:
            payload["probabilities"] = self.probabilities
        return payload


@dataclass
class ExecutionPlan:
    """A validated, deduplicated batch of queries with a chosen strategy.

    ``strategy`` is ``"scalar"`` (a single distinct pattern answered through
    the index's scalar query path) or ``"batch"`` (the vectorised batch
    strategy); ``fan_out`` records whether the index distributes either
    strategy across shards.  ``assignment[i]`` maps query ``i`` to its slot
    in ``unique_codes``; ``z_values[i]`` lists the effective thresholds the
    query must be answered at; ``probability_slots`` are the unique-pattern
    slots referenced by at least one probability-reporting query (only those
    pay for exact products).
    """

    queries: list[Query]
    prepared: list[np.ndarray]
    unique_codes: list[np.ndarray]
    assignment: list[int]
    z_values: list[tuple[float, ...]]
    probability_slots: frozenset[int]
    strategy: str
    fan_out: bool


class QueryPlanner:
    """Plans and executes query batches over one index.

    Every public query entry point of the library —
    ``UncertainStringIndex.locate/count/exists/query/query_many``,
    ``BatchQueryEngine.match_many`` and the serving layer's
    :class:`~repro.service.QueryService` — funnels through this class, so
    every variant (monolithic or sharded, freshly built or store-loaded)
    validates, deduplicates and answers queries identically.
    """

    def __init__(self, index) -> None:
        self._index = index
        self.last_stats: dict = {}

    @property
    def index(self):
        """The planned-over index."""
        return self._index

    # -- planning ---------------------------------------------------------------
    def plan(self, queries: Sequence) -> ExecutionPlan:
        """Validate and deduplicate ``queries`` and choose a strategy.

        Entries may be :class:`Query` objects or bare patterns (answered in
        ``locate`` mode).  Pattern validation mirrors the scalar path's
        ``_prepare_pattern`` exactly — including its error messages — but
        costs one concatenated min/max reduction for the whole batch.
        """
        index = self._index
        normalized = [
            query if isinstance(query, Query) else Query(query) for query in queries
        ]
        prepared = [
            coerce_pattern_array(query.pattern, index.source, validate=False)
            for query in normalized
        ]
        self._validate_patterns(prepared)
        index_z = index.z
        z_values: list[tuple[float, ...]] = []
        for query in normalized:
            if query.zs is not None:
                values = query.zs
            elif query.z is not None:
                values = (query.z,)
            else:
                values = (index_z,)
            for value in values:
                if value > index_z:
                    raise QueryError(
                        f"query threshold z={value:g} is looser than the index's "
                        f"z={index_z:g}; occurrences with probability below "
                        f"1/{index_z:g} are not indexed"
                    )
            z_values.append(values)
        unique_codes: list[np.ndarray] = []
        assignment: list[int] = []
        slots: dict[bytes, int] = {}
        for codes in prepared:
            key = codes.tobytes()
            slot = slots.get(key)
            if slot is None:
                slot = len(unique_codes)
                slots[key] = slot
                unique_codes.append(codes)
            assignment.append(slot)
        probability_slots = frozenset(
            assignment[position]
            for position, query in enumerate(normalized)
            if query.mode in _PROBABILITY_MODES
        )
        strategy = "scalar" if len(unique_codes) == 1 else "batch"
        fan_out = bool(getattr(index, "shard_indexes", None))
        return ExecutionPlan(
            queries=normalized,
            prepared=prepared,
            unique_codes=unique_codes,
            assignment=assignment,
            z_values=z_values,
            probability_slots=probability_slots,
            strategy=strategy,
            fan_out=fan_out,
        )

    def _validate_patterns(self, prepared: list[np.ndarray]) -> None:
        """Whole-batch validation with the canonical per-pattern errors.

        The happy path costs one concatenation and one min/max reduction;
        when anything is invalid, every pattern is re-validated through the
        index's scalar ``_prepare_pattern`` so the raised
        :class:`~repro.errors.PatternError` is identical to the scalar
        path's.
        """
        index = self._index
        minimum = max(1, index.minimum_pattern_length)
        maximum = index.maximum_pattern_length
        valid = all(
            len(codes) >= minimum and (maximum is None or len(codes) <= maximum)
            for codes in prepared
        )
        if valid and prepared:
            flat = np.concatenate(prepared)
            if len(flat) and (
                int(flat.min()) < 0 or int(flat.max()) >= index.source.sigma
            ):
                valid = False
        if not valid:
            for codes in prepared:  # raise the canonical per-pattern error
                index._prepare_pattern(codes)
            raise PatternError("invalid pattern batch")  # pragma: no cover

    # -- execution --------------------------------------------------------------
    def execute(self, queries: Sequence) -> list[QueryResult]:
        """Answer a batch of queries (one :class:`QueryResult` per entry)."""
        plan = self.plan(queries)
        index = self._index
        base = self._run_base(plan)
        results: list[QueryResult] = []
        subqueries = 0
        for query, codes, slot, values in zip(
            plan.queries, plan.prepared, plan.assignment, plan.z_values
        ):
            positions, probabilities = base[slot]
            per_z = [
                self._assemble(query, codes, z, positions, probabilities)
                for z in values
            ]
            subqueries += len(per_z)
            if query.zs is not None:
                results.append(
                    QueryResult(
                        pattern=query.pattern,
                        mode=query.mode,
                        z=None,
                        exists=any(result.exists for result in per_z),
                        sweep=tuple(per_z),
                    )
                )
            else:
                results.append(per_z[0])
        self.last_stats = {
            "patterns": len(plan.queries),
            "unique_patterns": len(plan.unique_codes),
            "subqueries": subqueries,
            "strategy": plan.strategy,
            "fan_out": plan.fan_out,
            # Which state of a mutable index answered this batch — lets the
            # serving layer correlate answers with applied update batches.
            "generation": getattr(index, "generation", 0),
        }
        return results

    def _run_base(self, plan: ExecutionPlan) -> list[tuple[np.ndarray, np.ndarray | None]]:
        """Occurrences (and probabilities, when needed) of every distinct pattern.

        All answers are computed at the *index's* threshold; per-query
        overrides filter them in :meth:`_assemble`.  The scalar strategy goes
        through the index's scalar query path, the batch strategy through its
        vectorised hook; both return identical values.  Exact probability
        products are computed only for the slots a probability-reporting
        query actually references — a single ``topk`` in a large ``locate``
        batch does not tax the rest of the batch.
        """
        index = self._index
        unique = plan.unique_codes
        if not unique:
            return []
        probability_slots = plan.probability_slots
        if plan.strategy == "scalar":
            positions = np.asarray(index._locate_codes(unique[0]), dtype=np.int64)
            if probability_slots:
                from .verification import exact_occurrence_products

                return [
                    (positions, exact_occurrence_products(index.source, unique[0], positions))
                ]
            return [(positions, None)]
        base: list = [None] * len(unique)
        with_probs = sorted(probability_slots)
        plain = [slot for slot in range(len(unique)) if slot not in probability_slots]
        if with_probs:
            answers = index._batch_locate_probs([unique[slot] for slot in with_probs])
            for slot, (positions, probabilities) in zip(with_probs, answers):
                base[slot] = (
                    np.asarray(positions, dtype=np.int64),
                    np.asarray(probabilities, dtype=np.float64),
                )
        if plain:
            answers = index._batch_locate([unique[slot] for slot in plain])
            for slot, positions in zip(plain, answers):
                base[slot] = (np.asarray(positions, dtype=np.int64), None)
        return base

    def _assemble(
        self,
        query: Query,
        codes: np.ndarray,
        z: float,
        positions: np.ndarray,
        probabilities: np.ndarray | None,
    ) -> QueryResult:
        """Fill one single-z :class:`QueryResult` from the base answer."""
        index = self._index
        if z != index.z:
            # Filter with the same log-cache probabilities and tolerance rule
            # the brute-force oracle uses, so overridden answers equal
            # brute_force_occurrences(source, pattern, z) exactly.
            oracle = index.source.occurrence_probabilities(codes, positions)
            mask = solid_probability_mask(oracle, z)
            positions = positions[mask]
            if probabilities is not None:
                probabilities = probabilities[mask]
        count = int(len(positions))
        exists = count > 0
        mode = query.mode
        result = QueryResult(
            pattern=query.pattern, mode=mode, z=z, count=count, exists=exists
        )
        if mode is QueryMode.LOCATE:
            result.positions = [int(position) for position in positions]
        elif mode is QueryMode.LOCATE_PROBS:
            result.positions = [int(position) for position in positions]
            result.probabilities = [float(value) for value in probabilities]
        elif mode is QueryMode.TOPK:
            if count:
                order = np.lexsort((positions, -probabilities))[: query.k]
            else:
                order = np.array([], dtype=np.int64)
            result.positions = [int(positions[i]) for i in order]
            result.probabilities = [float(probabilities[i]) for i in order]
        return result
