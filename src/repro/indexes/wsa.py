"""WSA — the weighted suffix array baseline (state of the art, array flavour).

The weighted suffix array indexes every property suffix of the z-estimation:
its size and construction space are Θ(nz) and its queries take
O(m log(nz) + |Occ|) time with the binary-search implementation used here
(the paper's reference implementation has the same practical behaviour).
This is the strongest baseline the paper compares against and the one our
minimizer-based indexes are designed to undercut in space.
"""

from __future__ import annotations

import time

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.weighted_string import WeightedString
from .base import UncertainStringIndex
from .property_structures import PropertySuffixStructure
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel

__all__ = ["WeightedSuffixArray"]


class WeightedSuffixArray(UncertainStringIndex):
    """The WSA baseline: generalised property suffix array over the z-estimation."""

    name = "WSA"

    def __init__(
        self,
        source: WeightedString,
        z: float,
        structure: PropertySuffixStructure,
        stats: IndexStats,
    ) -> None:
        super().__init__(source, z)
        self._structure = structure
        self._stats = stats

    # -- construction ---------------------------------------------------------------
    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        *,
        estimation: ZEstimation | None = None,
        space_model: SpaceModel = DEFAULT_SPACE_MODEL,
        method: str = "vectorized",
    ) -> "WeightedSuffixArray":
        """Build the WSA for ``source`` and threshold ``1/z``.

        An existing z-estimation may be passed to share it across baselines
        (the benchmark harness does this); it is charged to the construction
        space either way, since the index cannot be built without it.
        """
        started = time.perf_counter()
        tracker = ConstructionTracker()
        # The input probability matrix is resident during every construction.
        tracker.allocate(space_model.probabilities(len(source) * source.sigma))
        if estimation is None:
            estimation = build_z_estimation(source, z, method=method)
        entries = estimation.width * (estimation.length + 1)
        estimation_cost = space_model.codes(
            estimation.width * estimation.length
        ) + space_model.words(estimation.width * estimation.length)
        tracker.allocate(estimation_cost)
        structure = PropertySuffixStructure(estimation)
        # Working space of the structure: text + SA + per-rank annotations.
        structure_cost = space_model.codes(entries) + space_model.words(3 * entries)
        tracker.allocate(structure_cost)
        stats = IndexStats(
            name=cls.name,
            index_size_bytes=cls._index_size(structure, space_model),
            construction_space_bytes=tracker.peak_bytes,
            construction_seconds=time.perf_counter() - started,
            counters={
                "entries": structure.entry_count,
                "estimation_width": estimation.width,
            },
        )
        return cls(source, z, structure, stats)

    @staticmethod
    def _index_size(structure: PropertySuffixStructure, model: SpaceModel) -> int:
        entries = structure.entry_count
        # SA entry, position-in-X, valid length, and the range-max index:
        # four words per entry, plus the concatenated text codes needed to
        # drive the binary searches.
        return model.words(4 * entries) + model.codes(entries)

    # -- queries -------------------------------------------------------------------------
    def _locate_codes(self, codes) -> list[int]:
        """Scalar strategy: one binary-searched structure pass."""
        return self._structure.locate(codes)

    def _batch_locate(self, code_lists: list) -> list[list[int]]:
        """Batch strategy: deduplicated patterns share one structure pass each."""
        return self._structure.locate_many(code_lists)

    @property
    def structure(self) -> PropertySuffixStructure:
        """The underlying property suffix structure (for inspection/tests)."""
        return self._structure
