"""The vectorized batch query front-end and the minimizer batch strategy.

Serving heavy query traffic one pattern at a time leaves most of the work in
Python-level loops: every pattern re-derives its minimizer, walks a search
structure letter by letter and verifies each candidate with a per-position
probability product.  The batch path vectorises all of it:

* patterns are deduplicated once and answered once (shared candidate-dedup);
* leftmost minimizers of the whole batch come from a single vectorised
  argmin (:meth:`MinimizerScheme.leftmost_pattern_minimizers`);
* leaf ranges of all query pieces are found with two ``np.searchsorted``
  calls over cached byte keys (:meth:`LeafCollection.prefix_range_many`);
* candidate occurrence positions are gathered with array slices and verified
  in bulk through the source's log-probability cache, grouped by pattern
  length (:func:`~repro.indexes.verification.verify_candidate_batches`).

:class:`BatchQueryEngine` is the compatibility front door (every
:class:`~repro.indexes.base.UncertainStringIndex` exposes it as
``index.match_many(patterns)``); since the planner/executor refactor it is a
thin wrapper around :class:`~repro.indexes.query.QueryPlanner`, which owns
validation, deduplication and strategy choice for *all* query modes.  Index
families plug their batch strategies in through the ``_batch_locate`` /
``_batch_locate_probs`` hooks (the minimizer indexes use
:func:`locate_minimizer_batch` below; the WST/WSA baselines share the
deduplication and loop their per-pattern query).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .query import Query, QueryPlanner
from .verification import verify_candidate_batches

__all__ = ["BatchQueryEngine", "locate_minimizer_batch"]


class BatchQueryEngine:
    """Batched ``locate`` front-end over any uncertain-string index.

    Kept as the stable entry point of the original batch API
    (``match_many`` + :attr:`last_stats`); planning, validation and strategy
    choice live in the shared :class:`~repro.indexes.query.QueryPlanner`,
    so the engine answers exactly like ``index.query_many`` in ``locate``
    mode.
    """

    def __init__(self, index) -> None:
        self._planner = QueryPlanner(index)
        self.last_stats: dict[str, int] = {}

    @property
    def index(self):
        """The wrapped index."""
        return self._planner.index

    @property
    def planner(self) -> QueryPlanner:
        """The underlying query planner (rich statistics, all modes)."""
        return self._planner

    def match_many(self, patterns: Sequence) -> list[list[int]]:
        """Occurrence lists of every pattern, in input order.

        Each entry equals ``index.locate(pattern)`` exactly; invalid patterns
        (empty, shorter than the index's minimum length, letters outside the
        alphabet) raise the same :class:`~repro.errors.PatternError` the
        per-pattern path raises.
        """
        results = self._planner.execute([Query(pattern) for pattern in patterns])
        stats = self._planner.last_stats
        self.last_stats = {
            "patterns": stats["patterns"],
            "unique_patterns": stats["unique_patterns"],
            "generation": stats.get("generation", 0),
        }
        return [result.positions for result in results]


def locate_minimizer_batch(
    index, code_lists: list, *, with_probabilities: bool = False
):
    """Batch query strategy of the minimizer-based indexes.

    Implements the Section-5 simple query (longer piece + verification) and
    the Theorem-9 grid query over a whole batch: minimizers, leaf ranges,
    candidate gathering and verification are all array operations; only the
    per-pattern grid reporting remains scalar.  With
    ``with_probabilities=True`` the verification stage reports each
    surviving occurrence's exact probability product alongside its position
    (``(positions, probabilities)`` pairs instead of bare position lists).
    """
    data = index.data
    source = index.source
    z = index.z
    if not code_lists:
        return []
    arrays = [np.asarray(codes, dtype=np.int64) for codes in code_lists]
    mus = [int(mu) for mu in data.scheme.leftmost_pattern_minimizers(arrays)]
    # The forward piece reads rightward from the minimizer, the backward
    # piece leftward (reversed); both are views, never copies.
    forward_pieces = [arr[mu:] for arr, mu in zip(arrays, mus)]
    backward_pieces = [arr[mu::-1] for arr, mu in zip(arrays, mus)]
    candidates_per_row: list = [None] * len(code_lists)

    if index.use_grid:
        forward_ranges = data.forward.prefix_range_many(forward_pieces)
        backward_ranges = data.backward.prefix_range_many(backward_pieces)
        forward_positions = data.forward.positions
        for row, mu in enumerate(mus):
            flo, fhi = forward_ranges[row]
            blo, bhi = backward_ranges[row]
            if flo >= fhi or blo >= bhi:
                continue
            points = index._grid.report(int(flo), int(fhi), int(blo), int(bhi))
            if not points:
                continue
            xs = np.fromiter((x for x, _ in points), dtype=np.int64, count=len(points))
            candidates_per_row[row] = np.unique(forward_positions[xs] - mu)
        return verify_candidate_batches(
            source, z, code_lists, candidates_per_row,
            with_probabilities=with_probabilities,
        )

    # Simple query: search only the longer piece of each pattern, batched per
    # collection so each side is one vectorised range computation.
    forward_rows = [
        row
        for row in range(len(arrays))
        if len(forward_pieces[row]) >= len(backward_pieces[row])
    ]
    forward_row_set = set(forward_rows)
    backward_rows = [
        row for row in range(len(arrays)) if row not in forward_row_set
    ]
    for rows, collection, pieces in (
        (forward_rows, data.forward, forward_pieces),
        (backward_rows, data.backward, backward_pieces),
    ):
        if not rows:
            continue
        ranges = collection.prefix_range_many([pieces[row] for row in rows])
        positions = collection.positions
        for (lo, hi), row in zip(ranges, rows):
            if lo < hi:
                candidates_per_row[row] = np.unique(
                    positions[int(lo) : int(hi)] - mus[row]
                )
    return verify_candidate_batches(
        source, z, code_lists, candidates_per_row,
        with_probabilities=with_probabilities,
    )
