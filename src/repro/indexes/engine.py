"""The vectorized batch query engine (``match_many``).

Serving heavy query traffic one pattern at a time leaves most of the work in
Python-level loops: every pattern re-derives its minimizer, walks a search
structure letter by letter and verifies each candidate with a per-position
probability product.  This module batches all of it:

* patterns are deduplicated once and answered once (shared candidate-dedup);
* leftmost minimizers of the whole batch come from a single vectorised
  argmin (:meth:`MinimizerScheme.leftmost_pattern_minimizers`);
* leaf ranges of all query pieces are found with two ``np.searchsorted``
  calls over cached byte keys (:meth:`LeafCollection.prefix_range_many`);
* candidate occurrence positions are gathered with array slices and verified
  in bulk through the source's log-probability cache, grouped by pattern
  length (:func:`~repro.indexes.verification.verify_candidate_batches`).

:class:`BatchQueryEngine` is the front door; every
:class:`~repro.indexes.base.UncertainStringIndex` exposes it as
``index.match_many(patterns)``.  Index families plug in their own batch
strategy through the ``_batch_locate`` hook (the minimizer indexes use
:func:`locate_minimizer_batch` below; the WST/WSA baselines share the
deduplication and loop their per-pattern query).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import PatternError
from .base import coerce_pattern_array
from .verification import verify_candidate_batches

__all__ = ["BatchQueryEngine", "locate_minimizer_batch"]


class BatchQueryEngine:
    """Batched query front-end over any uncertain-string index.

    The engine validates and deduplicates the incoming patterns, hands the
    distinct ones to the index's ``_batch_locate`` strategy and fans the
    answers back out to the original order.  Query statistics of the last
    batch are kept on :attr:`last_stats` for benchmarks and the CLI.
    """

    def __init__(self, index) -> None:
        self._index = index
        self.last_stats: dict[str, int] = {}

    @property
    def index(self):
        """The wrapped index."""
        return self._index

    def _convert(self, pattern) -> np.ndarray:
        """Coerce one pattern to a code array (validation happens batched).

        Delegates to :func:`~repro.indexes.base.coerce_pattern_array` — the
        same conversion the scalar query path uses — with the per-letter
        range check deferred to the batched min/max reduction below.
        """
        return coerce_pattern_array(pattern, self._index.source, validate=False)

    def _prepare_batch(self, patterns: Sequence) -> list[np.ndarray]:
        """Coerce and validate a whole batch with one min/max reduction.

        The happy path costs one concatenation; when anything is invalid,
        every pattern is re-validated through the index's scalar
        ``_prepare_pattern`` so the raised :class:`PatternError` is identical
        to the per-pattern path's.
        """
        index = self._index
        prepared = [self._convert(pattern) for pattern in patterns]
        minimum = index.minimum_pattern_length
        maximum = index.maximum_pattern_length
        valid = all(
            len(codes) >= minimum
            and len(codes) > 0
            and (maximum is None or len(codes) <= maximum)
            for codes in prepared
        )
        if valid and prepared:
            flat = np.concatenate(prepared)
            if len(flat) and (
                int(flat.min()) < 0 or int(flat.max()) >= index.source.sigma
            ):
                valid = False
        if not valid:
            for codes in prepared:  # raise the canonical per-pattern error
                index._prepare_pattern(codes)
            raise PatternError("invalid pattern batch")  # pragma: no cover
        return prepared

    def match_many(self, patterns: Sequence) -> list[list[int]]:
        """Occurrence lists of every pattern, in input order.

        Each entry equals ``index.locate(pattern)`` exactly; invalid patterns
        (empty, shorter than the index's minimum length, letters outside the
        alphabet) raise the same :class:`~repro.errors.PatternError` the
        per-pattern path raises.
        """
        prepared = self._prepare_batch(patterns)
        unique_codes: list[np.ndarray] = []
        assignment: list[int] = []
        slots: dict[bytes, int] = {}
        for codes in prepared:
            key = codes.tobytes()
            slot = slots.get(key)
            if slot is None:
                slot = len(unique_codes)
                slots[key] = slot
                unique_codes.append(codes)
            assignment.append(slot)
        unique_results = self._index._batch_locate(unique_codes)
        self.last_stats = {
            "patterns": len(prepared),
            "unique_patterns": len(unique_codes),
        }
        return [list(unique_results[slot]) for slot in assignment]


def locate_minimizer_batch(index, code_lists: list[list[int]]) -> list[list[int]]:
    """Batch query strategy of the minimizer-based indexes.

    Implements the Section-5 simple query (longer piece + verification) and
    the Theorem-9 grid query over a whole batch: minimizers, leaf ranges,
    candidate gathering and verification are all array operations; only the
    per-pattern grid reporting remains scalar.
    """
    data = index.data
    source = index.source
    z = index.z
    if not code_lists:
        return []
    arrays = [np.asarray(codes, dtype=np.int64) for codes in code_lists]
    mus = [int(mu) for mu in data.scheme.leftmost_pattern_minimizers(arrays)]
    # The forward piece reads rightward from the minimizer, the backward
    # piece leftward (reversed); both are views, never copies.
    forward_pieces = [arr[mu:] for arr, mu in zip(arrays, mus)]
    backward_pieces = [arr[mu::-1] for arr, mu in zip(arrays, mus)]
    candidates_per_row: list = [None] * len(code_lists)

    if index.use_grid:
        forward_ranges = data.forward.prefix_range_many(forward_pieces)
        backward_ranges = data.backward.prefix_range_many(backward_pieces)
        forward_positions = data.forward.positions
        for row, mu in enumerate(mus):
            flo, fhi = forward_ranges[row]
            blo, bhi = backward_ranges[row]
            if flo >= fhi or blo >= bhi:
                continue
            points = index._grid.report(int(flo), int(fhi), int(blo), int(bhi))
            if not points:
                continue
            xs = np.fromiter((x for x, _ in points), dtype=np.int64, count=len(points))
            candidates_per_row[row] = np.unique(forward_positions[xs] - mu)
        return verify_candidate_batches(source, z, code_lists, candidates_per_row)

    # Simple query: search only the longer piece of each pattern, batched per
    # collection so each side is one vectorised range computation.
    forward_rows = [
        row
        for row in range(len(arrays))
        if len(forward_pieces[row]) >= len(backward_pieces[row])
    ]
    forward_row_set = set(forward_rows)
    backward_rows = [
        row for row in range(len(arrays)) if row not in forward_row_set
    ]
    for rows, collection, pieces in (
        (forward_rows, data.forward, forward_pieces),
        (backward_rows, data.backward, backward_pieces),
    ):
        if not rows:
            continue
        ranges = collection.prefix_range_many([pieces[row] for row in rows])
        positions = collection.positions
        for (lo, hi), row in zip(ranges, rows):
            if lo < hi:
                candidates_per_row[row] = np.unique(
                    positions[int(lo) : int(hi)] - mus[row]
                )
    return verify_candidate_batches(source, z, code_lists, candidates_per_row)
