"""Shared machinery of the minimizer-based indexes (Section 3 of the paper).

The minimizer solid-factor trees ``Tsuff`` and ``Tpref`` both boil down to a
*sorted collection of factor leaves*: every leaf is anchored at a minimizer
position ``q`` and spells the letters of a solid factor read rightward
(``Tsuff``) or leftward (``Tpref``) from ``q``.  Leaves are never
materialised as strings — following Corollary 4 they are stored as a
reference into the heavy string plus at most ``log₂ z`` mismatches, and all
comparisons go through longest-common-extension queries on the heavy string
(the Theorem 12 trick).

This module provides:

* :class:`FactorLeaf` — one leaf (anchor, length, mismatches, label);
* :class:`LeafCollection` — a sorted, searchable collection of leaves over a
  reference code string (the heavy string or its reverse), with optional
  compacted-trie construction on top;
* :class:`MinimizerIndexData` — the pair of collections plus the sampling
  scheme, i.e. everything the MWST / MWSA / grid variants share;
* :func:`build_leaves_from_estimation` — the explicit construction that
  samples the z-estimation (Lemma 5 / Contribution 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cmp_to_key

import numpy as np

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from ..strings.lcp import LCEIndex
from ..strings.trie import CompactedTrie
from .space import DEFAULT_SPACE_MODEL, SpaceModel

__all__ = [
    "FactorLeaf",
    "LeafCollection",
    "MinimizerIndexData",
    "build_leaves_from_estimation",
    "build_index_data_from_estimation",
]


@dataclass(frozen=True)
class FactorLeaf:
    """One leaf of a minimizer solid-factor tree.

    ``anchor`` is the position in the *reference* string (the heavy string
    for forward leaves, the reversed heavy string for backward leaves) from
    which the leaf's letters are read rightward; ``mismatches`` lists the
    offsets at which the letter differs from the reference, with the actual
    letter code; ``position`` is the minimizer position ``q`` in the original
    weighted string, used to derive candidate occurrence positions; and
    ``source`` records which z-estimation string produced the leaf (or ``-1``
    for the space-efficient construction, which works per distinct factor).
    """

    anchor: int
    length: int
    mismatches: tuple[tuple[int, int], ...]
    position: int
    source: int = -1

    def mismatch_count(self) -> int:
        """Number of stored mismatches (≤ log₂ z for solid factors, Lemma 3)."""
        return len(self.mismatches)


class LeafCollection:
    """A lexicographically sorted collection of factor leaves.

    Parameters
    ----------
    leaves:
        The leaves, in arbitrary order.
    reference:
        The code string the anchors refer to (heavy string or its reverse).
    lce:
        Optional LCE index over ``reference``; built on demand when the
        collection needs to sort or compare more than a handful of leaves.
    """

    #: Length of the materialised prefix used to pre-sort leaves cheaply.
    PRESORT_PREFIX = 24

    #: Widest materialised prefix used by the vectorised batch search; longer
    #: query pieces narrow the range on the first letters, then refine with
    #: the exact scalar comparator.
    SEARCH_PREFIX_LIMIT = 128

    def __init__(
        self,
        leaves: list[FactorLeaf],
        reference: np.ndarray,
        lce: LCEIndex | None = None,
        *,
        presorted: bool = False,
        trie_lcps: np.ndarray | None = None,
    ) -> None:
        """``presorted=True`` trusts the given leaf order; ``trie_lcps`` seeds
        the adjacent-LCP cache so reloaded collections build tries without an
        LCE index (both are used by the binary index store)."""
        self._reference = np.asarray(reference, dtype=np.int64)
        self._lce = lce
        self._cached_lcps = (
            None if trie_lcps is None else np.asarray(trie_lcps, dtype=np.int64)
        )
        self._leaves = list(leaves)
        if presorted:
            self.raw_to_sorted = np.arange(len(self._leaves), dtype=np.int64)
        else:
            self.raw_to_sorted = np.empty(len(self._leaves), dtype=np.int64)
            self._sort()
        self._trie: CompactedTrie | None = None
        self._positions: np.ndarray | None = None
        self._search_keys: np.ndarray | None = None
        self._search_width = 0
        self._max_letter: int | None = None

    # -- letter access -------------------------------------------------------------
    def letter(self, index: int, offset: int) -> int:
        """Letter code of leaf ``index`` at ``offset`` (must be < its length)."""
        leaf = self._leaves[index]
        for mismatch_offset, code in leaf.mismatches:
            if mismatch_offset == offset:
                return code
        return int(self._reference[leaf.anchor + offset])

    def leaf(self, index: int) -> FactorLeaf:
        """The leaf at a sorted index."""
        return self._leaves[index]

    def __len__(self) -> int:
        return len(self._leaves)

    def __iter__(self):
        return iter(self._leaves)

    @property
    def reference(self) -> np.ndarray:
        """The reference code string shared by all leaves."""
        return self._reference

    def leaf_codes(self, index: int, limit: int | None = None) -> list[int]:
        """Materialise (a prefix of) one leaf's letters — mostly for tests."""
        leaf = self._leaves[index]
        length = leaf.length if limit is None else min(limit, leaf.length)
        return [self.letter(index, offset) for offset in range(length)]

    # -- sorting ---------------------------------------------------------------------
    def _ensure_lce(self) -> LCEIndex:
        if self._lce is None:
            self._lce = LCEIndex(self._reference)
        return self._lce

    def _leaf_lcp(self, first: int, second: int) -> int:
        """Longest common prefix of two leaves, via heavy-string LCE queries.

        Between mismatch offsets both leaves equal the reference, so whole
        stretches are compared with a single LCE query; only the ≤ log₂ z
        mismatch offsets are compared letter by letter (the Theorem 12
        comparison trick).
        """
        a, b = self._leaves[first], self._leaves[second]
        lce = self._ensure_lce()
        limit = min(a.length, b.length)
        breakpoints = sorted({offset for offset, _ in a.mismatches}
                             | {offset for offset, _ in b.mismatches})
        bp_index = 0
        offset = 0
        while offset < limit:
            while bp_index < len(breakpoints) and breakpoints[bp_index] < offset:
                bp_index += 1
            next_break = breakpoints[bp_index] if bp_index < len(breakpoints) else limit
            next_break = min(next_break, limit)
            if offset < next_break:
                # Both leaves follow the reference on [offset, next_break).
                agreed = lce.lce(a.anchor + offset, b.anchor + offset)
                if agreed < next_break - offset:
                    return offset + agreed
                offset = next_break
                if offset >= limit:
                    return limit
            # offset is a mismatch offset of at least one leaf: compare directly.
            if self.letter(first, offset) != self.letter(second, offset):
                return offset
            offset += 1
        return limit

    def _compare(self, first: int, second: int) -> int:
        """Full lexicographic comparison of two leaves (ties by label)."""
        lcp = self._leaf_lcp(first, second)
        a, b = self._leaves[first], self._leaves[second]
        if lcp < a.length and lcp < b.length:
            letter_a = self.letter(first, lcp)
            letter_b = self.letter(second, lcp)
            return -1 if letter_a < letter_b else 1
        if a.length != b.length:
            return -1 if a.length < b.length else 1
        if a.position != b.position:
            return -1 if a.position < b.position else 1
        if a.source != b.source:
            return -1 if a.source < b.source else 1
        return 0

    def _presort_key(self, leaf: FactorLeaf) -> bytes:
        limit = min(self.PRESORT_PREFIX, leaf.length)
        codes = bytearray()
        mismatches = dict(leaf.mismatches)
        for offset in range(limit):
            code = mismatches.get(offset)
            if code is None:
                code = int(self._reference[leaf.anchor + offset])
            codes.append(min(code + 1, 255))
        return bytes(codes)

    def _sort(self) -> None:
        if not self._leaves:
            return
        order = sorted(
            range(len(self._leaves)), key=lambda i: self._presort_key(self._leaves[i])
        )
        # Refine groups that share the materialised prefix with the exact
        # heavy-LCE comparator (O(log z) per comparison, Theorem 12).
        refined: list[int] = []
        group: list[int] = []
        group_key = None
        keys = {i: self._presort_key(self._leaves[i]) for i in order}

        def flush() -> None:
            if len(group) > 1:
                group.sort(key=cmp_to_key(self._compare))
            refined.extend(group)

        for index in order:
            key = keys[index]
            if group_key is None or key != group_key:
                flush()
                group = [index]
                group_key = key
            else:
                group.append(index)
        flush()
        self._leaves = [self._leaves[i] for i in refined]
        for sorted_index, raw_index in enumerate(refined):
            self.raw_to_sorted[raw_index] = sorted_index

    # -- searching -----------------------------------------------------------------------
    def _leaf_less_than_piece(self, index: int, piece, *, strict_prefix_smaller: bool) -> bool:
        """Whether leaf ``index`` sorts strictly before ``piece``.

        With ``strict_prefix_smaller=True`` a leaf that *starts with* the
        piece is not considered smaller (lower-bound behaviour); with
        ``False`` it is (upper-bound behaviour).
        """
        leaf = self._leaves[index]
        limit = min(leaf.length, len(piece))
        for offset in range(limit):
            letter = self.letter(index, offset)
            target = int(piece[offset])
            if letter != target:
                return letter < target
        if leaf.length < len(piece):
            return True  # leaf is a proper prefix of the piece: leaf < piece
        if strict_prefix_smaller:
            return False
        return True

    def prefix_range(self, piece, lo: int = 0, hi: int | None = None) -> tuple[int, int]:
        """Sorted-index range of leaves that have ``piece`` as a prefix.

        ``lo`` / ``hi`` optionally restrict the search to a sorted-index
        subrange known to bracket the answer (used by the batch search to
        refine a coarse vectorised range).
        """
        piece = [int(code) for code in piece]
        upper = len(self._leaves) if hi is None else hi
        lo_search, hi_search = lo, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=True):
                lo_search = mid + 1
            else:
                hi_search = mid
        start = lo_search
        lo_search, hi_search = start, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=False):
                lo_search = mid + 1
            else:
                hi_search = mid
        return start, lo_search

    # -- batch searching -------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Minimizer positions of the leaves, aligned with the sorted order.

        Cached so that a whole range of candidate positions can be gathered
        with one slice instead of per-leaf attribute access.
        """
        if self._positions is None:
            self._positions = np.array(
                [leaf.position for leaf in self._leaves], dtype=np.int64
            )
        return self._positions

    def prefix_matrix(self, width: int) -> np.ndarray:
        """Materialised ``(count × width)`` matrix of leaf prefixes.

        Entry ``[i, t]`` is the letter of sorted leaf ``i`` at offset ``t``,
        or ``-1`` past the leaf's end (which sorts before every real letter,
        matching the proper-prefix-first leaf order).
        """
        count = len(self._leaves)
        if count == 0:
            return np.empty((0, width), dtype=np.int64)
        anchors = np.array([leaf.anchor for leaf in self._leaves], dtype=np.int64)
        lengths = np.array([leaf.length for leaf in self._leaves], dtype=np.int64)
        offsets = np.arange(width, dtype=np.int64)
        gather = np.minimum(anchors[:, None] + offsets[None, :], len(self._reference) - 1)
        matrix = self._reference[gather]
        for index, leaf in enumerate(self._leaves):
            for offset, code in leaf.mismatches:
                if offset < width:
                    matrix[index, offset] = code
        matrix[offsets[None, :] >= lengths[:, None]] = -1
        return matrix

    def _batch_search_keys(self, width: int) -> np.ndarray | None:
        """Fixed-width byte keys of the leaf prefixes, for ``np.searchsorted``.

        Letters are shifted by +1 so that the past-end marker becomes the
        zero byte; returns None when a *leaf* letter would not fit below the
        upper-bound sentinel byte (code ≥ 254), in which case callers fall
        back to the scalar search.  Query pieces may still carry larger
        codes: every code above all leaf letters compares identically, so
        queries saturate at byte 255 without changing the order.
        """
        if self._max_letter is None:
            max_code = int(self._reference.max(initial=0))
            for leaf in self._leaves:
                for _, code in leaf.mismatches:
                    max_code = max(max_code, int(code))
            self._max_letter = max_code
        if self._max_letter + 1 >= 255:
            return None
        if self._search_keys is None or self._search_width < width:
            matrix = (self.prefix_matrix(width) + 1).astype(np.uint8)
            self._search_keys = np.ascontiguousarray(matrix).view(f"S{width}")[:, 0]
            self._search_width = width
        return self._search_keys

    def prefix_range_many(self, pieces: list) -> np.ndarray:
        """Vectorised :meth:`prefix_range` over a batch of query pieces.

        Returns a ``(B × 2)`` array of ``[lo, hi)`` sorted-index ranges.  All
        lower and upper bounds are found with two ``np.searchsorted`` calls
        over cached byte keys; pieces longer than the materialised prefix are
        refined with the exact comparator inside the narrowed range.
        """
        ranges = np.zeros((len(pieces), 2), dtype=np.int64)
        if not pieces or not self._leaves:
            return ranges
        width = min(max(len(piece) for piece in pieces), self.SEARCH_PREFIX_LIMIT)
        keys = self._batch_search_keys(width)
        if keys is None:
            for row, piece in enumerate(pieces):
                ranges[row] = self.prefix_range(piece)
            return ranges
        effective_width = self._search_width
        low_queries = np.zeros((len(pieces), effective_width), dtype=np.uint8)
        high_queries = np.full((len(pieces), effective_width), 255, dtype=np.uint8)
        for row, piece in enumerate(pieces):
            head = np.asarray(piece[:effective_width], dtype=np.int64) + 1
            # Codes above every leaf letter (≤ 253 here) saturate at the
            # sentinel byte: they can never equal a leaf letter, and 255 is
            # greater than every leaf byte, so the order is preserved.
            head = np.minimum(head, 255)
            low_queries[row, : len(head)] = head
            high_queries[row, : len(head)] = head
        low_keys = np.ascontiguousarray(low_queries).view(f"S{effective_width}")[:, 0]
        high_keys = np.ascontiguousarray(high_queries).view(f"S{effective_width}")[:, 0]
        ranges[:, 0] = np.searchsorted(keys, low_keys, side="left")
        ranges[:, 1] = np.searchsorted(keys, high_keys, side="right")
        for row, piece in enumerate(pieces):
            if len(piece) > effective_width:
                ranges[row] = self.prefix_range(
                    piece, lo=int(ranges[row, 0]), hi=int(ranges[row, 1])
                )
        return ranges

    # -- trie ------------------------------------------------------------------------------
    def adjacent_lcps(self) -> np.ndarray:
        """LCP of each consecutive sorted leaf pair (cached; persisted by the store)."""
        if self._cached_lcps is None:
            lcps = np.zeros(len(self._leaves), dtype=np.int64)
            for index in range(1, len(self._leaves)):
                lcps[index] = self._leaf_lcp(index - 1, index)
            self._cached_lcps = lcps
        return self._cached_lcps

    def build_trie(self) -> CompactedTrie:
        """Compacted trie over the sorted leaves (the tree-index variants)."""
        if self._trie is None:
            self._trie = CompactedTrie(
                [leaf.length for leaf in self._leaves],
                self.adjacent_lcps(),
                self.letter,
            )
        return self._trie

    # -- size accounting -------------------------------------------------------------------
    def total_mismatches(self) -> int:
        """Total number of stored mismatches across all leaves."""
        return sum(leaf.mismatch_count() for leaf in self._leaves)

    def size_bytes(self, model: SpaceModel = DEFAULT_SPACE_MODEL, *, as_tree: bool = False) -> int:
        """Charged size of the collection (array layout, optionally + tree nodes)."""
        count = len(self._leaves)
        # Per leaf: anchor, length, position (3 words) + mismatch entries.
        total = model.words(3 * count) + model.words(2 * self.total_mismatches())
        if as_tree:
            trie = self.build_trie()
            total += model.tree_nodes(trie.node_count)
        return total


@dataclass
class MinimizerIndexData:
    """Everything the MWST / MWSA / grid indexes share.

    ``forward`` holds the ``Tsuff`` content (factors read rightward from
    their minimizer), ``backward`` the ``Tpref`` content (read leftward);
    ``pairs`` links leaves with equal minimizer labels and feeds the 2D grid
    of the *-G* variants (``None`` when built by the space-efficient
    construction, which does not produce the pairing).
    """

    source: WeightedString
    z: float
    ell: int
    scheme: MinimizerScheme
    heavy: HeavyString
    forward: LeafCollection
    backward: LeafCollection
    pairs: list[tuple[int, int]] | None = None
    construction: str = "estimation"
    counters: dict = field(default_factory=dict)

    # -- query plumbing shared by all variants ------------------------------------------
    def split_pattern(self, codes, mu: int | None = None) -> tuple[int, list[int], list[int]]:
        """Leftmost minimizer and the two query pieces (forward, backward).

        ``mu`` may be passed in when it was already computed (the batch
        engine computes the minimizers of a whole pattern batch at once).
        """
        if mu is None:
            mu = self.scheme.leftmost_pattern_minimizer(codes)
        forward_piece = [int(code) for code in codes[mu:]]
        backward_piece = [int(code) for code in reversed(codes[: mu + 1])]
        return mu, forward_piece, backward_piece

    def candidate_positions(self, leaf_indices, collection: LeafCollection, mu: int):
        """Candidate occurrence starts derived from matched leaves."""
        return {collection.leaf(index).position - mu for index in leaf_indices}

    def size_bytes(
        self,
        model: SpaceModel = DEFAULT_SPACE_MODEL,
        *,
        as_tree: bool = False,
        with_grid: bool = False,
    ) -> int:
        """Charged index size: heavy string + both collections (+ grid points)."""
        total = model.codes(len(self.source)) + model.probabilities(len(self.source))
        total += self.forward.size_bytes(model, as_tree=as_tree)
        total += self.backward.size_bytes(model, as_tree=as_tree)
        if with_grid and self.pairs is not None:
            total += model.words(4 * len(self.pairs))
        return total


def build_leaves_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    scheme: MinimizerScheme,
    estimation: ZEstimation,
    heavy: HeavyString,
) -> tuple[list[FactorLeaf], list[FactorLeaf], list[tuple[int, int]]]:
    """Sample the z-estimation with minimizers (the Lemma 5 construction).

    For every string ``S_j`` and every property-respecting window of length
    ℓ, the window's minimizer position ``q`` produces one forward leaf (the
    longest property-respecting substring of ``S_j`` starting at ``q``) and
    one backward leaf (the longest one ending at ``q``, reversed), both
    encoded relative to the heavy string.  Returns the two raw leaf lists and
    the list pairing them up (same list index = same (q, j) label).
    """
    n = len(source)
    heavy_codes = heavy.codes
    forward: list[FactorLeaf] = []
    backward: list[FactorLeaf] = []
    for j in range(estimation.width):
        string_j = estimation.strings[j]
        ends_j = estimation.ends[j]
        if n >= ell:
            starts = np.arange(n - ell + 1, dtype=np.int64)
            valid_window = ends_j[: n - ell + 1] >= starts + ell - 1
        else:
            valid_window = np.zeros(0, dtype=bool)
        if not valid_window.any():
            continue
        minimizer_positions = scheme.minimizer_positions(string_j, valid_window)
        if not minimizer_positions:
            continue
        mismatch_positions = np.nonzero(string_j != heavy_codes)[0]
        for q in minimizer_positions:
            forward_end = int(ends_j[q])
            forward_length = forward_end - q + 1
            lo = int(np.searchsorted(mismatch_positions, q, side="left"))
            hi = int(np.searchsorted(mismatch_positions, forward_end, side="right"))
            forward_mismatches = tuple(
                (int(p - q), int(string_j[p])) for p in mismatch_positions[lo:hi]
            )
            forward.append(
                FactorLeaf(
                    anchor=q,
                    length=forward_length,
                    mismatches=forward_mismatches,
                    position=q,
                    source=j,
                )
            )
            backward_start = int(np.searchsorted(ends_j, q, side="left"))
            backward_length = q - backward_start + 1
            lo = int(np.searchsorted(mismatch_positions, backward_start, side="left"))
            hi = int(np.searchsorted(mismatch_positions, q, side="right"))
            backward_mismatches = tuple(
                sorted(
                    (int(q - p), int(string_j[p]))
                    for p in mismatch_positions[lo:hi]
                )
            )
            backward.append(
                FactorLeaf(
                    anchor=n - 1 - q,
                    length=backward_length,
                    mismatches=backward_mismatches,
                    position=q,
                    source=j,
                )
            )
    pairs = list(zip(range(len(forward)), range(len(backward))))
    return forward, backward, pairs


def build_index_data_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    *,
    scheme: MinimizerScheme | None = None,
    estimation: ZEstimation | None = None,
    keep_pairs: bool = True,
) -> MinimizerIndexData:
    """Build the shared minimizer index data through the explicit z-estimation path."""
    if ell <= 0:
        raise ConstructionError("ell must be positive")
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    if estimation is None:
        estimation = build_z_estimation(source, z)
    heavy = HeavyString(source)
    raw_forward, raw_backward, raw_pairs = build_leaves_from_estimation(
        source, z, ell, scheme, estimation, heavy
    )
    forward = LeafCollection(raw_forward, heavy.codes)
    backward = LeafCollection(raw_backward, heavy.codes[::-1].copy())
    pairs = None
    if keep_pairs:
        pairs = [
            (int(forward.raw_to_sorted[f]), int(backward.raw_to_sorted[b]))
            for f, b in raw_pairs
        ]
    return MinimizerIndexData(
        source=source,
        z=z,
        ell=ell,
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction="estimation",
        counters={
            "forward_leaves": len(forward),
            "backward_leaves": len(backward),
            "estimation_entries": estimation.width * estimation.length,
        },
    )
