"""Shared machinery of the minimizer-based indexes (Section 3 of the paper).

The minimizer solid-factor trees ``Tsuff`` and ``Tpref`` both boil down to a
*sorted collection of factor leaves*: every leaf is anchored at a minimizer
position ``q`` and spells the letters of a solid factor read rightward
(``Tsuff``) or leftward (``Tpref``) from ``q``.  Leaves are never
materialised as strings — following Corollary 4 they are stored as a
reference into the heavy string plus at most ``log₂ z`` mismatches, and all
comparisons go through longest-common-extension queries on the heavy string
(the Theorem 12 trick).

This module provides:

* :class:`FactorLeaf` — one leaf (anchor, length, mismatches, label);
* :class:`LeafCollection` — a sorted, searchable collection of leaves over a
  reference code string (the heavy string or its reverse), with optional
  compacted-trie construction on top;
* :class:`MinimizerIndexData` — the pair of collections plus the sampling
  scheme, i.e. everything the MWST / MWSA / grid variants share;
* :func:`build_leaves_from_estimation` — the explicit construction that
  samples the z-estimation (Lemma 5 / Contribution 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cmp_to_key

import numpy as np

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from ..strings.lcp import LCEIndex
from ..strings.trie import CompactedTrie
from .space import DEFAULT_SPACE_MODEL, SpaceModel

__all__ = [
    "FactorLeaf",
    "LeafCollection",
    "MinimizerIndexData",
    "build_leaves_from_estimation",
    "build_index_data_from_estimation",
    "apply_updates_to_data",
]


@dataclass(frozen=True)
class FactorLeaf:
    """One leaf of a minimizer solid-factor tree.

    ``anchor`` is the position in the *reference* string (the heavy string
    for forward leaves, the reversed heavy string for backward leaves) from
    which the leaf's letters are read rightward; ``mismatches`` lists the
    offsets at which the letter differs from the reference, with the actual
    letter code; ``position`` is the minimizer position ``q`` in the original
    weighted string, used to derive candidate occurrence positions; and
    ``source`` records which z-estimation string produced the leaf (or ``-1``
    for the space-efficient construction, which works per distinct factor).
    """

    anchor: int
    length: int
    mismatches: tuple[tuple[int, int], ...]
    position: int
    source: int = -1

    def mismatch_count(self) -> int:
        """Number of stored mismatches (≤ log₂ z for solid factors, Lemma 3)."""
        return len(self.mismatches)


class LeafCollection:
    """A lexicographically sorted collection of factor leaves.

    Parameters
    ----------
    leaves:
        The leaves, in arbitrary order.
    reference:
        The code string the anchors refer to (heavy string or its reverse).
    lce:
        Optional LCE index over ``reference``; built on demand when the
        collection needs to sort or compare more than a handful of leaves.
    """

    #: Length of the materialised prefix used to pre-sort leaves cheaply.
    PRESORT_PREFIX = 24

    #: Widest materialised prefix used by the vectorised batch search; longer
    #: query pieces narrow the range on the first letters, then refine with
    #: the exact scalar comparator.
    SEARCH_PREFIX_LIMIT = 128

    def __init__(
        self,
        leaves: list[FactorLeaf],
        reference: np.ndarray,
        lce: LCEIndex | None = None,
        *,
        presorted: bool = False,
        trie_lcps: np.ndarray | None = None,
    ) -> None:
        """``presorted=True`` trusts the given leaf order; ``trie_lcps`` seeds
        the adjacent-LCP cache so reloaded collections build tries without an
        LCE index (both are used by the binary index store)."""
        self._reference = np.asarray(reference, dtype=np.int64)
        self._lce = lce
        self._cached_lcps = (
            None if trie_lcps is None else np.asarray(trie_lcps, dtype=np.int64)
        )
        self._leaves = list(leaves)
        if presorted:
            self.raw_to_sorted = np.arange(len(self._leaves), dtype=np.int64)
        else:
            self.raw_to_sorted = np.empty(len(self._leaves), dtype=np.int64)
            self._sort()
        self._trie: CompactedTrie | None = None
        self._positions: np.ndarray | None = None
        self._search_keys: np.ndarray | None = None
        self._search_width = 0
        self._max_letter: int | None = None

    # -- letter access -------------------------------------------------------------
    def letter(self, index: int, offset: int) -> int:
        """Letter code of leaf ``index`` at ``offset`` (must be < its length)."""
        leaf = self._leaves[index]
        for mismatch_offset, code in leaf.mismatches:
            if mismatch_offset == offset:
                return code
        return int(self._reference[leaf.anchor + offset])

    def leaf(self, index: int) -> FactorLeaf:
        """The leaf at a sorted index."""
        return self._leaves[index]

    def __len__(self) -> int:
        return len(self._leaves)

    def __iter__(self):
        return iter(self._leaves)

    @property
    def reference(self) -> np.ndarray:
        """The reference code string shared by all leaves."""
        return self._reference

    def leaf_codes(self, index: int, limit: int | None = None) -> list[int]:
        """Materialise (a prefix of) one leaf's letters — mostly for tests."""
        leaf = self._leaves[index]
        length = leaf.length if limit is None else min(limit, leaf.length)
        return [self.letter(index, offset) for offset in range(length)]

    # -- sorting ---------------------------------------------------------------------
    def _ensure_lce(self) -> LCEIndex:
        if self._lce is None:
            self._lce = LCEIndex(self._reference)
        return self._lce

    def _leaf_lcp(self, first: int, second: int) -> int:
        """Longest common prefix of two leaves, via heavy-string LCE queries.

        Between mismatch offsets both leaves equal the reference, so whole
        stretches are compared with a single LCE query; only the ≤ log₂ z
        mismatch offsets are compared letter by letter (the Theorem 12
        comparison trick).
        """
        a, b = self._leaves[first], self._leaves[second]
        lce = self._ensure_lce()
        limit = min(a.length, b.length)
        breakpoints = sorted({offset for offset, _ in a.mismatches}
                             | {offset for offset, _ in b.mismatches})
        bp_index = 0
        offset = 0
        while offset < limit:
            while bp_index < len(breakpoints) and breakpoints[bp_index] < offset:
                bp_index += 1
            next_break = breakpoints[bp_index] if bp_index < len(breakpoints) else limit
            next_break = min(next_break, limit)
            if offset < next_break:
                # Both leaves follow the reference on [offset, next_break).
                agreed = lce.lce(a.anchor + offset, b.anchor + offset)
                if agreed < next_break - offset:
                    return offset + agreed
                offset = next_break
                if offset >= limit:
                    return limit
            # offset is a mismatch offset of at least one leaf: compare directly.
            if self.letter(first, offset) != self.letter(second, offset):
                return offset
            offset += 1
        return limit

    def _compare(self, first: int, second: int) -> int:
        """Full lexicographic comparison of two leaves (ties by label)."""
        lcp = self._leaf_lcp(first, second)
        a, b = self._leaves[first], self._leaves[second]
        if lcp < a.length and lcp < b.length:
            letter_a = self.letter(first, lcp)
            letter_b = self.letter(second, lcp)
            return -1 if letter_a < letter_b else 1
        if a.length != b.length:
            return -1 if a.length < b.length else 1
        if a.position != b.position:
            return -1 if a.position < b.position else 1
        if a.source != b.source:
            return -1 if a.source < b.source else 1
        return 0

    def _presort_key(self, leaf: FactorLeaf) -> bytes:
        limit = min(self.PRESORT_PREFIX, leaf.length)
        codes = bytearray()
        mismatches = dict(leaf.mismatches)
        for offset in range(limit):
            code = mismatches.get(offset)
            if code is None:
                code = int(self._reference[leaf.anchor + offset])
            codes.append(min(code + 1, 255))
        return bytes(codes)

    def _sort(self) -> None:
        if not self._leaves:
            return
        order = sorted(
            range(len(self._leaves)), key=lambda i: self._presort_key(self._leaves[i])
        )
        # Refine groups that share the materialised prefix with the exact
        # heavy-LCE comparator (O(log z) per comparison, Theorem 12).
        refined: list[int] = []
        group: list[int] = []
        group_key = None
        keys = {i: self._presort_key(self._leaves[i]) for i in order}

        def flush() -> None:
            if len(group) > 1:
                group.sort(key=cmp_to_key(self._compare))
            refined.extend(group)

        for index in order:
            key = keys[index]
            if group_key is None or key != group_key:
                flush()
                group = [index]
                group_key = key
            else:
                group.append(index)
        flush()
        self._leaves = [self._leaves[i] for i in refined]
        for sorted_index, raw_index in enumerate(refined):
            self.raw_to_sorted[raw_index] = sorted_index

    # -- searching -----------------------------------------------------------------------
    def _leaf_less_than_piece(self, index: int, piece, *, strict_prefix_smaller: bool) -> bool:
        """Whether leaf ``index`` sorts strictly before ``piece``.

        With ``strict_prefix_smaller=True`` a leaf that *starts with* the
        piece is not considered smaller (lower-bound behaviour); with
        ``False`` it is (upper-bound behaviour).
        """
        leaf = self._leaves[index]
        limit = min(leaf.length, len(piece))
        for offset in range(limit):
            letter = self.letter(index, offset)
            target = int(piece[offset])
            if letter != target:
                return letter < target
        if leaf.length < len(piece):
            return True  # leaf is a proper prefix of the piece: leaf < piece
        if strict_prefix_smaller:
            return False
        return True

    def prefix_range(self, piece, lo: int = 0, hi: int | None = None) -> tuple[int, int]:
        """Sorted-index range of leaves that have ``piece`` as a prefix.

        ``lo`` / ``hi`` optionally restrict the search to a sorted-index
        subrange known to bracket the answer (used by the batch search to
        refine a coarse vectorised range).
        """
        piece = [int(code) for code in piece]
        upper = len(self._leaves) if hi is None else hi
        lo_search, hi_search = lo, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=True):
                lo_search = mid + 1
            else:
                hi_search = mid
        start = lo_search
        lo_search, hi_search = start, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=False):
                lo_search = mid + 1
            else:
                hi_search = mid
        return start, lo_search

    # -- batch searching -------------------------------------------------------------------
    @property
    def positions(self) -> np.ndarray:
        """Minimizer positions of the leaves, aligned with the sorted order.

        Cached so that a whole range of candidate positions can be gathered
        with one slice instead of per-leaf attribute access.
        """
        if self._positions is None:
            self._positions = np.array(
                [leaf.position for leaf in self._leaves], dtype=np.int64
            )
        return self._positions

    def prefix_matrix(self, width: int) -> np.ndarray:
        """Materialised ``(count × width)`` matrix of leaf prefixes.

        Entry ``[i, t]`` is the letter of sorted leaf ``i`` at offset ``t``,
        or ``-1`` past the leaf's end (which sorts before every real letter,
        matching the proper-prefix-first leaf order).
        """
        count = len(self._leaves)
        if count == 0:
            return np.empty((0, width), dtype=np.int64)
        anchors = np.array([leaf.anchor for leaf in self._leaves], dtype=np.int64)
        lengths = np.array([leaf.length for leaf in self._leaves], dtype=np.int64)
        offsets = np.arange(width, dtype=np.int64)
        gather = np.minimum(anchors[:, None] + offsets[None, :], len(self._reference) - 1)
        matrix = self._reference[gather]
        for index, leaf in enumerate(self._leaves):
            for offset, code in leaf.mismatches:
                if offset < width:
                    matrix[index, offset] = code
        matrix[offsets[None, :] >= lengths[:, None]] = -1
        return matrix

    def _batch_search_keys(self, width: int) -> np.ndarray | None:
        """Fixed-width byte keys of the leaf prefixes, for ``np.searchsorted``.

        Letters are shifted by +1 so that the past-end marker becomes the
        zero byte; returns None when a *leaf* letter would not fit below the
        upper-bound sentinel byte (code ≥ 254), in which case callers fall
        back to the scalar search.  Query pieces may still carry larger
        codes: every code above all leaf letters compares identically, so
        queries saturate at byte 255 without changing the order.
        """
        if self._max_letter is None:
            max_code = int(self._reference.max(initial=0))
            for leaf in self._leaves:
                for _, code in leaf.mismatches:
                    max_code = max(max_code, int(code))
            self._max_letter = max_code
        if self._max_letter + 1 >= 255:
            return None
        if self._search_keys is None or self._search_width < width:
            matrix = (self.prefix_matrix(width) + 1).astype(np.uint8)
            self._search_keys = np.ascontiguousarray(matrix).view(f"S{width}")[:, 0]
            self._search_width = width
        return self._search_keys

    def prefix_range_many(self, pieces: list) -> np.ndarray:
        """Vectorised :meth:`prefix_range` over a batch of query pieces.

        Returns a ``(B × 2)`` array of ``[lo, hi)`` sorted-index ranges.  All
        lower and upper bounds are found with two ``np.searchsorted`` calls
        over cached byte keys; pieces longer than the materialised prefix are
        refined with the exact comparator inside the narrowed range.
        """
        ranges = np.zeros((len(pieces), 2), dtype=np.int64)
        if not pieces or not self._leaves:
            return ranges
        width = min(max(len(piece) for piece in pieces), self.SEARCH_PREFIX_LIMIT)
        keys = self._batch_search_keys(width)
        if keys is None:
            for row, piece in enumerate(pieces):
                ranges[row] = self.prefix_range(piece)
            return ranges
        effective_width = self._search_width
        low_queries = np.zeros((len(pieces), effective_width), dtype=np.uint8)
        high_queries = np.full((len(pieces), effective_width), 255, dtype=np.uint8)
        for row, piece in enumerate(pieces):
            head = np.asarray(piece[:effective_width], dtype=np.int64) + 1
            # Codes above every leaf letter (≤ 253 here) saturate at the
            # sentinel byte: they can never equal a leaf letter, and 255 is
            # greater than every leaf byte, so the order is preserved.
            head = np.minimum(head, 255)
            low_queries[row, : len(head)] = head
            high_queries[row, : len(head)] = head
        low_keys = np.ascontiguousarray(low_queries).view(f"S{effective_width}")[:, 0]
        high_keys = np.ascontiguousarray(high_queries).view(f"S{effective_width}")[:, 0]
        ranges[:, 0] = np.searchsorted(keys, low_keys, side="left")
        ranges[:, 1] = np.searchsorted(keys, high_keys, side="right")
        for row, piece in enumerate(pieces):
            if len(piece) > effective_width:
                ranges[row] = self.prefix_range(
                    piece, lo=int(ranges[row, 0]), hi=int(ranges[row, 1])
                )
        return ranges

    # -- trie ------------------------------------------------------------------------------
    def adjacent_lcps(self) -> np.ndarray:
        """LCP of each consecutive sorted leaf pair (cached; persisted by the store)."""
        if self._cached_lcps is None:
            lcps = np.zeros(len(self._leaves), dtype=np.int64)
            for index in range(1, len(self._leaves)):
                lcps[index] = self._leaf_lcp(index - 1, index)
            self._cached_lcps = lcps
        return self._cached_lcps

    def build_trie(self) -> CompactedTrie:
        """Compacted trie over the sorted leaves (the tree-index variants)."""
        if self._trie is None:
            self._trie = CompactedTrie(
                [leaf.length for leaf in self._leaves],
                self.adjacent_lcps(),
                self.letter,
            )
        return self._trie

    # -- size accounting -------------------------------------------------------------------
    def total_mismatches(self) -> int:
        """Total number of stored mismatches across all leaves."""
        return sum(leaf.mismatch_count() for leaf in self._leaves)

    def size_bytes(self, model: SpaceModel = DEFAULT_SPACE_MODEL, *, as_tree: bool = False) -> int:
        """Charged size of the collection (array layout, optionally + tree nodes)."""
        count = len(self._leaves)
        # Per leaf: anchor, length, position (3 words) + mismatch entries.
        total = model.words(3 * count) + model.words(2 * self.total_mismatches())
        if as_tree:
            trie = self.build_trie()
            total += model.tree_nodes(trie.node_count)
        return total


@dataclass
class MinimizerIndexData:
    """Everything the MWST / MWSA / grid indexes share.

    ``forward`` holds the ``Tsuff`` content (factors read rightward from
    their minimizer), ``backward`` the ``Tpref`` content (read leftward);
    ``pairs`` links leaves with equal minimizer labels and feeds the 2D grid
    of the *-G* variants (``None`` when built by the space-efficient
    construction, which does not produce the pairing).
    """

    source: WeightedString
    z: float
    ell: int
    scheme: MinimizerScheme
    heavy: HeavyString
    forward: LeafCollection
    backward: LeafCollection
    pairs: list[tuple[int, int]] | None = None
    construction: str = "estimation"
    counters: dict = field(default_factory=dict)
    #: The z-estimation the leaves were sampled from, retained (when built
    #: through the estimation path) so point updates can diff old vs new
    #: derivations and re-derive only the affected leaves.  ``None`` for the
    #: space-efficient construction and for store-loaded data, which repair
    #: through a full rebuild instead.
    estimation: ZEstimation | None = None

    # -- query plumbing shared by all variants ------------------------------------------
    def split_pattern(self, codes, mu: int | None = None) -> tuple[int, list[int], list[int]]:
        """Leftmost minimizer and the two query pieces (forward, backward).

        ``mu`` may be passed in when it was already computed (the batch
        engine computes the minimizers of a whole pattern batch at once).
        """
        if mu is None:
            mu = self.scheme.leftmost_pattern_minimizer(codes)
        forward_piece = [int(code) for code in codes[mu:]]
        backward_piece = [int(code) for code in reversed(codes[: mu + 1])]
        return mu, forward_piece, backward_piece

    def candidate_positions(self, leaf_indices, collection: LeafCollection, mu: int):
        """Candidate occurrence starts derived from matched leaves."""
        return {collection.leaf(index).position - mu for index in leaf_indices}

    def size_bytes(
        self,
        model: SpaceModel = DEFAULT_SPACE_MODEL,
        *,
        as_tree: bool = False,
        with_grid: bool = False,
    ) -> int:
        """Charged index size: heavy string + both collections (+ grid points)."""
        total = model.codes(len(self.source)) + model.probabilities(len(self.source))
        total += self.forward.size_bytes(model, as_tree=as_tree)
        total += self.backward.size_bytes(model, as_tree=as_tree)
        if with_grid and self.pairs is not None:
            total += model.words(4 * len(self.pairs))
        return total


def _derive_leaf_pair(
    n: int,
    string_j: np.ndarray,
    ends_j: np.ndarray,
    mismatch_positions: np.ndarray,
    q: int,
    j: int,
) -> tuple[FactorLeaf, FactorLeaf]:
    """The forward/backward leaf pair of minimizer position ``q`` in ``S_j``.

    The single source of truth for leaf derivation: the full construction
    and the point-update re-derivation both call this, so an incrementally
    repaired collection is leaf-for-leaf identical to a fresh build.
    """
    forward_end = int(ends_j[q])
    forward_length = forward_end - q + 1
    lo = int(np.searchsorted(mismatch_positions, q, side="left"))
    hi = int(np.searchsorted(mismatch_positions, forward_end, side="right"))
    forward = FactorLeaf(
        anchor=q,
        length=forward_length,
        mismatches=tuple(
            (int(p - q), int(string_j[p])) for p in mismatch_positions[lo:hi]
        ),
        position=q,
        source=j,
    )
    backward_start = int(np.searchsorted(ends_j, q, side="left"))
    backward_length = q - backward_start + 1
    lo = int(np.searchsorted(mismatch_positions, backward_start, side="left"))
    hi = int(np.searchsorted(mismatch_positions, q, side="right"))
    backward = FactorLeaf(
        anchor=n - 1 - q,
        length=backward_length,
        mismatches=tuple(
            sorted((int(q - p), int(string_j[p])) for p in mismatch_positions[lo:hi])
        ),
        position=q,
        source=j,
    )
    return forward, backward


def build_leaves_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    scheme: MinimizerScheme,
    estimation: ZEstimation,
    heavy: HeavyString,
) -> tuple[list[FactorLeaf], list[FactorLeaf], list[tuple[int, int]]]:
    """Sample the z-estimation with minimizers (the Lemma 5 construction).

    For every string ``S_j`` and every property-respecting window of length
    ℓ, the window's minimizer position ``q`` produces one forward leaf (the
    longest property-respecting substring of ``S_j`` starting at ``q``) and
    one backward leaf (the longest one ending at ``q``, reversed), both
    encoded relative to the heavy string.  Returns the two raw leaf lists and
    the list pairing them up (same list index = same (q, j) label).
    """
    n = len(source)
    heavy_codes = heavy.codes
    forward: list[FactorLeaf] = []
    backward: list[FactorLeaf] = []
    for j in range(estimation.width):
        string_j = estimation.strings[j]
        ends_j = estimation.ends[j]
        if n >= ell:
            starts = np.arange(n - ell + 1, dtype=np.int64)
            valid_window = ends_j[: n - ell + 1] >= starts + ell - 1
        else:
            valid_window = np.zeros(0, dtype=bool)
        if not valid_window.any():
            continue
        minimizer_positions = scheme.minimizer_positions(string_j, valid_window)
        if not minimizer_positions:
            continue
        mismatch_positions = np.nonzero(string_j != heavy_codes)[0]
        for q in minimizer_positions:
            forward_leaf, backward_leaf = _derive_leaf_pair(
                n, string_j, ends_j, mismatch_positions, q, j
            )
            forward.append(forward_leaf)
            backward.append(backward_leaf)
    pairs = list(zip(range(len(forward)), range(len(backward))))
    return forward, backward, pairs


def build_index_data_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    *,
    scheme: MinimizerScheme | None = None,
    estimation: ZEstimation | None = None,
    keep_pairs: bool = True,
) -> MinimizerIndexData:
    """Build the shared minimizer index data through the explicit z-estimation path."""
    if ell <= 0:
        raise ConstructionError("ell must be positive")
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    if estimation is None:
        estimation = build_z_estimation(source, z)
    heavy = HeavyString(source)
    raw_forward, raw_backward, raw_pairs = build_leaves_from_estimation(
        source, z, ell, scheme, estimation, heavy
    )
    forward = LeafCollection(raw_forward, heavy.codes)
    backward = LeafCollection(raw_backward, heavy.codes[::-1].copy())
    pairs = None
    if keep_pairs:
        pairs = [
            (int(forward.raw_to_sorted[f]), int(backward.raw_to_sorted[b]))
            for f, b in raw_pairs
        ]
    return MinimizerIndexData(
        source=source,
        z=z,
        ell=ell,
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction="estimation",
        counters={
            "forward_leaves": len(forward),
            "backward_leaves": len(backward),
            "estimation_entries": estimation.width * estimation.length,
        },
        estimation=estimation,
    )


# --------------------------------------------------------------------------- #
# point updates: localized leaf re-derivation                                  #
# --------------------------------------------------------------------------- #
def _leaf_letters(leaf: FactorLeaf, reference: np.ndarray, limit: int) -> np.ndarray:
    """The first ``limit`` spelled letters of a leaf (reference + mismatches)."""
    letters = np.array(reference[leaf.anchor : leaf.anchor + limit])
    for offset, code in leaf.mismatches:
        if offset < limit:
            letters[offset] = code
    return letters


def _content_compare(a: FactorLeaf, b: FactorLeaf, reference: np.ndarray) -> int:
    """The collection's total leaf order, evaluated on leaf *content*.

    Same order as :meth:`LeafCollection._compare` — lexicographic on the
    spelled letters, ties broken by (length, position, source) — but
    computed against one shared reference, so leaves from an existing
    collection and freshly derived leaves compare uniformly.
    """
    if a is b:
        return 0
    limit = min(a.length, b.length)
    letters_a = _leaf_letters(a, reference, limit)
    letters_b = _leaf_letters(b, reference, limit)
    difference = np.nonzero(letters_a != letters_b)[0]
    if len(difference):
        offset = int(difference[0])
        return -1 if letters_a[offset] < letters_b[offset] else 1
    if a.length != b.length:
        return -1 if a.length < b.length else 1
    if a.position != b.position:
        return -1 if a.position < b.position else 1
    if a.source != b.source:
        return -1 if a.source < b.source else 1
    return 0


def _content_lcp(a: FactorLeaf, b: FactorLeaf, reference: np.ndarray) -> int:
    """Longest common prefix of two leaves, on their spelled letters."""
    limit = min(a.length, b.length)
    difference = np.nonzero(
        _leaf_letters(a, reference, limit) != _leaf_letters(b, reference, limit)
    )[0]
    return int(difference[0]) if len(difference) else limit


def _merge_collection(
    old_collection: LeafCollection,
    dirty: set,
    fresh: list[FactorLeaf],
    reference: np.ndarray,
) -> LeafCollection:
    """Merge an update's surviving and re-derived leaves into a sorted collection.

    Surviving leaves keep their relative order (their content is untouched —
    that is what made them survive), so the merge is a single comparator
    pass.  Adjacent-LCP values are carried over where the old neighbourhood
    survived intact (the LCP of two non-adjacent old leaves is the min of
    the old adjacent LCPs between them) and recomputed directly only at the
    seams around inserted leaves.
    """
    kept: list[FactorLeaf] = []
    kept_old_index: list[int] = []
    for index, leaf in enumerate(old_collection):
        if (leaf.source, leaf.position) not in dirty:
            kept.append(leaf)
            kept_old_index.append(index)
    fresh_sorted = sorted(
        fresh, key=cmp_to_key(lambda a, b: _content_compare(a, b, reference))
    )
    # Binary-search each fresh leaf's slot among the kept leaves: the leaf
    # order is strict (labels are unique), so insertion points are exact and
    # non-decreasing along the sorted fresh leaves.
    merged: list[FactorLeaf] = []
    origins: list[int] = []  # old sorted index, or -1 for a fresh leaf
    previous = 0
    for leaf in fresh_sorted:
        low, high = previous, len(kept)
        while low < high:
            middle = (low + high) // 2
            if _content_compare(kept[middle], leaf, reference) < 0:
                low = middle + 1
            else:
                high = middle
        merged.extend(kept[previous:low])
        origins.extend(kept_old_index[previous:low])
        merged.append(leaf)
        origins.append(-1)
        previous = low
    merged.extend(kept[previous:])
    origins.extend(kept_old_index[previous:])

    old_lcps = old_collection._cached_lcps
    lcps = None
    if old_lcps is not None:
        lcps = np.zeros(len(merged), dtype=np.int64)
        for t in range(1, len(merged)):
            previous, current = origins[t - 1], origins[t]
            if previous >= 0 and current == previous + 1:
                lcps[t] = old_lcps[current]
            elif previous >= 0 and current > previous:
                # Old leaves with dirty leaves dropped in between: the LCP
                # telescopes to the min over the removed stretch.
                lcps[t] = int(np.min(old_lcps[previous + 1 : current + 1]))
            else:
                lcps[t] = _content_lcp(merged[t - 1], merged[t], reference)
    return LeafCollection(merged, reference, presorted=True, trie_lcps=lcps)


def apply_updates_to_data(
    data: MinimizerIndexData,
    positions,
    *,
    max_dirty_fraction: float = 0.25,
) -> tuple[MinimizerIndexData, dict] | None:
    """Localized repair of minimizer index data after point updates.

    ``data.source`` must already carry the new rows.  The old and new
    derivations are diffed exactly: the z-estimation is replayed (it is a
    sequential left-to-right construction and cannot be patched), but the
    expensive leaf machinery — per-leaf derivation, sorting, adjacent LCPs —
    is only re-run for leaves whose derivation actually changed: the
    minimizer windows within ``2ℓ−1`` positions of a touched row plus
    whatever the estimation ripple reaches (property ends crossing an
    updated position, re-assigned estimation letters).  Every surviving leaf
    is reused verbatim, so the result is leaf-for-leaf identical to a fresh
    build over the mutated string.

    Returns ``(new_data, details)``, or ``None`` when the data cannot be
    repaired locally (space-efficient construction, store-loaded data
    without its estimation, or a dirty set so large a full rebuild is
    cheaper) — callers then fall back to a full rebuild.
    """
    if data.construction != "estimation" or data.estimation is None:
        return None
    source = data.source
    scheme = data.scheme
    ell = data.ell
    n = len(source)
    old_estimation = data.estimation
    new_estimation = build_z_estimation(source, data.z)
    if (
        new_estimation.width != old_estimation.width
        or new_estimation.length != old_estimation.length
    ):
        return None  # cannot happen for a fixed z; guard anyway
    updated = np.asarray(sorted({int(p) for p in positions}), dtype=np.int64)
    new_heavy = data.heavy.updated_copy(source, updated)

    old_labels: dict[int, list[int]] = {}
    for leaf in data.forward:
        old_labels.setdefault(leaf.source, []).append(leaf.position)

    dirty: set[tuple[int, int]] = set()
    fresh_specs: list[tuple[int, int]] = []
    for j in range(new_estimation.width):
        string_old = old_estimation.strings[j]
        string_new = new_estimation.strings[j]
        ends_old = old_estimation.ends[j]
        ends_new = new_estimation.ends[j]
        changed = np.union1d(np.nonzero(string_old != string_new)[0], updated)
        if n >= ell:
            starts = np.arange(n - ell + 1, dtype=np.int64)
            valid = ends_new[: n - ell + 1] >= starts + ell - 1
            q_new_list = (
                scheme.minimizer_positions(string_new, valid) if valid.any() else []
            )
        else:
            q_new_list = []
        q_new = np.asarray(q_new_list, dtype=np.int64)
        q_old = np.asarray(sorted(old_labels.get(j, [])), dtype=np.int64)
        for q in np.setdiff1d(q_old, q_new, assume_unique=True):
            dirty.add((j, int(q)))
        for q in np.setdiff1d(q_new, q_old, assume_unique=True):
            dirty.add((j, int(q)))
            fresh_specs.append((j, int(q)))
        retained = np.intersect1d(q_old, q_new, assume_unique=True)
        if len(retained):
            forward_same = ends_old[retained] == ends_new[retained]
            backward_same = np.searchsorted(ends_old, retained, side="left") == (
                np.searchsorted(ends_new, retained, side="left")
            )
            # A retained leaf also changes when any re-assigned letter (in
            # S_j or in the heavy reference) falls inside its factor span
            # [backward_start, forward_end].
            span_lo = np.searchsorted(ends_new, retained, side="left")
            span_hi = ends_new[retained]
            letters_hit = np.searchsorted(changed, span_lo, side="left") < (
                np.searchsorted(changed, span_hi, side="right")
            )
            for q in retained[~(forward_same & backward_same) | letters_hit]:
                dirty.add((j, int(q)))
                fresh_specs.append((j, int(q)))

    total_leaves = max(1, len(data.forward))
    if len(dirty) > 64 and len(dirty) > max_dirty_fraction * total_leaves:
        return None

    fresh_forward: list[FactorLeaf] = []
    fresh_backward: list[FactorLeaf] = []
    by_string: dict[int, list[int]] = {}
    for j, q in fresh_specs:
        by_string.setdefault(j, []).append(q)
    for j, qs in sorted(by_string.items()):
        string_new = new_estimation.strings[j]
        ends_new = new_estimation.ends[j]
        mismatch_positions = np.nonzero(string_new != new_heavy.codes)[0]
        for q in sorted(qs):
            forward_leaf, backward_leaf = _derive_leaf_pair(
                n, string_new, ends_new, mismatch_positions, q, j
            )
            fresh_forward.append(forward_leaf)
            fresh_backward.append(backward_leaf)

    forward_reference = new_heavy.codes
    backward_reference = forward_reference[::-1].copy()
    forward = _merge_collection(data.forward, dirty, fresh_forward, forward_reference)
    backward = _merge_collection(
        data.backward, dirty, fresh_backward, backward_reference
    )
    pairs = None
    if data.pairs is not None:
        backward_slot = {
            (leaf.source, leaf.position): index for index, leaf in enumerate(backward)
        }
        pairs = [
            (index, backward_slot[(leaf.source, leaf.position)])
            for index, leaf in enumerate(forward)
        ]
    counters = dict(data.counters)
    counters["forward_leaves"] = len(forward)
    counters["backward_leaves"] = len(backward)
    counters["estimation_entries"] = new_estimation.width * new_estimation.length
    new_data = MinimizerIndexData(
        source=source,
        z=data.z,
        ell=ell,
        scheme=scheme,
        heavy=new_heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction="estimation",
        counters=counters,
        estimation=new_estimation,
    )
    details = {
        "strategy": "localized",
        "rederived_leaves": len(fresh_specs),
        "dropped_leaves": len(dirty) - len(fresh_specs),
        "reused_leaves": len(forward) - len(fresh_specs),
    }
    return new_data, details
