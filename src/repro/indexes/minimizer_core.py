"""Shared machinery of the minimizer-based indexes (Section 3 of the paper).

The minimizer solid-factor trees ``Tsuff`` and ``Tpref`` both boil down to a
*sorted collection of factor leaves*: every leaf is anchored at a minimizer
position ``q`` and spells the letters of a solid factor read rightward
(``Tsuff``) or leftward (``Tpref``) from ``q``.  Leaves are never
materialised as strings — following Corollary 4 they are stored as a
reference into the heavy string plus at most ``log₂ z`` mismatches, and all
comparisons go through longest-common-extension queries on the heavy string
(the Theorem 12 trick).

The collection is stored structure-of-arrays: parallel ``anchors`` /
``lengths`` / ``positions`` / ``sources`` vectors plus a CSR triple for the
mismatches.  Sorting packs fixed-width leaf-prefix key matrices and sorts
them with stable numpy argsorts (radix-style), widening the materialised
prefix only for the rows still tied; :class:`FactorLeaf` objects are lazy
views materialised on demand (tests, scalar query paths).

This module provides:

* :class:`FactorLeaf` — one leaf (anchor, length, mismatches, label);
* :class:`LeafArrays` — the raw structure-of-arrays leaf storage;
* :class:`LeafCollection` — a sorted, searchable collection of leaves over a
  reference code string (the heavy string or its reverse), with optional
  compacted-trie construction on top;
* :class:`MinimizerIndexData` — the pair of collections plus the sampling
  scheme, i.e. everything the MWST / MWSA / grid variants share;
* :func:`build_leaf_arrays_from_estimation` — the vectorised construction
  that samples the z-estimation (Lemma 5 / Contribution 1), and
  :func:`build_leaves_from_estimation`, its per-leaf reference twin kept for
  parity tests and old-vs-new benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cmp_to_key

import numpy as np

from ..core.estimation import ZEstimation, build_z_estimation, resume_z_estimation
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from ..strings.lcp import LCEIndex
from ..strings.trie import CompactedTrie
from .space import DEFAULT_SPACE_MODEL, SpaceModel

__all__ = [
    "FactorLeaf",
    "LeafArrays",
    "LeafCollection",
    "MinimizerIndexData",
    "build_leaves_from_estimation",
    "build_leaf_arrays_from_estimation",
    "build_index_data_from_estimation",
    "apply_updates_to_data",
    "LEAF_METHODS",
]

#: Selectable leaf-construction paths of
#: :func:`build_index_data_from_estimation`: ``"vectorized"`` derives and
#: sorts leaves as flat arrays (the default), ``"reference"`` goes leaf
#: object by leaf object.  Both produce leaf-identical collections.
LEAF_METHODS = ("vectorized", "reference")


def _concat_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenated ``[lo[i], hi[i])`` ranges as one flat index array."""
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.repeat(lo, counts) + np.arange(total, dtype=np.int64) - np.repeat(
        starts, counts
    )


def _concat_ranges_reversed(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Like :func:`_concat_ranges` but each range is emitted in reverse."""
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return np.repeat(hi - 1, counts) - (
        np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    )


@dataclass(frozen=True)
class FactorLeaf:
    """One leaf of a minimizer solid-factor tree.

    ``anchor`` is the position in the *reference* string (the heavy string
    for forward leaves, the reversed heavy string for backward leaves) from
    which the leaf's letters are read rightward; ``mismatches`` lists the
    offsets at which the letter differs from the reference, with the actual
    letter code; ``position`` is the minimizer position ``q`` in the original
    weighted string, used to derive candidate occurrence positions; and
    ``source`` records which z-estimation string produced the leaf (or ``-1``
    for the space-efficient construction, which works per distinct factor).
    """

    anchor: int
    length: int
    mismatches: tuple[tuple[int, int], ...]
    position: int
    source: int = -1

    def mismatch_count(self) -> int:
        """Number of stored mismatches (≤ log₂ z for solid factors, Lemma 3)."""
        return len(self.mismatches)


class LeafArrays:
    """Structure-of-arrays leaf storage: one row per leaf, mismatches in CSR.

    The construction fast path derives leaves directly in this layout;
    :meth:`from_leaves` converts a list of :class:`FactorLeaf` objects (the
    reference construction, the space-efficient DFS, update re-derivation).
    """

    __slots__ = (
        "anchors",
        "lengths",
        "positions",
        "sources",
        "mm_start",
        "mm_offset",
        "mm_code",
    )

    def __init__(
        self,
        anchors: np.ndarray,
        lengths: np.ndarray,
        positions: np.ndarray,
        sources: np.ndarray,
        mm_start: np.ndarray,
        mm_offset: np.ndarray,
        mm_code: np.ndarray,
    ) -> None:
        self.anchors = np.asarray(anchors, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.positions = np.asarray(positions, dtype=np.int64)
        self.sources = np.asarray(sources, dtype=np.int64)
        self.mm_start = np.asarray(mm_start, dtype=np.int64)
        self.mm_offset = np.asarray(mm_offset, dtype=np.int64)
        self.mm_code = np.asarray(mm_code, dtype=np.int64)

    @classmethod
    def empty(cls) -> "LeafArrays":
        zeros = np.empty(0, dtype=np.int64)
        return cls(zeros, zeros, zeros, zeros, np.zeros(1, dtype=np.int64), zeros, zeros)

    @classmethod
    def from_leaves(cls, leaves) -> "LeafArrays":
        leaves = list(leaves)
        count = len(leaves)
        anchors = np.fromiter((leaf.anchor for leaf in leaves), np.int64, count)
        lengths = np.fromiter((leaf.length for leaf in leaves), np.int64, count)
        positions = np.fromiter((leaf.position for leaf in leaves), np.int64, count)
        sources = np.fromiter((leaf.source for leaf in leaves), np.int64, count)
        mm_start = np.zeros(count + 1, dtype=np.int64)
        offsets: list[int] = []
        codes: list[int] = []
        for row, leaf in enumerate(leaves):
            for offset, code in leaf.mismatches:
                offsets.append(offset)
                codes.append(code)
            mm_start[row + 1] = len(offsets)
        return cls(
            anchors,
            lengths,
            positions,
            sources,
            mm_start,
            np.asarray(offsets, dtype=np.int64),
            np.asarray(codes, dtype=np.int64),
        )

    @classmethod
    def concatenate(cls, parts: list["LeafArrays"]) -> "LeafArrays":
        if not parts:
            return cls.empty()
        counts = [arrays.mm_start[1:] - arrays.mm_start[0] for arrays in parts]
        mm_start = np.concatenate(
            [np.zeros(1, dtype=np.int64)]
            + [
                block + offset
                for block, offset in zip(
                    counts,
                    np.concatenate(
                        [[0], np.cumsum([int(c[-1]) if len(c) else 0 for c in counts])]
                    )[:-1],
                )
            ]
        )
        return cls(
            np.concatenate([arrays.anchors for arrays in parts]),
            np.concatenate([arrays.lengths for arrays in parts]),
            np.concatenate([arrays.positions for arrays in parts]),
            np.concatenate([arrays.sources for arrays in parts]),
            mm_start,
            np.concatenate([arrays.mm_offset for arrays in parts]),
            np.concatenate([arrays.mm_code for arrays in parts]),
        )

    def __len__(self) -> int:
        return len(self.anchors)

    def leaf(self, row: int) -> FactorLeaf:
        lo, hi = int(self.mm_start[row]), int(self.mm_start[row + 1])
        return FactorLeaf(
            anchor=int(self.anchors[row]),
            length=int(self.lengths[row]),
            mismatches=tuple(
                (int(self.mm_offset[index]), int(self.mm_code[index]))
                for index in range(lo, hi)
            ),
            position=int(self.positions[row]),
            source=int(self.sources[row]),
        )

    def take(self, rows: np.ndarray) -> "LeafArrays":
        """The sub-arrays of the given rows, in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        starts = self.mm_start[rows]
        ends = self.mm_start[rows + 1]
        counts = ends - starts
        flat = _concat_ranges(starts, ends)
        return LeafArrays(
            self.anchors[rows],
            self.lengths[rows],
            self.positions[rows],
            self.sources[rows],
            np.concatenate([[0], np.cumsum(counts)]),
            self.mm_offset[flat],
            self.mm_code[flat],
        )


class LeafCollection:
    """A lexicographically sorted, array-backed collection of factor leaves.

    Parameters
    ----------
    leaves:
        The leaves, in arbitrary order — a list of :class:`FactorLeaf` or a
        :class:`LeafArrays` block.
    reference:
        The code string the anchors refer to (heavy string or its reverse).
    lce:
        Optional LCE index over ``reference``; built on demand when the
        collection needs an exact comparison fallback.
    """

    #: Length of the materialised prefix used by the first radix-sort round
    #: (and by the adjacent-LCP computation's first round).
    PRESORT_PREFIX = 24

    #: Widest materialised prefix used by the vectorised batch search; longer
    #: query pieces narrow the range on the first letters, then refine with
    #: the exact scalar comparator.
    SEARCH_PREFIX_LIMIT = 128

    #: Widest prefix the sort/LCP widening rounds materialise before falling
    #: back to the exact heavy-LCE comparator (pathological near-duplicate
    #: content only; identical-derivation duplicates are detected directly).
    SORT_WIDEN_LIMIT = 1024

    def __init__(
        self,
        leaves,
        reference: np.ndarray,
        lce: LCEIndex | None = None,
        *,
        presorted: bool = False,
        trie_lcps: np.ndarray | None = None,
        method: str = "vectorized",
    ) -> None:
        """``presorted=True`` trusts the given leaf order; ``trie_lcps`` seeds
        the adjacent-LCP cache so reloaded collections build tries without an
        LCE index (both are used by the binary index store).  ``method``
        selects the radix-style array sort (default) or the frozen
        per-leaf reference sort kept for parity tests and old-vs-new
        benchmarks — both realise the same unique total order."""
        self._reference = np.asarray(reference, dtype=np.int64)
        self._lce = lce
        self._method = method
        self._cached_lcps = (
            None if trie_lcps is None else np.asarray(trie_lcps, dtype=np.int64)
        )
        arrays = (
            leaves if isinstance(leaves, LeafArrays) else LeafArrays.from_leaves(leaves)
        )
        self._arrays = arrays
        count = len(arrays)
        if presorted:
            self.raw_to_sorted = np.arange(count, dtype=np.int64)
        else:
            if method == "reference":
                order = self._reference_sort_order()
            else:
                order = self._sort_order()
            self._arrays = arrays.take(order)
            self.raw_to_sorted = np.empty(count, dtype=np.int64)
            self.raw_to_sorted[order] = np.arange(count, dtype=np.int64)
        self._leaf_cache: list[FactorLeaf | None] = [None] * count
        self._trie: CompactedTrie | None = None
        self._search_keys: np.ndarray | None = None
        self._search_width = 0
        self._max_letter: int | None = None

    # -- array access ----------------------------------------------------------------
    @property
    def arrays(self) -> LeafArrays:
        """The parallel leaf arrays, in sorted order (store, merge, engine)."""
        return self._arrays

    @property
    def reference(self) -> np.ndarray:
        """The reference code string shared by all leaves."""
        return self._reference

    @property
    def positions(self) -> np.ndarray:
        """Minimizer positions of the leaves, aligned with the sorted order."""
        return self._arrays.positions

    @property
    def anchors(self) -> np.ndarray:
        """Reference anchors of the leaves, aligned with the sorted order."""
        return self._arrays.anchors

    @property
    def lengths(self) -> np.ndarray:
        """Leaf lengths, aligned with the sorted order."""
        return self._arrays.lengths

    @property
    def sources(self) -> np.ndarray:
        """Source z-estimation string ids, aligned with the sorted order."""
        return self._arrays.sources

    # -- letter access -------------------------------------------------------------
    def letter(self, index: int, offset: int) -> int:
        """Letter code of leaf ``index`` at ``offset`` (must be < its length)."""
        arrays = self._arrays
        for entry in range(int(arrays.mm_start[index]), int(arrays.mm_start[index + 1])):
            if arrays.mm_offset[entry] == offset:
                return int(arrays.mm_code[entry])
        return int(self._reference[int(arrays.anchors[index]) + offset])

    def letters_at(self, rows: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`letter` over parallel ``(row, offset)`` queries.

        The mismatch entries of each row are stored with ascending offsets,
        so ``row * span + offset`` keys are globally sorted and one
        ``searchsorted`` resolves every query against the mismatch CSR; the
        rest reads the reference at ``anchor + offset``.
        """
        arrays = self._arrays
        rows = np.asarray(rows, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if not len(rows):
            return np.empty(0, dtype=np.int64)
        result = self._reference[arrays.anchors[rows] + offsets].astype(np.int64)
        if len(arrays.mm_offset):
            span = int(max(arrays.mm_offset.max(), offsets.max())) + 1
            counts = arrays.mm_start[1:] - arrays.mm_start[:-1]
            entry_rows = np.repeat(np.arange(len(arrays.anchors), dtype=np.int64), counts)
            entry_keys = entry_rows * span + arrays.mm_offset
            query_keys = rows * span + offsets
            slots = np.searchsorted(entry_keys, query_keys)
            clipped = np.minimum(slots, len(entry_keys) - 1)
            found = entry_keys[clipped] == query_keys
            result[found] = arrays.mm_code[clipped[found]]
        return result

    def leaf(self, index: int) -> FactorLeaf:
        """The leaf at a sorted index (a lazily materialised view)."""
        cached = self._leaf_cache[index]
        if cached is None:
            cached = self._arrays.leaf(index)
            self._leaf_cache[index] = cached
        return cached

    def __len__(self) -> int:
        return len(self._arrays)

    def __iter__(self):
        return (self.leaf(index) for index in range(len(self._arrays)))

    def leaf_codes(self, index: int, limit: int | None = None) -> list[int]:
        """Materialise (a prefix of) one leaf's letters — mostly for tests."""
        length = int(self._arrays.lengths[index])
        if limit is not None:
            length = min(limit, length)
        return [self.letter(index, offset) for offset in range(length)]

    # -- exact comparisons (scalar fallback) -------------------------------------------
    def _ensure_lce(self) -> LCEIndex:
        if self._lce is None:
            self._lce = LCEIndex(self._reference)
        return self._lce

    def _mismatch_offsets(self, index: int) -> np.ndarray:
        arrays = self._arrays
        return arrays.mm_offset[arrays.mm_start[index] : arrays.mm_start[index + 1]]

    def _leaf_lcp(self, first: int, second: int) -> int:
        """Longest common prefix of two leaves, via heavy-string LCE queries.

        Between mismatch offsets both leaves equal the reference, so whole
        stretches are compared with a single LCE query; only the ≤ log₂ z
        mismatch offsets are compared letter by letter (the Theorem 12
        comparison trick).
        """
        arrays = self._arrays
        lce = self._ensure_lce()
        limit = int(min(arrays.lengths[first], arrays.lengths[second]))
        anchor_a = int(arrays.anchors[first])
        anchor_b = int(arrays.anchors[second])
        breakpoints = sorted(
            {int(offset) for offset in self._mismatch_offsets(first)}
            | {int(offset) for offset in self._mismatch_offsets(second)}
        )
        bp_index = 0
        offset = 0
        while offset < limit:
            while bp_index < len(breakpoints) and breakpoints[bp_index] < offset:
                bp_index += 1
            next_break = breakpoints[bp_index] if bp_index < len(breakpoints) else limit
            next_break = min(next_break, limit)
            if offset < next_break:
                # Both leaves follow the reference on [offset, next_break).
                agreed = lce.lce(anchor_a + offset, anchor_b + offset)
                if agreed < next_break - offset:
                    return offset + agreed
                offset = next_break
                if offset >= limit:
                    return limit
            # offset is a mismatch offset of at least one leaf: compare directly.
            if self.letter(first, offset) != self.letter(second, offset):
                return offset
            offset += 1
        return limit

    def _compare(self, first: int, second: int) -> int:
        """Full lexicographic comparison of two leaves (ties by label)."""
        arrays = self._arrays
        lcp = self._leaf_lcp(first, second)
        length_a = int(arrays.lengths[first])
        length_b = int(arrays.lengths[second])
        if lcp < length_a and lcp < length_b:
            letter_a = self.letter(first, lcp)
            letter_b = self.letter(second, lcp)
            return -1 if letter_a < letter_b else 1
        if length_a != length_b:
            return -1 if length_a < length_b else 1
        position_a = int(arrays.positions[first])
        position_b = int(arrays.positions[second])
        if position_a != position_b:
            return -1 if position_a < position_b else 1
        source_a = int(arrays.sources[first])
        source_b = int(arrays.sources[second])
        if source_a != source_b:
            return -1 if source_a < source_b else 1
        return 0

    # -- vectorised content materialisation ----------------------------------------------
    def _content_matrix(self, rows: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Letters of the given leaf rows at offsets ``[lo, hi)``.

        Entry ``[i, t]`` is the letter of row ``rows[i]`` at offset
        ``lo + t``, or ``-1`` past the leaf's end (which sorts before every
        real letter, matching the proper-prefix-first leaf order).
        Reference letters are gathered in one fancy-indexing pass and the CSR
        mismatches of the selected rows are scattered on top.
        """
        arrays = self._arrays
        width = hi - lo
        if len(rows) == 0 or len(self._reference) == 0:
            return np.empty((len(rows), width), dtype=np.int64)
        offsets = np.arange(lo, hi, dtype=np.int64)
        gather = np.minimum(
            arrays.anchors[rows][:, None] + offsets[None, :], len(self._reference) - 1
        )
        matrix = self._reference[gather]
        starts = arrays.mm_start[rows]
        ends = arrays.mm_start[rows + 1]
        counts = ends - starts
        if counts.any():
            flat = _concat_ranges(starts, ends)
            mm_offsets = arrays.mm_offset[flat]
            selected = (mm_offsets >= lo) & (mm_offsets < hi)
            if selected.any():
                mm_rows = np.repeat(np.arange(len(rows), dtype=np.int64), counts)
                matrix[mm_rows[selected], mm_offsets[selected] - lo] = arrays.mm_code[
                    flat[selected]
                ]
        matrix[offsets[None, :] >= arrays.lengths[rows][:, None]] = -1
        return matrix

    def _max_letter_code(self) -> int:
        max_code = int(self._reference.max(initial=0))
        if len(self._arrays.mm_code):
            max_code = max(max_code, int(self._arrays.mm_code.max()))
        return max_code

    # -- sorting ---------------------------------------------------------------------
    def _stable_content_order(
        self,
        matrix: np.ndarray,
        positions: np.ndarray,
        sources: np.ndarray,
        group_ids: np.ndarray | None,
        packable: bool,
    ) -> np.ndarray:
        """Stable order by (group, content columns, position, source).

        Implemented as a chain of stable argsorts from the least significant
        key up (classic LSD radix sorting); when every letter fits in a byte
        the content columns collapse into one packed fixed-width byte key
        compared with a single memcmp-style argsort.
        """
        order = np.lexsort((sources, positions))
        if packable:
            width = matrix.shape[1]
            packed = np.ascontiguousarray((matrix + 1).astype(np.uint8)).view(
                f"S{width}"
            )[:, 0]
            order = order[np.argsort(packed[order], kind="stable")]
        else:
            for column in range(matrix.shape[1] - 1, -1, -1):
                order = order[np.argsort(matrix[order, column], kind="stable")]
        if group_ids is not None:
            order = order[np.argsort(group_ids[order], kind="stable")]
        return order

    def _equal_derivation_mask(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        """Mask of row pairs with identical (anchor, length, mismatches).

        Identical derivations spell identical content by construction — the
        cheap way to recognise the z near-duplicate leaves (certain regions
        repeat across estimation strings) without materialising their
        letters.
        """
        arrays = self._arrays
        counts_a = arrays.mm_start[rows_a + 1] - arrays.mm_start[rows_a]
        counts_b = arrays.mm_start[rows_b + 1] - arrays.mm_start[rows_b]
        same = (
            (arrays.anchors[rows_a] == arrays.anchors[rows_b])
            & (arrays.lengths[rows_a] == arrays.lengths[rows_b])
            & (counts_a == counts_b)
        )
        candidates = np.nonzero(same & (counts_a > 0))[0]
        if len(candidates):
            counts = counts_a[candidates]
            flat_a = _concat_ranges(
                arrays.mm_start[rows_a[candidates]],
                arrays.mm_start[rows_a[candidates] + 1],
            )
            flat_b = _concat_ranges(
                arrays.mm_start[rows_b[candidates]],
                arrays.mm_start[rows_b[candidates] + 1],
            )
            equal_entries = (arrays.mm_offset[flat_a] == arrays.mm_offset[flat_b]) & (
                arrays.mm_code[flat_a] == arrays.mm_code[flat_b]
            )
            starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
            same[candidates] &= np.add.reduceat(equal_entries, starts) == counts
        return same

    def _presort_key(self, index: int, *, packable: bool = True):
        """Materialised prefix key of one leaf (the reference sort's key).

        Byte strings for alphabets that fit a byte; letter tuples otherwise.
        (The historical bytes-only key clipped codes at 255, which could
        order two leaves by their clipped prefixes without ever reaching the
        exact comparator — a latent mis-sort for σ ≥ 255 alphabets that the
        construction-parity sweep caught against the array path.)
        """
        limit = min(self.PRESORT_PREFIX, int(self._arrays.lengths[index]))
        if packable:
            return bytes(self.letter(index, offset) + 1 for offset in range(limit))
        return tuple(self.letter(index, offset) for offset in range(limit))

    def _reference_sort_order(self) -> np.ndarray:
        """The frozen per-leaf sort: Python prefix keys + comparator refinement.

        This is the pre-array implementation, kept verbatim in behaviour so
        the construction benchmark has a faithful old path to compare against
        and the parity tests can pin both sorts to the same total order.
        """
        count = len(self._arrays)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        packable = self._max_letter_code() + 1 < 255
        keys = {
            index: self._presort_key(index, packable=packable)
            for index in range(count)
        }
        order = sorted(range(count), key=keys.__getitem__)
        # Refine groups that share the materialised prefix with the exact
        # heavy-LCE comparator (O(log z) per comparison, Theorem 12).
        refined: list[int] = []
        group: list[int] = []
        group_key = None

        def flush() -> None:
            if len(group) > 1:
                group.sort(key=cmp_to_key(self._compare))
            refined.extend(group)

        for index in order:
            key = keys[index]
            if group_key is None or key != group_key:
                flush()
                group = [index]
                group_key = key
            else:
                group.append(index)
        flush()
        return np.asarray(refined, dtype=np.int64)

    def _sort_order(self) -> np.ndarray:
        """The sorted leaf order, computed with packed-key radix rounds.

        Round one sorts every leaf by its first :data:`PRESORT_PREFIX`
        letters (past-end marked, so proper prefixes sort first) with
        position/source as the final tie-breaks; rows still tied on content
        keep doubling the materialised prefix — but only for themselves —
        until the tie resolves, the run is recognised as identical-derivation
        duplicates (equal content by construction), or the widening limit is
        reached and the exact heavy-LCE comparator finishes the run.  The
        resulting permutation realises the same unique total order —
        (content, length, position, source) — as the reference comparator.
        """
        arrays = self._arrays
        count = len(arrays)
        order = np.arange(count, dtype=np.int64)
        if count <= 1:
            return order
        lengths = arrays.lengths
        positions = arrays.positions
        sources = arrays.sources
        packable = self._max_letter_code() + 1 < 255
        lo_col = 0
        width = self.PRESORT_PREFIX
        # (start, end) ranges of `order` whose rows are tied on all columns
        # below lo_col; initially a single run covering everything.
        segments: list[tuple[int, int]] = [(0, count)]
        while segments:
            rows = np.concatenate([order[start:end] for start, end in segments])
            slots = np.concatenate(
                [np.arange(start, end, dtype=np.int64) for start, end in segments]
            )
            if len(segments) == 1:
                group_ids = None
            else:
                group_ids = np.repeat(
                    np.arange(len(segments), dtype=np.int64),
                    [end - start for start, end in segments],
                )
            hi_col = lo_col + width
            matrix = self._content_matrix(rows, lo_col, hi_col)
            sub = self._stable_content_order(
                matrix, positions[rows], sources[rows], group_ids, packable
            )
            rows = rows[sub]
            matrix = matrix[sub]
            order[slots] = rows
            same_group = (
                np.ones(len(rows) - 1, dtype=bool)
                if group_ids is None
                else group_ids[sub][1:] == group_ids[sub][:-1]
            )
            # A row is only fully encoded once its past-end marker fell
            # inside the materialised window, i.e. when length < hi_col; a
            # leaf of length exactly hi_col is indistinguishable from a
            # longer one sharing its letters and must stay tied.
            tied = (
                same_group
                & (lengths[rows[1:]] >= hi_col)
                & (lengths[rows[:-1]] >= hi_col)
                & np.all(matrix[1:] == matrix[:-1], axis=1)
            )
            segments = []
            boundaries = np.nonzero(tied)[0]
            if len(boundaries):
                duplicate = self._equal_derivation_mask(
                    rows[boundaries], rows[boundaries + 1]
                )
                run_start = int(boundaries[0])
                previous = run_start
                runs = []
                all_duplicate = bool(duplicate[0])
                run_all_duplicates = []
                for boundary, is_duplicate in zip(boundaries[1:], duplicate[1:]):
                    boundary = int(boundary)
                    if boundary != previous + 1:
                        runs.append((run_start, previous + 2))
                        run_all_duplicates.append(all_duplicate)
                        run_start = boundary
                        all_duplicate = True
                    all_duplicate = all_duplicate and bool(is_duplicate)
                    previous = boundary
                runs.append((run_start, previous + 2))
                run_all_duplicates.append(all_duplicate)
                for (run_lo, run_hi), duplicates_only in zip(runs, run_all_duplicates):
                    if duplicates_only:
                        # Every neighbouring pair shares its derivation, so
                        # the whole run spells equal content of equal length:
                        # the (position, source) tie-break just applied is
                        # the final order.
                        continue
                    segments.append((int(slots[run_lo]), int(slots[run_lo]) + run_hi - run_lo))
            lo_col = hi_col
            width = min(2 * width, self.SORT_WIDEN_LIMIT)
            if segments and lo_col >= self.SORT_WIDEN_LIMIT:
                comparator = cmp_to_key(self._compare)
                for start, end in segments:
                    chunk = sorted(order[start:end], key=comparator)
                    order[start:end] = chunk
                break
        return order

    # -- searching -----------------------------------------------------------------------
    def _leaf_less_than_piece(self, index: int, piece, *, strict_prefix_smaller: bool) -> bool:
        """Whether leaf ``index`` sorts strictly before ``piece``.

        With ``strict_prefix_smaller=True`` a leaf that *starts with* the
        piece is not considered smaller (lower-bound behaviour); with
        ``False`` it is (upper-bound behaviour).
        """
        length = int(self._arrays.lengths[index])
        limit = min(length, len(piece))
        for offset in range(limit):
            letter = self.letter(index, offset)
            target = int(piece[offset])
            if letter != target:
                return letter < target
        if length < len(piece):
            return True  # leaf is a proper prefix of the piece: leaf < piece
        if strict_prefix_smaller:
            return False
        return True

    def prefix_range(self, piece, lo: int = 0, hi: int | None = None) -> tuple[int, int]:
        """Sorted-index range of leaves that have ``piece`` as a prefix.

        ``lo`` / ``hi`` optionally restrict the search to a sorted-index
        subrange known to bracket the answer (used by the batch search to
        refine a coarse vectorised range).
        """
        piece = [int(code) for code in piece]
        upper = len(self._arrays) if hi is None else hi
        lo_search, hi_search = lo, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=True):
                lo_search = mid + 1
            else:
                hi_search = mid
        start = lo_search
        lo_search, hi_search = start, upper
        while lo_search < hi_search:
            mid = (lo_search + hi_search) // 2
            if self._leaf_less_than_piece(mid, piece, strict_prefix_smaller=False):
                lo_search = mid + 1
            else:
                hi_search = mid
        return start, lo_search

    # -- batch searching -------------------------------------------------------------------
    def prefix_matrix(self, width: int) -> np.ndarray:
        """Materialised ``(count × width)`` matrix of leaf prefixes.

        Entry ``[i, t]`` is the letter of sorted leaf ``i`` at offset ``t``,
        or ``-1`` past the leaf's end (which sorts before every real letter,
        matching the proper-prefix-first leaf order).
        """
        count = len(self._arrays)
        if count == 0:
            return np.empty((0, width), dtype=np.int64)
        return self._content_matrix(np.arange(count, dtype=np.int64), 0, width)

    def _batch_search_keys(self, width: int) -> np.ndarray | None:
        """Fixed-width byte keys of the leaf prefixes, for ``np.searchsorted``.

        Letters are shifted by +1 so that the past-end marker becomes the
        zero byte; returns None when a *leaf* letter would not fit below the
        upper-bound sentinel byte (code ≥ 254), in which case callers fall
        back to the scalar search.  Query pieces may still carry larger
        codes: every code above all leaf letters compares identically, so
        queries saturate at byte 255 without changing the order.
        """
        if self._max_letter is None:
            self._max_letter = self._max_letter_code()
        if self._max_letter + 1 >= 255:
            return None
        if self._search_keys is None or self._search_width < width:
            matrix = (self.prefix_matrix(width) + 1).astype(np.uint8)
            self._search_keys = np.ascontiguousarray(matrix).view(f"S{width}")[:, 0]
            self._search_width = width
        return self._search_keys

    def _seed_search_caches(self, keys: np.ndarray | None, width: int, max_letter: int | None) -> None:
        """Adopt still-valid search caches carried over by an update merge."""
        self._max_letter = max_letter
        if keys is not None:
            self._search_keys = keys
            self._search_width = width

    def invalidate_search_caches(self) -> None:
        """Drop the cached byte keys and trie (content changed in place)."""
        self._search_keys = None
        self._search_width = 0
        self._max_letter = None
        self._trie = None

    def prefix_range_many(self, pieces: list) -> np.ndarray:
        """Vectorised :meth:`prefix_range` over a batch of query pieces.

        Returns a ``(B × 2)`` array of ``[lo, hi)`` sorted-index ranges.  All
        lower and upper bounds are found with two ``np.searchsorted`` calls
        over cached byte keys; pieces longer than the materialised prefix are
        refined with the exact comparator inside the narrowed range.
        """
        ranges = np.zeros((len(pieces), 2), dtype=np.int64)
        if not pieces or not len(self._arrays):
            return ranges
        width = min(max(len(piece) for piece in pieces), self.SEARCH_PREFIX_LIMIT)
        keys = self._batch_search_keys(width)
        if keys is None:
            for row, piece in enumerate(pieces):
                ranges[row] = self.prefix_range(piece)
            return ranges
        effective_width = self._search_width
        low_queries = np.zeros((len(pieces), effective_width), dtype=np.uint8)
        high_queries = np.full((len(pieces), effective_width), 255, dtype=np.uint8)
        for row, piece in enumerate(pieces):
            head = np.asarray(piece[:effective_width], dtype=np.int64) + 1
            # Codes above every leaf letter (≤ 253 here) saturate at the
            # sentinel byte: they can never equal a leaf letter, and 255 is
            # greater than every leaf byte, so the order is preserved.
            head = np.minimum(head, 255)
            low_queries[row, : len(head)] = head
            high_queries[row, : len(head)] = head
        low_keys = np.ascontiguousarray(low_queries).view(f"S{effective_width}")[:, 0]
        high_keys = np.ascontiguousarray(high_queries).view(f"S{effective_width}")[:, 0]
        ranges[:, 0] = np.searchsorted(keys, low_keys, side="left")
        ranges[:, 1] = np.searchsorted(keys, high_keys, side="right")
        for row, piece in enumerate(pieces):
            if len(piece) > effective_width:
                ranges[row] = self.prefix_range(
                    piece, lo=int(ranges[row, 0]), hi=int(ranges[row, 1])
                )
        return ranges

    # -- trie ------------------------------------------------------------------------------
    def adjacent_lcps(self) -> np.ndarray:
        """LCP of each consecutive sorted leaf pair (cached; persisted by the store).

        Computed vectorised: identical-derivation neighbours short-circuit to
        their common length, every other pair is resolved by comparing
        materialised content blocks in widening rounds, and only pairs that
        agree beyond :data:`SORT_WIDEN_LIMIT` letters fall back to the exact
        heavy-LCE walk.
        """
        if self._cached_lcps is not None:
            return self._cached_lcps
        arrays = self._arrays
        count = len(arrays)
        lcps = np.zeros(count, dtype=np.int64)
        if count >= 2 and self._method == "reference":
            # The frozen per-pair walk of the pre-array implementation.
            for index in range(1, count):
                lcps[index] = self._leaf_lcp(index - 1, index)
            self._cached_lcps = lcps
            return self._cached_lcps
        if count >= 2:
            lengths = arrays.lengths
            pairs = np.arange(1, count, dtype=np.int64)
            limits = np.minimum(lengths[pairs - 1], lengths[pairs])
            same = self._equal_derivation_mask(pairs - 1, pairs)
            lcps[pairs[same]] = limits[same]
            remaining = pairs[~same]
            lo = 0
            width = self.PRESORT_PREFIX
            while len(remaining):
                hi = lo + width
                left = self._content_matrix(remaining - 1, lo, hi)
                right = self._content_matrix(remaining, lo, hi)
                difference = left != right
                found = difference.any(axis=1)
                lcps[remaining[found]] = lo + np.argmax(difference[found], axis=1)
                remaining = remaining[~found]
                if len(remaining):
                    pair_limits = np.minimum(
                        lengths[remaining - 1], lengths[remaining]
                    )
                    resolved = pair_limits <= hi
                    lcps[remaining[resolved]] = pair_limits[resolved]
                    remaining = remaining[~resolved]
                lo = hi
                width = min(2 * width, self.SORT_WIDEN_LIMIT)
                if len(remaining) and lo >= self.SORT_WIDEN_LIMIT:
                    for index in remaining:
                        lcps[index] = self._leaf_lcp(int(index) - 1, int(index))
                    break
        self._cached_lcps = lcps
        return self._cached_lcps

    def build_trie(self) -> CompactedTrie:
        """Compacted trie over the sorted leaves (the tree-index variants)."""
        if self._trie is None:
            self._trie = CompactedTrie(
                self._arrays.lengths,
                self.adjacent_lcps(),
                self.letter,
                bulk_letter=self.letters_at,
            )
        return self._trie

    def adopt_trie(self, trie: CompactedTrie) -> None:
        """Install a persisted trie so :meth:`build_trie` skips re-derivation."""
        self._trie = trie

    # -- size accounting -------------------------------------------------------------------
    def total_mismatches(self) -> int:
        """Total number of stored mismatches across all leaves."""
        return len(self._arrays.mm_offset)

    def size_bytes(self, model: SpaceModel = DEFAULT_SPACE_MODEL, *, as_tree: bool = False) -> int:
        """Charged size of the collection (array layout, optionally + tree nodes)."""
        count = len(self._arrays)
        # Per leaf: anchor, length, position (3 words) + mismatch entries.
        total = model.words(3 * count) + model.words(2 * self.total_mismatches())
        if as_tree:
            trie = self.build_trie()
            total += model.tree_nodes(trie.node_count)
        return total


@dataclass
class MinimizerIndexData:
    """Everything the MWST / MWSA / grid indexes share.

    ``forward`` holds the ``Tsuff`` content (factors read rightward from
    their minimizer), ``backward`` the ``Tpref`` content (read leftward);
    ``pairs`` links leaves with equal minimizer labels and feeds the 2D grid
    of the *-G* variants (``None`` when built by the space-efficient
    construction, which does not produce the pairing).
    """

    source: WeightedString
    z: float
    ell: int
    scheme: MinimizerScheme
    heavy: HeavyString
    forward: LeafCollection
    backward: LeafCollection
    pairs: list[tuple[int, int]] | None = None
    construction: str = "estimation"
    counters: dict = field(default_factory=dict)
    #: The z-estimation the leaves were sampled from, retained (when built
    #: through the estimation path) so point updates can diff old vs new
    #: derivations and re-derive only the affected leaves.  ``None`` for the
    #: space-efficient construction and for store-loaded data, which repair
    #: through a full rebuild instead.
    estimation: ZEstimation | None = None

    # -- query plumbing shared by all variants ------------------------------------------
    def split_pattern(self, codes, mu: int | None = None) -> tuple[int, list[int], list[int]]:
        """Leftmost minimizer and the two query pieces (forward, backward).

        ``mu`` may be passed in when it was already computed (the batch
        engine computes the minimizers of a whole pattern batch at once).
        """
        if mu is None:
            mu = self.scheme.leftmost_pattern_minimizer(codes)
        forward_piece = [int(code) for code in codes[mu:]]
        backward_piece = [int(code) for code in reversed(codes[: mu + 1])]
        return mu, forward_piece, backward_piece

    def candidate_positions(self, leaf_indices, collection: LeafCollection, mu: int):
        """Candidate occurrence starts derived from matched leaves."""
        positions = collection.positions
        return {int(positions[index]) - mu for index in leaf_indices}

    def size_bytes(
        self,
        model: SpaceModel = DEFAULT_SPACE_MODEL,
        *,
        as_tree: bool = False,
        with_grid: bool = False,
    ) -> int:
        """Charged index size: heavy string + both collections (+ grid points)."""
        total = model.codes(len(self.source)) + model.probabilities(len(self.source))
        total += self.forward.size_bytes(model, as_tree=as_tree)
        total += self.backward.size_bytes(model, as_tree=as_tree)
        if with_grid and self.pairs is not None:
            total += model.words(4 * len(self.pairs))
        return total


def _derive_leaf_pair(
    n: int,
    string_j: np.ndarray,
    ends_j: np.ndarray,
    mismatch_positions: np.ndarray,
    q: int,
    j: int,
) -> tuple[FactorLeaf, FactorLeaf]:
    """The forward/backward leaf pair of minimizer position ``q`` in ``S_j``.

    The scalar source of truth for leaf derivation: the reference
    construction and the point-update re-derivation both call this, and the
    vectorised :func:`build_leaf_arrays_from_estimation` must stay
    row-identical to it (pinned by the construction-parity tests), so an
    incrementally repaired collection is leaf-for-leaf identical to a fresh
    array-path build.
    """
    forward_end = int(ends_j[q])
    forward_length = forward_end - q + 1
    lo = int(np.searchsorted(mismatch_positions, q, side="left"))
    hi = int(np.searchsorted(mismatch_positions, forward_end, side="right"))
    forward = FactorLeaf(
        anchor=q,
        length=forward_length,
        mismatches=tuple(
            (int(p - q), int(string_j[p])) for p in mismatch_positions[lo:hi]
        ),
        position=q,
        source=j,
    )
    backward_start = int(np.searchsorted(ends_j, q, side="left"))
    backward_length = q - backward_start + 1
    lo = int(np.searchsorted(mismatch_positions, backward_start, side="left"))
    hi = int(np.searchsorted(mismatch_positions, q, side="right"))
    backward = FactorLeaf(
        anchor=n - 1 - q,
        length=backward_length,
        mismatches=tuple(
            sorted((int(q - p), int(string_j[p])) for p in mismatch_positions[lo:hi])
        ),
        position=q,
        source=j,
    )
    return forward, backward


def build_leaves_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    scheme: MinimizerScheme,
    estimation: ZEstimation,
    heavy: HeavyString,
) -> tuple[list[FactorLeaf], list[FactorLeaf], list[tuple[int, int]]]:
    """Sample the z-estimation with minimizers (the Lemma 5 construction).

    For every string ``S_j`` and every property-respecting window of length
    ℓ, the window's minimizer position ``q`` produces one forward leaf (the
    longest property-respecting substring of ``S_j`` starting at ``q``) and
    one backward leaf (the longest one ending at ``q``, reversed), both
    encoded relative to the heavy string.  Returns the two raw leaf lists and
    the list pairing them up (same list index = same (q, j) label).

    This is the per-leaf reference path;
    :func:`build_leaf_arrays_from_estimation` is its vectorised twin.
    """
    n = len(source)
    heavy_codes = heavy.codes
    forward: list[FactorLeaf] = []
    backward: list[FactorLeaf] = []
    for j, string_j, ends_j, minimizer_positions in _iter_sampled_strings(
        source, ell, scheme, estimation
    ):
        mismatch_positions = np.nonzero(string_j != heavy_codes)[0]
        for q in minimizer_positions:
            forward_leaf, backward_leaf = _derive_leaf_pair(
                n, string_j, ends_j, mismatch_positions, int(q), j
            )
            forward.append(forward_leaf)
            backward.append(backward_leaf)
    pairs = list(zip(range(len(forward)), range(len(backward))))
    return forward, backward, pairs


def _iter_sampled_strings(
    source: WeightedString,
    ell: int,
    scheme: MinimizerScheme,
    estimation: ZEstimation,
):
    """Yield ``(j, S_j, π_j, minimizer positions)`` for strings with samples."""
    n = len(source)
    for j in range(estimation.width):
        string_j = estimation.strings[j]
        ends_j = estimation.ends[j]
        if n >= ell:
            starts = np.arange(n - ell + 1, dtype=np.int64)
            valid_window = ends_j[: n - ell + 1] >= starts + ell - 1
        else:
            valid_window = np.zeros(0, dtype=bool)
        if not valid_window.any():
            continue
        minimizer_positions = scheme.minimizer_positions(string_j, valid_window)
        if not minimizer_positions:
            continue
        yield j, string_j, ends_j, np.asarray(minimizer_positions, dtype=np.int64)


def _derive_leaf_arrays_for_string(
    n: int,
    string_j: np.ndarray,
    ends_j: np.ndarray,
    mismatch_positions: np.ndarray,
    qs: np.ndarray,
    j: int,
) -> tuple[LeafArrays, LeafArrays]:
    """Vectorised twin of :func:`_derive_leaf_pair` for one string's positions.

    Returns the forward/backward leaf blocks of the given (ascending)
    minimizer positions of ``S_j``, row ``i`` of both blocks carrying the
    same ``(q, j)`` label.  The construction fast path feeds it every
    sampled position; the point-update repair feeds it only the re-derived
    ones.
    """
    source_ids = np.full(len(qs), j, dtype=np.int64)

    forward_ends = ends_j[qs]
    forward_lo = np.searchsorted(mismatch_positions, qs, side="left")
    forward_hi = np.searchsorted(mismatch_positions, forward_ends, side="right")
    forward_flat = _concat_ranges(forward_lo, forward_hi)
    forward_counts = forward_hi - forward_lo
    forward = LeafArrays(
        anchors=qs,
        lengths=forward_ends - qs + 1,
        positions=qs,
        sources=source_ids,
        mm_start=np.concatenate([[0], np.cumsum(forward_counts)]),
        mm_offset=mismatch_positions[forward_flat] - np.repeat(qs, forward_counts),
        mm_code=string_j[mismatch_positions[forward_flat]],
    )

    backward_starts = np.searchsorted(ends_j, qs, side="left")
    backward_lo = np.searchsorted(mismatch_positions, backward_starts, side="left")
    backward_hi = np.searchsorted(mismatch_positions, qs, side="right")
    # Offsets are q - p with p ascending inside each range, so reading
    # each range in reverse yields the ascending mismatch-offset order
    # the scalar derivation produces.
    backward_flat = _concat_ranges_reversed(backward_lo, backward_hi)
    backward_counts = backward_hi - backward_lo
    backward = LeafArrays(
        anchors=n - 1 - qs,
        lengths=qs - backward_starts + 1,
        positions=qs,
        sources=source_ids,
        mm_start=np.concatenate([[0], np.cumsum(backward_counts)]),
        mm_offset=np.repeat(qs, backward_counts) - mismatch_positions[backward_flat],
        mm_code=string_j[mismatch_positions[backward_flat]],
    )
    return forward, backward


def build_leaf_arrays_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    scheme: MinimizerScheme,
    estimation: ZEstimation,
    heavy: HeavyString,
) -> tuple[LeafArrays, LeafArrays]:
    """Vectorised Lemma 5 sampling: leaves derived as flat arrays.

    Row ``i`` of the forward block and row ``i`` of the backward block form
    the leaf pair of one ``(q, j)`` label — the same raw order the reference
    :func:`build_leaves_from_estimation` produces, with every per-leaf loop
    replaced by searchsorted/gather passes over the mismatch positions of
    each ``S_j``.
    """
    n = len(source)
    heavy_codes = heavy.codes
    forward_parts: list[LeafArrays] = []
    backward_parts: list[LeafArrays] = []
    for j, string_j, ends_j, qs in _iter_sampled_strings(source, ell, scheme, estimation):
        mismatch_positions = np.nonzero(string_j != heavy_codes)[0]
        forward, backward = _derive_leaf_arrays_for_string(
            n, string_j, ends_j, mismatch_positions, qs, j
        )
        forward_parts.append(forward)
        backward_parts.append(backward)
    return LeafArrays.concatenate(forward_parts), LeafArrays.concatenate(backward_parts)


def build_index_data_from_estimation(
    source: WeightedString,
    z: float,
    ell: int,
    *,
    scheme: MinimizerScheme | None = None,
    estimation: ZEstimation | None = None,
    keep_pairs: bool = True,
    method: str = "vectorized",
) -> MinimizerIndexData:
    """Build the shared minimizer index data through the explicit z-estimation path.

    ``method`` selects one of :data:`LEAF_METHODS`; the vectorised array
    pipeline is the default, the per-leaf reference path is kept for parity
    tests and the old-vs-new construction benchmark.  Both are leaf-identical.
    """
    if ell <= 0:
        raise ConstructionError("ell must be positive")
    if method not in LEAF_METHODS:
        known = ", ".join(LEAF_METHODS)
        raise ConstructionError(
            f"unknown leaf construction method {method!r}; known methods: {known}"
        )
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    if estimation is None:
        estimation = build_z_estimation(source, z, method=method)
    heavy = HeavyString(source)
    if method == "reference":
        raw_forward, raw_backward, _ = build_leaves_from_estimation(
            source, z, ell, scheme, estimation, heavy
        )
        forward = LeafCollection(raw_forward, heavy.codes, method="reference")
        backward = LeafCollection(
            raw_backward, heavy.codes[::-1].copy(), method="reference"
        )
    else:
        forward_arrays, backward_arrays = build_leaf_arrays_from_estimation(
            source, z, ell, scheme, estimation, heavy
        )
        forward = LeafCollection(forward_arrays, heavy.codes)
        backward = LeafCollection(backward_arrays, heavy.codes[::-1].copy())
    pairs = None
    if keep_pairs:
        # Raw row i of both blocks carries the same (q, j) label.
        pairs = list(
            zip(
                (int(x) for x in forward.raw_to_sorted),
                (int(y) for y in backward.raw_to_sorted),
            )
        )
    return MinimizerIndexData(
        source=source,
        z=z,
        ell=ell,
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction="estimation",
        counters={
            "forward_leaves": len(forward),
            "backward_leaves": len(backward),
            "estimation_entries": estimation.width * estimation.length,
        },
        estimation=estimation,
    )


# --------------------------------------------------------------------------- #
# point updates: localized leaf re-derivation                                  #
# --------------------------------------------------------------------------- #
def _batch_leaf_less(
    collection: LeafCollection, rows_a: np.ndarray, rows_b: np.ndarray
) -> np.ndarray:
    """Vectorised exact leaf order: mask of pairs with ``rows_a[i] < rows_b[i]``.

    Equivalent to :meth:`LeafCollection._compare` but driven entirely by
    :meth:`LeafCollection._content_matrix` strips (past-end ``-1`` sorts
    proper prefixes first), so it needs no LCE index over the reference.
    Pairs still tied after their content is exhausted — the z
    identical-content duplicates — fall through to the (position, source)
    tie-break.  The incremental merge resolves its packed-key ties with
    this.
    """
    arrays = collection.arrays
    count = len(rows_a)
    verdict = np.zeros(count, dtype=np.int8)
    lengths_a = arrays.lengths[rows_a]
    lengths_b = arrays.lengths[rows_b]
    pair_limits = np.maximum(lengths_a, lengths_b)
    undecided = np.arange(count, dtype=np.int64)
    column = 0
    strip = 64
    while len(undecided):
        limit = int(pair_limits[undecided].max(initial=0))
        if column >= limit:
            break
        strip_a = collection._content_matrix(rows_a[undecided], column, column + strip)
        strip_b = collection._content_matrix(rows_b[undecided], column, column + strip)
        differs = strip_a != strip_b
        has_diff = differs.any(axis=1)
        hit = np.nonzero(has_diff)[0]
        if len(hit):
            first_diff = np.argmax(differs[hit], axis=1)
            letters_a = strip_a[hit, first_diff]
            letters_b = strip_b[hit, first_diff]
            verdict[undecided[hit]] = np.where(letters_a < letters_b, -1, 1)
        exhausted = pair_limits[undecided] <= column + strip
        undecided = undecided[~has_diff & ~exhausted]
        column += strip
    tied = verdict == 0  # identical content (and length): label tie-break
    if tied.any():
        positions_a = arrays.positions[rows_a[tied]]
        positions_b = arrays.positions[rows_b[tied]]
        sources_a = arrays.sources[rows_a[tied]]
        sources_b = arrays.sources[rows_b[tied]]
        less = (positions_a < positions_b) | (
            (positions_a == positions_b) & (sources_a < sources_b)
        )
        verdict[tied] = np.where(less, -1, 1)
    return verdict < 0


def _merge_sorted_runs(
    old_collection: LeafCollection,
    kept_old_index: np.ndarray,
    kept_arrays: LeafArrays,
    fresh_arrays: LeafArrays,
    reference: np.ndarray,
) -> tuple[LeafCollection, np.ndarray] | None:
    """Merge the still-sorted kept rows with a small sorted fresh block.

    The kept rows keep their old relative order (slicing a sorted sequence
    stays sorted) and the fresh block is sorted on its own, so the unique
    total leaf order reduces to a two-run merge: each fresh leaf's rank
    among the kept rows is found with one ``searchsorted`` over packed
    content-prefix byte keys, and only runs tied on the whole prefix fall
    back to the exact comparator.  Returns ``(collection, kept_target)``
    with the merged collection built ``presorted`` (no radix re-sort), or
    ``None`` when the packed-key path does not apply and the caller should
    re-sort from scratch.
    """
    kept_count = len(kept_arrays)
    fresh_count = len(fresh_arrays)
    if fresh_count == 0:
        collection = LeafCollection(kept_arrays, reference, presorted=True)
        old_keys = old_collection._search_keys
        if old_keys is not None and old_collection._max_letter is not None:
            collection._seed_search_caches(
                old_keys[kept_old_index],
                old_collection._search_width,
                old_collection._max_letter,
            )
        return collection, np.arange(kept_count, dtype=np.int64)
    if kept_count == 0 or fresh_count > kept_count:
        return None
    fresh_sorted = LeafCollection(fresh_arrays, reference).arrays
    probe = LeafCollection(
        LeafArrays.concatenate([kept_arrays, fresh_sorted]), reference, presorted=True
    )
    # ``probe`` is *not* globally sorted — it only provides content access
    # (letters, packed keys, exact comparisons) over both blocks at once.
    if probe._max_letter_code() + 1 >= 255:
        return None
    old_keys = old_collection._search_keys
    if (
        old_keys is not None
        and old_collection._max_letter is not None
        and old_collection._max_letter + 1 < 255
        and old_collection._search_width >= LeafCollection.PRESORT_PREFIX
    ):
        # Query-seeded keys can be narrower than the presort prefix (their
        # width tracks the pattern pieces); narrow keys tie on most of the z
        # near-duplicate leaves, so recompute at full width instead.
        width = old_collection._search_width
        kept_keys = old_keys[kept_old_index]
    else:
        width = LeafCollection.PRESORT_PREFIX
        kept_matrix = (
            probe._content_matrix(np.arange(kept_count, dtype=np.int64), 0, width) + 1
        ).astype(np.uint8)
        kept_keys = np.ascontiguousarray(kept_matrix).view(f"S{width}")[:, 0]
    fresh_rows = kept_count + np.arange(fresh_count, dtype=np.int64)
    fresh_matrix = (probe._content_matrix(fresh_rows, 0, width) + 1).astype(np.uint8)
    fresh_keys = np.ascontiguousarray(fresh_matrix).view(f"S{width}")[:, 0]
    ranks = np.searchsorted(kept_keys, fresh_keys, side="left").astype(np.int64)
    upper = np.searchsorted(kept_keys, fresh_keys, side="right")
    ties = np.nonzero(upper > ranks)[0]
    if len(ties):
        # Resolve all packed-key ties with one batched exact comparison: a
        # fresh leaf's rank inside its tied kept run is the number of run
        # rows strictly below it (the run is itself sorted).
        counts = upper[ties] - ranks[ties]
        pair_kept = _concat_ranges(ranks[ties], upper[ties].astype(np.int64))
        pair_fresh = np.repeat(fresh_rows[ties], counts)
        less = _batch_leaf_less(probe, pair_kept, pair_fresh)
        boundaries = np.concatenate([[0], np.cumsum(counts)[:-1]])
        ranks[ties] += np.add.reduceat(less, boundaries)
    if np.any(np.diff(ranks) < 0):
        return None  # cannot happen for a correct total order; re-sort to be safe
    merged_count = kept_count + fresh_count
    kept_target = np.arange(kept_count, dtype=np.int64) + np.searchsorted(
        ranks, np.arange(kept_count, dtype=np.int64), side="right"
    )
    fresh_target = ranks + np.arange(fresh_count, dtype=np.int64)
    order = np.empty(merged_count, dtype=np.int64)
    order[kept_target] = np.arange(kept_count, dtype=np.int64)
    order[fresh_target] = fresh_rows
    collection = LeafCollection(probe.arrays.take(order), reference, presorted=True)
    # Seed the packed-key cache with the keys this merge just used — the
    # next update (and prefix searches up to ``width``) reuse them instead
    # of re-materialising the kept block's content prefix.
    merged_keys = np.empty(merged_count, dtype=kept_keys.dtype)
    merged_keys[kept_target] = kept_keys
    merged_keys[fresh_target] = fresh_keys
    collection._seed_search_caches(merged_keys, width, probe._max_letter_code())
    return collection, kept_target


def _merge_collection(
    old_collection: LeafCollection,
    dirty: set,
    fresh_arrays: LeafArrays,
    reference: np.ndarray,
) -> LeafCollection:
    """Merge an update's surviving and re-derived leaves into a sorted collection.

    The kept rows are sliced out of the old parallel arrays and merged with
    the fresh leaves' arrays through :func:`_merge_sorted_runs` (two-run
    merge over packed byte keys); when that fast path does not apply the
    concatenation is re-sorted through the same vectorised radix sort a
    fresh build uses.  The leaf order is a unique total order, so both
    realise exactly the stepwise merge.  Adjacent-LCP values are carried
    over where the old neighbourhood survived intact (the LCP of two
    non-adjacent old leaves is the min of the old adjacent LCPs between
    them) and recomputed directly only at the seams around inserted leaves.
    The cached search byte keys survive the same way: kept rows keep their
    packed keys, only the inserted rows' keys are computed.
    """
    old_arrays = old_collection.arrays
    count = len(old_arrays)
    if dirty:
        span = (
            int(
                max(
                    old_arrays.positions.max(initial=0),
                    max(position for _, position in dirty),
                )
            )
            + 2
        )
        leaf_keys = old_arrays.sources * span + old_arrays.positions
        dirty_keys = np.asarray(
            sorted(source * span + position for source, position in dirty),
            dtype=np.int64,
        )
        kept_mask = ~np.isin(leaf_keys, dirty_keys)
    else:
        kept_mask = np.ones(count, dtype=bool)
    kept_old_index = np.nonzero(kept_mask)[0]
    kept_arrays = old_arrays.take(kept_old_index)
    merged_count = len(kept_arrays) + len(fresh_arrays)
    fast = _merge_sorted_runs(
        old_collection, kept_old_index, kept_arrays, fresh_arrays, reference
    )
    if fast is not None:
        merged, kept_target = fast
    else:
        merged = LeafCollection(
            LeafArrays.concatenate([kept_arrays, fresh_arrays]), reference
        )
        kept_target = merged.raw_to_sorted[: len(kept_arrays)]
    # Old sorted index of each merged row, or -1 for a fresh leaf.
    origins = np.full(merged_count, -1, dtype=np.int64)
    origins[kept_target] = kept_old_index

    old_lcps = old_collection._cached_lcps
    if old_lcps is not None and merged_count:
        lcps = np.zeros(merged_count, dtype=np.int64)
        if merged_count > 1:
            previous_origin = origins[:-1]
            current_origin = origins[1:]
            target = np.arange(1, merged_count, dtype=np.int64)
            adjacent = (previous_origin >= 0) & (current_origin == previous_origin + 1)
            lcps[target[adjacent]] = old_lcps[current_origin[adjacent]]
            gap = (
                (previous_origin >= 0)
                & (current_origin > previous_origin + 1)
            )
            if gap.any():
                # Old leaves with dirty leaves dropped in between: the LCP
                # telescopes to the min over the removed stretch.
                gap_rows = np.nonzero(gap)[0]
                for row in gap_rows:
                    lcps[row + 1] = int(
                        np.min(old_lcps[previous_origin[row] + 1 : current_origin[row] + 1])
                    )
            seams = np.nonzero(~(adjacent | gap))[0]
            for row in seams:
                lcps[row + 1] = merged._leaf_lcp(int(row), int(row) + 1)
        merged._cached_lcps = lcps
    # Carry the still-valid search caches over: kept rows keep their packed
    # byte keys, the inserted rows' keys are computed at the cached width.
    # (The fast merge already seeded its own — usually wider — keys.)
    old_keys = old_collection._search_keys
    if (
        merged._search_keys is None
        and old_keys is not None
        and old_collection._max_letter is not None
        and old_collection._max_letter + 1 < 255
    ):
        width = old_collection._search_width
        fresh_slots = np.nonzero(origins < 0)[0]
        fresh_matrix = (
            merged._content_matrix(fresh_slots, 0, width) + 1
        ).astype(np.uint8)
        fresh_keys = np.ascontiguousarray(fresh_matrix).view(f"S{width}")[:, 0]
        merged_keys = np.empty(merged_count, dtype=old_keys.dtype)
        merged_keys[kept_target] = old_keys[kept_old_index]
        merged_keys[fresh_slots] = fresh_keys
        merged._seed_search_caches(merged_keys, width, merged._max_letter_code())
    return merged


def _updated_minimizer_positions(
    scheme: MinimizerScheme,
    ell: int,
    string_new: np.ndarray,
    valid_new: np.ndarray,
    valid_old: np.ndarray,
    q_old: np.ndarray,
    changed: np.ndarray,
) -> np.ndarray:
    """Minimizer positions of an updated estimation string, recomputed locally.

    Minimizer choice is a pure function of a window's letters, so only
    windows whose letters or validity changed can select differently.  Every
    position within reach of such a window is re-resolved by recomputing the
    selections of *all* windows overlapping it; positions out of reach keep
    their old selected/unselected status (``q_old``, the old string's exact
    selection set).  Falls back to the full scan when the changed regions
    cover most of the string.
    """
    window_count = len(valid_new)
    if window_count <= 0:
        return np.empty(0, dtype=np.int64)
    flips = np.nonzero(valid_new != valid_old)[0]
    if not len(changed) and not len(flips):
        return q_old.astype(np.int64, copy=True)
    lo = np.concatenate([np.maximum(changed - ell + 1, 0), flips])
    hi = np.concatenate([np.minimum(changed, window_count - 1), flips])
    order = np.argsort(lo, kind="stable")
    lo, hi = lo[order], hi[order]
    # Merge changed-window intervals, closing gaps below 2ℓ so the guard
    # regions around distinct intervals stay disjoint.
    intervals: list[tuple[int, int]] = []
    current_lo, current_hi = int(lo[0]), int(hi[0])
    for next_lo, next_hi in zip(lo[1:], hi[1:]):
        if int(next_lo) <= current_hi + 2 * ell:
            current_hi = max(current_hi, int(next_hi))
        else:
            intervals.append((current_lo, current_hi))
            current_lo, current_hi = int(next_lo), int(next_hi)
    intervals.append((current_lo, current_hi))
    recompute_span = sum(
        min(b + ell, window_count) - max(a - ell + 1, 0) for a, b in intervals
    )
    if 2 * recompute_span >= window_count or len(intervals) > 16:
        # Many scattered intervals cost more in per-call overhead than one
        # pass over the whole string.
        return np.asarray(
            scheme.minimizer_positions(string_new, valid_new), dtype=np.int64
        )
    drop = np.zeros(len(q_old), dtype=bool)
    fresh_pieces: list[np.ndarray] = []
    for a, b in intervals:
        guard_lo, guard_hi = a, b + ell - 1  # positions a changed window can select
        window_lo = max(a - ell + 1, 0)
        window_hi = min(b + ell - 1, window_count - 1)  # windows reaching the guard
        selected = (
            np.asarray(
                scheme.minimizer_positions(
                    string_new[window_lo : window_hi + ell],
                    valid_new[window_lo : window_hi + 1],
                ),
                dtype=np.int64,
            )
            + window_lo
        )
        fresh_pieces.append(selected[(selected >= guard_lo) & (selected <= guard_hi)])
        drop |= (q_old >= guard_lo) & (q_old <= guard_hi)
    return np.union1d(q_old[~drop], np.concatenate(fresh_pieces)).astype(np.int64)


def apply_updates_to_data(
    data: MinimizerIndexData,
    positions,
    *,
    max_dirty_fraction: float = 0.25,
) -> tuple[MinimizerIndexData, dict] | None:
    """Localized repair of minimizer index data after point updates.

    ``data.source`` must already carry the new rows.  The old and new
    derivations are diffed exactly: the z-estimation is re-derived — resumed
    from the last builder checkpoint at-or-before the first updated position
    when the old estimation carries checkpoints, replayed from 0 otherwise —
    and the expensive leaf machinery (per-leaf derivation, sorting, adjacent
    LCPs) is only re-run for leaves whose derivation actually changed: the
    minimizer windows within ``2ℓ−1`` positions of a touched row plus
    whatever the estimation ripple reaches (property ends crossing an
    updated position, re-assigned estimation letters).  Every surviving leaf
    is reused verbatim, so the result is leaf-for-leaf identical to a fresh
    build over the mutated string.

    Returns ``(new_data, details)``, or ``None`` when the data cannot be
    repaired locally (space-efficient construction, store-loaded data
    without its estimation, or a dirty set so large a full rebuild is
    cheaper) — callers then fall back to a full rebuild.
    """
    if data.construction != "estimation" or data.estimation is None:
        return None
    source = data.source
    scheme = data.scheme
    ell = data.ell
    n = len(source)
    old_estimation = data.estimation
    updated = np.asarray(sorted({int(p) for p in positions}), dtype=np.int64)
    new_estimation, replay_info = resume_z_estimation(
        old_estimation, source, data.z, updated
    )
    if (
        new_estimation.width != old_estimation.width
        or new_estimation.length != old_estimation.length
    ):
        return None  # cannot happen for a fixed z; guard anyway
    new_heavy = data.heavy.updated_copy(source, updated)
    del positions  # the deduplicated `updated` is the canonical batch from here on

    forward_sources = data.forward.sources
    forward_positions = data.forward.positions
    label_order = np.lexsort((forward_positions, forward_sources))
    label_bounds = np.searchsorted(
        forward_sources[label_order],
        np.arange(old_estimation.width + 1, dtype=np.int64),
    )
    old_labels: dict[int, np.ndarray] = {
        j: forward_positions[label_order[label_bounds[j] : label_bounds[j + 1]]]
        for j in range(old_estimation.width)
    }

    dirty: set[tuple[int, int]] = set()
    fresh_specs: list[tuple[int, int]] = []
    window_starts = np.arange(max(n - ell + 1, 0), dtype=np.int64)
    for j in range(new_estimation.width):
        string_old = old_estimation.strings[j]
        string_new = new_estimation.strings[j]
        ends_old = old_estimation.ends[j]
        ends_new = new_estimation.ends[j]
        changed = np.union1d(np.nonzero(string_old != string_new)[0], updated)
        q_old = old_labels.get(j, np.empty(0, dtype=np.int64))
        if n >= ell:
            valid_old = ends_old[: n - ell + 1] >= window_starts + ell - 1
            valid_new = ends_new[: n - ell + 1] >= window_starts + ell - 1
            q_new = _updated_minimizer_positions(
                scheme, ell, string_new, valid_new, valid_old, q_old, changed
            )
        else:
            q_new = np.empty(0, dtype=np.int64)
        for q in np.setdiff1d(q_old, q_new, assume_unique=True):
            dirty.add((j, int(q)))
        for q in np.setdiff1d(q_new, q_old, assume_unique=True):
            dirty.add((j, int(q)))
            fresh_specs.append((j, int(q)))
        retained = np.intersect1d(q_old, q_new, assume_unique=True)
        if len(retained):
            forward_same = ends_old[retained] == ends_new[retained]
            backward_same = np.searchsorted(ends_old, retained, side="left") == (
                np.searchsorted(ends_new, retained, side="left")
            )
            # A retained leaf also changes when any re-assigned letter (in
            # S_j or in the heavy reference) falls inside its factor span
            # [backward_start, forward_end].
            span_lo = np.searchsorted(ends_new, retained, side="left")
            span_hi = ends_new[retained]
            letters_hit = np.searchsorted(changed, span_lo, side="left") < (
                np.searchsorted(changed, span_hi, side="right")
            )
            for q in retained[~(forward_same & backward_same) | letters_hit]:
                dirty.add((j, int(q)))
                fresh_specs.append((j, int(q)))

    total_leaves = max(1, len(data.forward))
    if len(dirty) > 64 and len(dirty) > max_dirty_fraction * total_leaves:
        return None

    fresh_forward_parts: list[LeafArrays] = []
    fresh_backward_parts: list[LeafArrays] = []
    by_string: dict[int, list[int]] = {}
    for j, q in fresh_specs:
        by_string.setdefault(j, []).append(q)
    for j, qs in sorted(by_string.items()):
        string_new = new_estimation.strings[j]
        ends_new = new_estimation.ends[j]
        mismatch_positions = np.nonzero(string_new != new_heavy.codes)[0]
        forward_block, backward_block = _derive_leaf_arrays_for_string(
            n,
            string_new,
            ends_new,
            mismatch_positions,
            np.asarray(sorted(qs), dtype=np.int64),
            j,
        )
        fresh_forward_parts.append(forward_block)
        fresh_backward_parts.append(backward_block)
    fresh_forward = LeafArrays.concatenate(fresh_forward_parts)
    fresh_backward = LeafArrays.concatenate(fresh_backward_parts)

    forward_reference = new_heavy.codes
    backward_reference = forward_reference[::-1].copy()
    forward = _merge_collection(data.forward, dirty, fresh_forward, forward_reference)
    backward = _merge_collection(
        data.backward, dirty, fresh_backward, backward_reference
    )
    pairs = None
    if data.pairs is not None:
        # Forward/backward blocks carry the same (source, position) label
        # sets, so the pairing is one searchsorted over packed labels.
        stride = n + 1
        backward_keys = backward.sources * stride + backward.positions
        forward_keys = forward.sources * stride + forward.positions
        backward_order = np.argsort(backward_keys)
        slots = backward_order[
            np.searchsorted(backward_keys[backward_order], forward_keys)
        ]
        pairs = list(zip(range(len(forward_keys)), slots.tolist()))
    counters = dict(data.counters)
    counters["forward_leaves"] = len(forward)
    counters["backward_leaves"] = len(backward)
    counters["estimation_entries"] = new_estimation.width * new_estimation.length
    new_data = MinimizerIndexData(
        source=source,
        z=data.z,
        ell=ell,
        scheme=scheme,
        heavy=new_heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction="estimation",
        counters=counters,
        estimation=new_estimation,
    )
    details = {
        "strategy": "localized",
        "rederived_leaves": len(fresh_specs),
        "dropped_leaves": len(dirty) - len(fresh_specs),
        "reused_leaves": len(forward) - len(fresh_specs),
        **replay_info,
    }
    return new_data, details
