"""Shared machinery of the WST / WSA baselines: property suffix structures.

Both baselines index the z-estimation ``(S_j, π_j)``: every suffix of every
``S_j`` is stored together with its *valid length* (how far the property
``π_j`` lets it be read).  A pattern occurrence respecting the property in
any ``S_j`` is, by the defining Count property of the z-estimation, exactly a
z-valid occurrence in ``X``.  Reporting only the suffixes whose valid length
is at least ``m`` is done output-sensitively with a range-maximum structure,
following the property-suffix-array technique.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.estimation import ZEstimation
from ..strings.lcp import lcp_array
from ..strings.rmq import SparseTableRMaxQ, report_at_least
from ..strings.suffix_array import suffix_array, suffix_array_interval

__all__ = ["PropertySuffixStructure"]


class PropertySuffixStructure:
    """Generalised suffix array of a z-estimation with property filtering.

    The ``⌊z⌋`` strings are concatenated (letters shifted by +1, separated by
    the unique smallest letter 0), suffix-sorted once, and each suffix rank is
    annotated with the position it starts at in ``X`` and with its valid
    length under the corresponding property array.
    """

    def __init__(
        self,
        estimation: ZEstimation,
        *,
        with_lcp: bool = False,
        sa_method: str = "auto",
    ) -> None:
        width, length = estimation.width, estimation.length
        strings = estimation.strings
        piece = length + 1
        text = np.zeros(width * piece, dtype=np.int64)
        for j in range(width):
            text[j * piece : j * piece + length] = strings[j] + 1
        self.text = text
        # "auto" resolves to SA-IS under the compiled kernel engine and to
        # vectorised prefix doubling on plain CPython; both are kept
        # bit-identical by the differential suite, so either may serve.
        self.sa = suffix_array(text, method=sa_method)
        self.lcp = lcp_array(text, self.sa) if with_lcp else None

        # Map each concatenation position to (string, position-in-X).
        positions_in_x = np.tile(np.arange(piece, dtype=np.int64), width)
        positions_in_x[length::piece] = -1  # separators
        valid_lengths = np.zeros(width * piece, dtype=np.int64)
        if length:
            offsets = np.arange(length, dtype=np.int64)
            per_string = estimation.ends - offsets[None, :] + 1
            per_string = np.maximum(per_string, 0)
            for j in range(width):
                valid_lengths[j * piece : j * piece + length] = per_string[j]
        self.position_in_x = positions_in_x
        # Align the per-position arrays with suffix-array rank order.
        self.rank_positions = positions_in_x[self.sa]
        self.rank_valid_lengths = valid_lengths[self.sa]
        self.report_structure = (
            SparseTableRMaxQ(self.rank_valid_lengths) if len(self.sa) else None
        )
        self.estimation_width = width
        self.estimation_length = length

    @classmethod
    def from_arrays(
        cls,
        text: np.ndarray,
        sa: np.ndarray,
        lcp: np.ndarray | None,
        rank_positions: np.ndarray,
        rank_valid_lengths: np.ndarray,
        width: int,
        length: int,
    ) -> "PropertySuffixStructure":
        """Reassemble a structure from its persisted arrays (the index store).

        Skips the estimation concatenation and the suffix sort entirely; only
        the O(N log N)-word range-maximum table — a query-acceleration cache,
        not a construction artefact — is derived from the loaded arrays.
        """
        structure = cls.__new__(cls)
        structure.text = np.asarray(text, dtype=np.int64)
        structure.sa = np.asarray(sa, dtype=np.int64)
        structure.lcp = None if lcp is None else np.asarray(lcp, dtype=np.int64)
        structure.position_in_x = None  # derivable; not needed after construction
        structure.rank_positions = np.asarray(rank_positions, dtype=np.int64)
        structure.rank_valid_lengths = np.asarray(rank_valid_lengths, dtype=np.int64)
        structure.report_structure = (
            SparseTableRMaxQ(structure.rank_valid_lengths) if len(structure.sa) else None
        )
        structure.estimation_width = int(width)
        structure.estimation_length = int(length)
        return structure

    # -- size helpers --------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Number of suffix-array entries (Θ(nz))."""
        return len(self.sa)

    def pattern_interval(self, pattern: Sequence[int]) -> tuple[int, int]:
        """Suffix-array interval of the (shifted) pattern."""
        shifted = np.asarray(pattern, dtype=np.int64) + 1
        return suffix_array_interval(self.text, self.sa, shifted)

    def report_valid(self, lo: int, hi: int, m: int) -> list[int]:
        """Positions in ``X`` of property-respecting occurrences in SA range [lo, hi)."""
        if lo >= hi or self.report_structure is None:
            return []
        ranks = report_at_least(self.report_structure, lo, hi, m)
        return [int(self.rank_positions[rank]) for rank in ranks]

    def locate(self, pattern: Sequence[int]) -> list[int]:
        """Sorted, deduplicated z-valid occurrence positions of ``pattern``."""
        m = len(pattern)
        lo, hi = self.pattern_interval(pattern)
        reported = np.asarray(self.report_valid(lo, hi, m), dtype=np.int64)
        return [int(position) for position in np.unique(reported)]

    def locate_many(self, patterns: Sequence[Sequence[int]]) -> list[list[int]]:
        """Batched :meth:`locate` (one structure pass per distinct pattern).

        The suffix-array interval search is inherently per-pattern; the batch
        entry point exists so the baselines plug into the shared batch engine
        (pattern dedup happens upstream) with one call.
        """
        return [self.locate(pattern) for pattern in patterns]
