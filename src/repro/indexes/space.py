"""Space-accounting model shared by every index (the paper's four measures).

The paper evaluates *index size* and *construction space* with
``malloc``-level byte counts of a C++ implementation.  A pure-Python
reproduction cannot use interpreter heap sizes meaningfully (CPython object
headers would drown the signal), so every index here reports its footprint
through an explicit model that charges what an array-based C implementation
would store:

* ``WORD`` bytes for an integer, offset, pointer or length;
* ``CODE`` bytes for one letter code;
* ``PROBABILITY`` bytes for one probability.

The *shape* of every size/space figure in Section 7 — how the numbers scale
with ℓ, z, σ and n, and the relative order of the methods — depends only on
how many such fields each structure stores, which this model counts exactly.
Wall-clock memory (``tracemalloc``) is additionally reported by the
benchmark harness for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpaceModel", "ConstructionTracker", "IndexStats", "DEFAULT_SPACE_MODEL"]


@dataclass(frozen=True)
class SpaceModel:
    """Byte costs of the primitive fields of a C-like implementation."""

    word: int = 8
    code: int = 1
    probability: int = 8
    pointer: int = 8
    #: Fixed per-node overhead of a pointer-based tree node (parent pointer,
    #: first-child / next-sibling pointers, depth): 4 words, matching the
    #: "about 20 bytes per node" back-of-the-envelope of the introduction.
    tree_node: int = 32

    def words(self, count: int) -> int:
        """Bytes of ``count`` machine words."""
        return self.word * int(count)

    def codes(self, count: int) -> int:
        """Bytes of ``count`` letter codes."""
        return self.code * int(count)

    def probabilities(self, count: int) -> int:
        """Bytes of ``count`` probabilities."""
        return self.probability * int(count)

    def tree_nodes(self, count: int) -> int:
        """Bytes of ``count`` tree nodes (without their edge labels)."""
        return self.tree_node * int(count)


DEFAULT_SPACE_MODEL = SpaceModel()


class ConstructionTracker:
    """Tracks the peak working space charged during an index construction.

    Builders call :meth:`allocate` when a component comes into existence and
    :meth:`release` when it is discarded; the tracker records the running
    total and its peak, which the benchmarks report as "construction space".
    """

    def __init__(self) -> None:
        self._current = 0
        self._peak = 0

    def allocate(self, amount: int) -> int:
        """Charge ``amount`` bytes of working space; returns the amount."""
        amount = int(amount)
        self._current += amount
        self._peak = max(self._peak, self._current)
        return amount

    def release(self, amount: int) -> None:
        """Release ``amount`` bytes of previously charged working space."""
        self._current -= int(amount)

    @property
    def current_bytes(self) -> int:
        """Currently charged working space."""
        return self._current

    @property
    def peak_bytes(self) -> int:
        """Peak charged working space since creation."""
        return self._peak


@dataclass
class IndexStats:
    """Size and construction statistics of one built index."""

    name: str = ""
    index_size_bytes: int = 0
    construction_space_bytes: int = 0
    construction_seconds: float = 0.0
    #: Structure-specific counters (leaf counts, node counts, grid points...).
    counters: dict = field(default_factory=dict)

    def megabytes(self) -> float:
        """Index size in MB (the unit of the paper's figures)."""
        return self.index_size_bytes / 1e6

    def construction_megabytes(self) -> float:
        """Construction space in MB."""
        return self.construction_space_bytes / 1e6

    def as_dict(self) -> dict:
        """Flat dictionary representation (for the benchmark reports)."""
        result = {
            "name": self.name,
            "index_size_bytes": self.index_size_bytes,
            "index_size_mb": self.megabytes(),
            "construction_space_bytes": self.construction_space_bytes,
            "construction_space_mb": self.construction_megabytes(),
            "construction_seconds": self.construction_seconds,
        }
        result.update(self.counters)
        return result
