"""Common interface of every uncertain-string index.

All indexes solve (variants of) the Weighted Indexing problem: report every
position where a pattern has a z-valid occurrence in the indexed weighted
string.  They share the small protocol defined here so that examples,
benchmarks and tests can treat them uniformly.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from ..core.numerics import validate_threshold
from ..core.weighted_string import WeightedString
from ..errors import PatternError
from .space import IndexStats

__all__ = [
    "UncertainStringIndex",
    "coerce_pattern",
    "coerce_pattern_array",
    "brute_force_occurrences",
]


def coerce_pattern_array(
    pattern, source: WeightedString, *, validate: bool = True
) -> np.ndarray:
    """Convert a pattern given as text or as letter codes into a code array.

    This is the one conversion routine shared by the scalar query path and
    the batch engine; ``validate=False`` skips the per-letter range check so
    batch callers can validate a whole batch with a single reduction (they
    re-run the validating path on failure to raise the canonical error).
    """
    if isinstance(pattern, str):
        codes = np.asarray(source.alphabet.encode(pattern), dtype=np.int64)
    else:
        if not isinstance(pattern, (list, tuple, np.ndarray)):
            pattern = list(pattern)
        codes = np.array(pattern, dtype=np.int64, ndmin=1)
    if validate and len(codes):
        lowest, highest = int(codes.min()), int(codes.max())
        if lowest < 0 or highest >= source.sigma:
            offender = lowest if lowest < 0 else highest
            raise PatternError(
                f"letter code {offender} outside alphabet of size {source.sigma}"
            )
    return codes


def coerce_pattern(pattern, source: WeightedString) -> list[int]:
    """Convert a pattern given as text or as letter codes into a code list."""
    return [int(code) for code in coerce_pattern_array(pattern, source)]


def brute_force_occurrences(source: WeightedString, pattern, z: float) -> list[int]:
    """Reference oracle: all z-valid occurrences by direct probability products."""
    z = validate_threshold(z)
    return source.occurrences(coerce_pattern(pattern, source), z)


class UncertainStringIndex(abc.ABC):
    """Abstract base class of every index over a weighted string.

    Concrete indexes are constructed through their ``build`` classmethods and
    expose three queries:

    * :meth:`locate` — the sorted list of valid occurrence positions,
    * :meth:`count` — their number,
    * :meth:`exists` — whether there is at least one.
    """

    #: Short display name used by the benchmark reports (e.g. ``"MWSA"``).
    name: str = "index"

    def __init__(self, source: WeightedString, z: float) -> None:
        self._source = source
        self._z = validate_threshold(z)
        self._stats = IndexStats(name=self.name)

    # -- shared accessors -----------------------------------------------------
    @property
    def source(self) -> WeightedString:
        """The indexed weighted string."""
        return self._source

    @property
    def z(self) -> float:
        """The threshold parameter (the index answers ``1/z`` queries)."""
        return self._z

    @property
    def stats(self) -> IndexStats:
        """Size / construction statistics recorded at build time."""
        return self._stats

    @property
    def minimum_pattern_length(self) -> int:
        """Smallest pattern length the index supports (ℓ; 1 for the baselines)."""
        return 1

    @property
    def maximum_pattern_length(self) -> int | None:
        """Largest supported pattern length (``None`` when unbounded).

        Monolithic indexes answer patterns of any length; a
        :class:`~repro.indexes.sharded.ShardedIndex` is only complete up to
        the pattern length its shard overlap was planned for.
        """
        return None

    # -- queries -----------------------------------------------------------------
    @abc.abstractmethod
    def locate(self, pattern) -> list[int]:
        """Sorted positions of all z-valid occurrences of ``pattern``."""

    def count(self, pattern) -> int:
        """Number of z-valid occurrences of ``pattern``."""
        return len(self.locate(pattern))

    def exists(self, pattern) -> bool:
        """Whether ``pattern`` has at least one z-valid occurrence."""
        return bool(self.locate(pattern))

    def match_many(self, patterns: Sequence) -> list[list[int]]:
        """Occurrence lists of a whole pattern batch, in input order.

        Equivalent to ``[self.locate(p) for p in patterns]`` but routed
        through the vectorised batch engine: duplicate patterns are answered
        once, and index families with a batch strategy (``_batch_locate``)
        verify whole candidate sets with array operations.
        """
        from .engine import BatchQueryEngine

        return BatchQueryEngine(self).match_many(patterns)

    def _batch_locate(self, code_lists: list[list[int]]) -> list[list[int]]:
        """Batch query strategy hook (patterns already coerced and distinct).

        The default answers each pattern through :meth:`locate`; index
        families override this with vectorised implementations.
        """
        return [self.locate(codes) for codes in code_lists]

    # -- helpers for subclasses ------------------------------------------------------
    def _prepare_pattern(self, pattern) -> list[int]:
        codes = coerce_pattern(pattern, self._source)
        if len(codes) < self.minimum_pattern_length:
            raise PatternError(
                f"{self.name} was built for patterns of length >= "
                f"{self.minimum_pattern_length}, got {len(codes)}"
            )
        if len(codes) == 0:
            raise PatternError("empty patterns are not supported")
        maximum = self.maximum_pattern_length
        if maximum is not None and len(codes) > maximum:
            raise PatternError(
                f"{self.name} was built for patterns of length <= "
                f"{maximum}, got {len(codes)}"
            )
        return codes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={len(self._source)}, z={self._z:g}, "
            f"size={self._stats.index_size_bytes}B)"
        )
