"""Common interface of every uncertain-string index.

All indexes solve (variants of) the Weighted Indexing problem: report every
position where a pattern has a z-valid occurrence in the indexed weighted
string.  They share the small protocol defined here so that examples,
benchmarks and tests can treat them uniformly.
"""

from __future__ import annotations

import abc
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..core.numerics import validate_threshold
from ..core.weighted_string import WeightedString
from ..errors import PatternError
from .space import IndexStats

__all__ = [
    "UncertainStringIndex",
    "UpdateReport",
    "affected_pattern_starts",
    "coerce_pattern",
    "coerce_pattern_array",
    "brute_force_occurrences",
    "EMPTY_PATTERN_MESSAGE",
]

#: The one canonical complaint about empty patterns: scalar queries, batch
#: queries and the brute-force oracle all raise ``PatternError`` with it.
EMPTY_PATTERN_MESSAGE = "empty patterns are not supported"


def coerce_pattern_array(
    pattern, source: WeightedString, *, validate: bool = True
) -> np.ndarray:
    """Convert a pattern given as text or as letter codes into a code array.

    This is the one conversion routine shared by the scalar query path and
    the batch engine; ``validate=False`` skips the per-letter range check so
    batch callers can validate a whole batch with a single reduction (they
    re-run the validating path on failure to raise the canonical error).

    Coercion itself is always strict: non-integral letter codes (``0.9``,
    ``-0.5``, ``nan``) raise :class:`~repro.errors.PatternError` instead of
    silently truncating to a *different* pattern's codes — truncation once
    let an invalid pattern alias a valid one's cache key and be answered
    that entry's result.
    """
    if isinstance(pattern, str):
        codes = np.asarray(source.alphabet.encode(pattern), dtype=np.int64)
    else:
        if not isinstance(pattern, (list, tuple, np.ndarray)):
            pattern = list(pattern)
        raw = np.array(pattern, ndmin=1)
        if raw.dtype == np.int64:
            codes = raw
        elif raw.dtype.kind in "iub":
            codes = raw.astype(np.int64)
        else:
            try:
                codes = raw.astype(np.int64)
            except (TypeError, ValueError, OverflowError) as error:
                raise PatternError(
                    f"letter codes must be integers: {error}"
                ) from error
            if not np.array_equal(codes, raw):
                raise PatternError(
                    "letter codes must be integers; a non-integral code "
                    "would silently truncate to a different pattern"
                )
    if validate and len(codes):
        lowest, highest = int(codes.min()), int(codes.max())
        if lowest < 0 or highest >= source.sigma:
            offender = lowest if lowest < 0 else highest
            raise PatternError(
                f"letter code {offender} outside alphabet of size {source.sigma}"
            )
    return codes


def coerce_pattern(pattern, source: WeightedString) -> list[int]:
    """Convert a pattern given as text or as letter codes into a code list."""
    return [int(code) for code in coerce_pattern_array(pattern, source)]


def brute_force_occurrences(source: WeightedString, pattern, z: float) -> list[int]:
    """Reference oracle: all z-valid occurrences by direct probability products.

    Rejects empty patterns with the same :class:`~repro.errors.PatternError`
    every index raises, so oracle tests and index queries agree on the edge
    case too (an empty pattern "occurs everywhere" under the mathematical
    definition, which is never what a caller meant).
    """
    z = validate_threshold(z)
    codes = coerce_pattern(pattern, source)
    if not codes:
        raise PatternError(EMPTY_PATTERN_MESSAGE)
    return source.occurrences(codes, z)


def affected_pattern_starts(length: int, positions, n: int) -> np.ndarray:
    """Occurrence starts of a length-``length`` pattern that point updates touch.

    An update at position ``u`` can only change the occurrence probability of
    starts in ``[u - length + 1, u]`` (the occurrences whose window covers
    ``u``); everything outside depends on untouched rows only.  Returns the
    sorted union over all updated positions, clamped to the valid start range
    ``[0, n - length]``.  This is the window the serving layer probes to
    decide — exactly — which cached answers an update could have changed.
    """
    starts: set[int] = set()
    for position in positions:
        low = max(0, int(position) - length + 1)
        high = min(int(position), n - length)
        if low <= high:
            starts.update(range(low, high + 1))
    return np.asarray(sorted(starts), dtype=np.int64)


@dataclass
class UpdateReport:
    """What one :meth:`UncertainStringIndex.apply_updates` call did.

    ``strategy`` names the repair path taken (``"noop"``, ``"full-rebuild"``,
    ``"localized"`` for the minimizer indexes' leaf-level re-derivation,
    ``"dirty-shards"`` for the sharded index); ``details`` carries
    strategy-specific counters (re-derived leaf counts, rebuilt shard ids,
    ...) consumed by tests, benchmarks and the serving layer's responses.
    """

    positions: list[int]
    strategy: str
    seconds: float
    generation: int
    details: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready report (for the CLI and the serve loop)."""
        return {
            "positions": list(self.positions),
            "strategy": self.strategy,
            "seconds": self.seconds,
            "generation": self.generation,
            **self.details,
        }


class UncertainStringIndex(abc.ABC):
    """Abstract base class of every index over a weighted string.

    Concrete indexes are constructed through their ``build`` classmethods and
    implement one required strategy — :meth:`_locate_codes`, the scalar query
    over validated letter codes — plus optional vectorised strategies
    (:meth:`_batch_locate`, :meth:`_batch_locate_probs`).  Every public query
    entry point (:meth:`locate` / :meth:`count` / :meth:`exists` /
    :meth:`locate_probs` / :meth:`topk` / :meth:`query` / :meth:`query_many`
    / :meth:`match_many`) routes through the unified
    :class:`~repro.indexes.query.QueryPlanner`, which validates patterns,
    deduplicates them and picks a strategy.
    """

    #: Short display name used by the benchmark reports (e.g. ``"MWSA"``).
    name: str = "index"

    def __init__(self, source: WeightedString, z: float) -> None:
        self._source = source
        self._z = validate_threshold(z)
        self._stats = IndexStats(name=self.name)
        self._generation = 0

    # -- shared accessors -----------------------------------------------------
    @property
    def source(self) -> WeightedString:
        """The indexed weighted string."""
        return self._source

    @property
    def z(self) -> float:
        """The threshold parameter (the index answers ``1/z`` queries)."""
        return self._z

    @property
    def stats(self) -> IndexStats:
        """Size / construction statistics recorded at build time."""
        return self._stats

    @property
    def minimum_pattern_length(self) -> int:
        """Smallest pattern length the index supports (ℓ; 1 for the baselines)."""
        return 1

    @property
    def maximum_pattern_length(self) -> int | None:
        """Largest supported pattern length (``None`` when unbounded).

        Monolithic indexes answer patterns of any length; a
        :class:`~repro.indexes.sharded.ShardedIndex` is only complete up to
        the pattern length its shard overlap was planned for.
        """
        return None

    @property
    def generation(self) -> int:
        """Number of update batches applied to this index since it was built."""
        return self._generation

    # -- updates -----------------------------------------------------------------
    def apply_updates(self, updates) -> UpdateReport:
        """Apply point updates to the indexed string and repair the index.

        ``updates`` is a sequence of ``(position, distribution)`` pairs
        (distributions as ``{letter: probability}`` mappings or length-σ
        vectors; re-normalized).  The source is mutated in place, then the
        variant's repair strategy (:meth:`_rebuild_updated`) brings the
        derived structures back in sync.  Afterwards every query answer is
        bit-identical to a from-scratch build over the mutated string — the
        contract the differential fuzz harness enforces.

        Other index objects built over the *same* :class:`WeightedString`
        observe the mutated rows but keep their stale structures; apply the
        same update batch to each of them (updates are absolute, hence
        idempotent on the shared source).
        """
        started = time.perf_counter()
        # WeightedString.apply_updates coerces the whole batch before any row
        # is touched, so a bad update cannot leave the source half-applied.
        positions = self._source.apply_updates(updates)
        if positions:
            details = self._rebuild_updated(positions) or {}
        else:
            details = {"strategy": "noop"}
        self._generation += 1
        strategy = details.pop("strategy", "full-rebuild")
        return UpdateReport(
            positions=positions,
            strategy=strategy,
            seconds=time.perf_counter() - started,
            generation=self._generation,
            details=details,
        )

    def update_position(self, position: int, distribution) -> UpdateReport:
        """Apply one point update (see :meth:`apply_updates`)."""
        return self.apply_updates([(position, distribution)])

    def apply_range_update(self, start: int, rows) -> UpdateReport:
        """Replace one contiguous span of distributions and repair the index.

        ``rows[i]`` becomes the new distribution of position ``start + i``.
        Equivalent to :meth:`apply_updates` over consecutive positions; the
        localized repair sees one contiguous dirty span — a single
        estimation replay window — instead of scattered points.
        """
        rows = list(rows)
        report = self.apply_updates(
            [(start + offset, row) for offset, row in enumerate(rows)]
        )
        report.details["range"] = [int(start), int(start) + len(rows)]
        return report

    def _rebuild_updated(self, positions: list[int]) -> dict:
        """Repair strategy hook: derived structures after source rows changed.

        The universal default re-derives the whole index through the registry
        (always bit-identical to a fresh build — the z-estimation is a
        sequential left-to-right construction, so a monolithic index cannot
        generally confine an update's ripple).  Variants override with
        narrower strategies: the minimizer indexes re-derive only the leaves
        whose derivation actually changed (at least the ``2ℓ−1`` window of
        minimizer windows around each touched position, extended by
        estimation ripple), the sharded index rebuilds only dirty shards.
        """
        from .registry import rebuild_in_place

        return rebuild_in_place(self)

    # -- queries -----------------------------------------------------------------
    def query(self, request, **options):
        """Answer one :class:`~repro.indexes.query.Query` through the planner.

        ``request`` is either a built :class:`~repro.indexes.query.Query` or
        a bare pattern, in which case any keyword options (``mode``, ``k``,
        ``z``, ``zs``) are forwarded to the Query constructor.  Options
        alongside a prebuilt Query are rejected — silently dropping an
        override would answer a different question than the caller asked.
        """
        from ..errors import QueryError
        from .query import Query, QueryPlanner

        if isinstance(request, Query):
            if options:
                raise QueryError(
                    f"query options {sorted(options)} cannot be combined with a "
                    "prebuilt Query; set them on the Query itself"
                )
        else:
            request = Query(request, **options)
        return QueryPlanner(self).execute([request])[0]

    def query_many(self, requests: Sequence):
        """Answer a whole batch of queries/patterns through the planner."""
        from .query import QueryPlanner

        return QueryPlanner(self).execute(requests)

    def locate(self, pattern) -> list[int]:
        """Sorted positions of all z-valid occurrences of ``pattern``."""
        return self.query(pattern).positions

    def count(self, pattern) -> int:
        """Number of z-valid occurrences of ``pattern``."""
        return self.query(pattern, mode="count").count

    def exists(self, pattern) -> bool:
        """Whether ``pattern`` has at least one z-valid occurrence."""
        return self.query(pattern, mode="exists").exists

    def locate_probs(self, pattern) -> list[tuple[int, float]]:
        """Sorted ``(position, occurrence probability)`` pairs of ``pattern``."""
        result = self.query(pattern, mode="locate_probs")
        return list(zip(result.positions, result.probabilities))

    def topk(self, pattern, k: int) -> list[tuple[int, float]]:
        """The ``k`` most probable occurrences, most probable first."""
        result = self.query(pattern, mode="topk", k=k)
        return list(zip(result.positions, result.probabilities))

    def match_many(self, patterns: Sequence) -> list[list[int]]:
        """Occurrence lists of a whole pattern batch, in input order.

        Equivalent to ``[self.locate(p) for p in patterns]`` but routed
        through the vectorised batch engine: duplicate patterns are answered
        once, and index families with a batch strategy (``_batch_locate``)
        verify whole candidate sets with array operations.
        """
        from .engine import BatchQueryEngine

        return BatchQueryEngine(self).match_many(patterns)

    # -- query strategy hooks -----------------------------------------------------
    @abc.abstractmethod
    def _locate_codes(self, codes) -> list[int]:
        """Scalar query strategy (pattern already coerced and validated)."""

    def _batch_locate(self, code_lists: list) -> list[list[int]]:
        """Batch query strategy hook (patterns already coerced and distinct).

        The default answers each pattern through the scalar strategy; index
        families override this with vectorised implementations.
        """
        return [self._locate_codes(codes) for codes in code_lists]

    def _batch_locate_probs(self, code_lists: list) -> list[tuple[list[int], np.ndarray]]:
        """Batch strategy that also reports exact occurrence probabilities.

        Default: occurrences from :meth:`_batch_locate`, probabilities from
        one :func:`~repro.indexes.verification.exact_occurrence_products`
        gather per pattern (this is how the WST/WSA baselines answer — their
        property structures never compute probabilities).  The minimizer
        families override this to surface the products straight out of their
        verification stage; the sharded index fans it out per shard.
        """
        from .verification import exact_occurrence_products

        all_positions = self._batch_locate(code_lists)
        return [
            (positions, exact_occurrence_products(self._source, codes, positions))
            for codes, positions in zip(code_lists, all_positions)
        ]

    # -- helpers for subclasses ------------------------------------------------------
    def _prepare_pattern(self, pattern) -> list[int]:
        codes = coerce_pattern(pattern, self._source)
        if len(codes) == 0:
            raise PatternError(EMPTY_PATTERN_MESSAGE)
        if len(codes) < self.minimum_pattern_length:
            raise PatternError(
                f"{self.name} was built for patterns of length >= "
                f"{self.minimum_pattern_length}, got {len(codes)}"
            )
        maximum = self.maximum_pattern_length
        if maximum is not None and len(codes) > maximum:
            raise PatternError(
                f"{self.name} was built for patterns of length <= "
                f"{maximum}, got {len(codes)}"
            )
        return codes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={len(self._source)}, z={self._z:g}, "
            f"size={self._stats.index_size_bytes}B)"
        )
