"""Central index factory and the staged construction pipeline.

Every index variant of the library is registered here as an
:class:`IndexSpec`; the CLI, the benchmark harness, the examples and the
sharded builder all construct indexes through :func:`build_index` (or a
:class:`ConstructionPipeline`) instead of calling scattered ``build``
classmethods directly.  The registry records what each variant needs so the
pipeline can share the expensive construction stages:

* **estimation** — the Θ(nz) z-estimation (shared by the baselines and the
  explicit minimizer constructions, so they index identical samples);
* **index data** — the sorted minimizer leaf collections (shared by the
  MWST / MWSA / grid variants);
* **assembly** — the per-variant final build (tries, grids, statistics).

``MWST-SE`` deliberately shares nothing: never materialising the
z-estimation is its contribution.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from .base import UncertainStringIndex
from .minimizer_core import MinimizerIndexData, build_index_data_from_estimation
from .mwst import (
    GridMinimizerWSA,
    GridMinimizerWST,
    MinimizerWSA,
    MinimizerWST,
)
from .se_construction import SpaceEfficientMWST
from .wsa import WeightedSuffixArray
from .wst import WeightedSuffixTree

__all__ = [
    "IndexSpec",
    "REGISTRY",
    "register_index",
    "get_spec",
    "available_kinds",
    "build_index",
    "rebuild_in_place",
    "ConstructionPipeline",
]


@dataclass(frozen=True)
class IndexSpec:
    """Registration record of one index variant.

    ``needs_ell`` marks variants whose minimum pattern length is a build
    parameter; ``shares_estimation`` / ``shares_data`` tell the pipeline
    which cached stages the variant's build can consume.
    """

    name: str
    cls: type
    needs_ell: bool
    shares_estimation: bool = False
    shares_data: bool = False
    description: str = ""


#: Registry of every index variant keyed by its display name.
REGISTRY: dict[str, IndexSpec] = {}


def register_index(spec: IndexSpec) -> IndexSpec:
    """Register an index variant (last registration of a name wins)."""
    REGISTRY[spec.name] = spec
    return spec


def get_spec(kind: str) -> IndexSpec:
    """The registration record of a variant, or a helpful error."""
    try:
        return REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise ConstructionError(
            f"unknown index kind {kind!r}; known kinds: {known}"
        ) from None


def available_kinds() -> tuple[str, ...]:
    """All registered variant names, sorted."""
    return tuple(sorted(REGISTRY))


def build_index(
    source: WeightedString,
    z: float,
    *,
    kind: str = "MWSA",
    ell: int | None = None,
    shards: int | None = None,
    workers: int | None = None,
    max_pattern_len: int | None = None,
    **options,
) -> UncertainStringIndex:
    """Build an index by name (``"WST"``, ``"WSA"``, ``"MWSA"``, ``"MWST-SE"``, ...).

    The minimizer-based kinds require ``ell`` (the minimum supported pattern
    length); the baselines ignore it.  Any remaining keyword options are
    passed to the specific ``build`` classmethod.

    When ``shards`` is given the named variant becomes the per-shard index of
    a :class:`~repro.indexes.sharded.ShardedIndex` built over ``shards``
    chunks of the input (``workers`` parallel build processes, shard overlap
    sized for patterns up to ``max_pattern_len``).
    """
    if shards is not None:
        from .sharded import ShardedIndex

        return ShardedIndex.build(
            source,
            z,
            kind=kind,
            ell=ell,
            shard_count=shards,
            workers=workers,
            max_pattern_len=max_pattern_len,
            **options,
        )
    spec = get_spec(kind)
    if spec.needs_ell:
        if ell is None:
            raise ConstructionError(f"index kind {kind!r} requires the ell parameter")
        return spec.cls.build(source, z, ell, **options)
    return spec.cls.build(source, z, **options)


def rebuild_in_place(index: UncertainStringIndex) -> dict:
    """Re-derive an index over its (mutated) source, adopting the result.

    The universal repair strategy behind
    :meth:`UncertainStringIndex.apply_updates`: build a fresh index of the
    same registered kind over ``index.source`` and transplant its state into
    the live object, so planners, engines and services holding a reference
    keep working.  Nothing cached is reused — shared construction stages
    (estimations, leaf data) would be stale after an update.
    """
    spec = REGISTRY.get(index.name)
    if spec is None or type(index) is not spec.cls:
        spec = next(
            (entry for entry in REGISTRY.values() if type(index) is entry.cls), None
        )
    if spec is None:
        raise ConstructionError(
            f"cannot rebuild {type(index).__name__}: the index kind is not "
            "registered (register it or override _rebuild_updated)"
        )
    ell = index.minimum_pattern_length if spec.needs_ell else None
    options = {}
    if spec.needs_ell:
        # Keep the index's construction parameters: rebuilding with a default
        # minimizer scheme would silently change what the user built (and
        # what the store faithfully persisted).
        data = getattr(index, "data", None)
        scheme = getattr(data, "scheme", None)
        if scheme is not None:
            options["scheme"] = scheme
    fresh = spec.cls.build(index.source, index.z, ell, **options) if spec.needs_ell else (
        spec.cls.build(index.source, index.z)
    )
    generation = index.generation
    index.__dict__.update(fresh.__dict__)
    index._generation = generation
    return {"strategy": "full-rebuild", "kind": spec.name, "ell": ell}


class ConstructionPipeline:
    """Staged, reusable construction of many variants over one input.

    The pipeline caches the stage outputs (z-estimation, minimizer scheme,
    shared leaf collections) so that building several variants — the
    benchmark suites, the oracle tests, a sharded build that compares
    against its monolithic twin — pays each stage once.  Stages are computed
    lazily: a pipeline used only for ``MWST-SE`` never builds an estimation.
    """

    def __init__(
        self,
        source: WeightedString,
        z: float,
        *,
        ell: int | None = None,
        scheme: MinimizerScheme | None = None,
        estimation: ZEstimation | None = None,
        method: str = "vectorized",
        grid_brute_force_limit: int | None = None,
    ) -> None:
        """``method`` picks the construction path of the cached stages — the
        array-backed fast path (default) or the per-leaf ``"reference"``
        path; the old-vs-new construction benchmark runs one pipeline of
        each, every other caller keeps the default.
        ``grid_brute_force_limit`` overrides the ``Grid2D`` backend-selection
        threshold for the grid variants built by this pipeline."""
        self.source = source
        self.z = z
        self.ell = ell
        self.method = method
        self.grid_brute_force_limit = grid_brute_force_limit
        self._scheme = scheme
        self._estimation = estimation
        self._data: MinimizerIndexData | None = None

    # -- stages -----------------------------------------------------------------
    def scheme(self) -> MinimizerScheme:
        """Stage 0: the (ℓ, k)-minimizer scheme (cached)."""
        if self._scheme is None:
            if self.ell is None:
                raise ConstructionError(
                    "the pipeline needs ell to derive a minimizer scheme"
                )
            self._scheme = MinimizerScheme(self.ell, self.source.sigma)
        return self._scheme

    def estimation(self) -> ZEstimation:
        """Stage 1: the z-estimation (cached, shared across variants)."""
        if self._estimation is None:
            self._estimation = build_z_estimation(
                self.source, self.z, method=self.method
            )
        return self._estimation

    def index_data(self) -> MinimizerIndexData:
        """Stage 2: the sorted minimizer leaf collections (cached)."""
        if self._data is None:
            if self.ell is None:
                raise ConstructionError(
                    "the pipeline needs ell to build minimizer index data"
                )
            self._data = build_index_data_from_estimation(
                self.source,
                self.z,
                self.ell,
                scheme=self.scheme(),
                estimation=self.estimation(),
                method=self.method,
            )
        return self._data

    # -- assembly ---------------------------------------------------------------
    def build(self, kind: str, **options) -> UncertainStringIndex:
        """Stage 3: assemble one variant, feeding it the cached stages."""
        spec = get_spec(kind)
        if spec.shares_estimation:
            options.setdefault("estimation", self.estimation())
        if spec.shares_data:
            options.setdefault("data", self.index_data())
        if spec.needs_ell and not spec.shares_data:
            options.setdefault("scheme", self.scheme())
        if self.grid_brute_force_limit is not None and getattr(spec.cls, "use_grid", False):
            options.setdefault("grid_brute_force_limit", self.grid_brute_force_limit)
        return build_index(self.source, self.z, kind=kind, ell=self.ell, **options)

    def build_many(self, kinds) -> dict[str, UncertainStringIndex]:
        """Assemble several variants over the shared stages."""
        return {kind: self.build(kind) for kind in kinds}


# --------------------------------------------------------------------------- #
# registrations                                                                #
# --------------------------------------------------------------------------- #
register_index(
    IndexSpec(
        "WST", WeightedSuffixTree, needs_ell=False, shares_estimation=True,
        description="weighted suffix tree baseline (Θ(nz) nodes)",
    )
)
register_index(
    IndexSpec(
        "WSA", WeightedSuffixArray, needs_ell=False, shares_estimation=True,
        description="weighted suffix array baseline (Θ(nz) entries)",
    )
)
register_index(
    IndexSpec(
        "MWST", MinimizerWST, needs_ell=True, shares_estimation=True,
        shares_data=True, description="minimizer solid-factor trees",
    )
)
register_index(
    IndexSpec(
        "MWSA", MinimizerWSA, needs_ell=True, shares_estimation=True,
        shares_data=True, description="minimizer solid-factor arrays",
    )
)
register_index(
    IndexSpec(
        "MWST-G", GridMinimizerWST, needs_ell=True, shares_estimation=True,
        shares_data=True, description="minimizer trees + Theorem-9 grid query",
    )
)
register_index(
    IndexSpec(
        "MWSA-G", GridMinimizerWSA, needs_ell=True, shares_estimation=True,
        shares_data=True, description="minimizer arrays + Theorem-9 grid query",
    )
)
register_index(
    IndexSpec(
        "MWST-SE", SpaceEfficientMWST, needs_ell=True,
        description="space-efficient DFS construction (no z-estimation)",
    )
)

class _RegistryClassView(Mapping):
    """Live name → class view over :data:`REGISTRY` (the legacy API).

    A mapping rather than a snapshot dict so that variants registered after
    import — through :func:`register_index` — appear everywhere
    ``INDEX_CLASSES`` is consumed (CLI choices, sweeps, docs tables).
    """

    def __getitem__(self, name: str) -> type:
        return REGISTRY[name].cls

    def __iter__(self):
        return iter(REGISTRY)

    def __len__(self) -> int:
        return len(REGISTRY)


#: Registry view of every index class keyed by its display name (legacy API).
INDEX_CLASSES = _RegistryClassView()
