"""The index family: WST / WSA baselines and the minimizer-based indexes.

===========  ===============================================================
Index        Description
===========  ===============================================================
WST          Weighted suffix tree over the z-estimation (state of the art,
             tree flavour): Θ(nz) size, O(m + occ) queries.
WSA          Weighted suffix array (state of the art, array flavour):
             Θ(nz) size, binary-search queries.
MWST         Minimizer solid-factor trees + the simple Section-5 query.
MWSA         Array variant of MWST (binary search over sorted leaves).
MWST-G       MWST + 2D-grid query (Theorem 9).
MWSA-G       MWSA + 2D-grid query (Theorem 9).
MWST-SE      MWST built by the space-efficient construction of Section 4
             (never materialises the z-estimation).
SHARDED      Any of the above, built per overlapping chunk in parallel and
             queried through a merging front-end (``build_index(shards=N)``).
===========  ===============================================================

Construction goes through the central factory in :mod:`.registry`
(:func:`build_index`, :class:`ConstructionPipeline`); built indexes persist
through the binary store in :mod:`repro.io.store`.  Every query — any mode
(``exists`` / ``count`` / ``locate`` / ``locate_probs`` / ``topk``), scalar
or batched, on any variant — executes through the unified planner in
:mod:`.query`; :mod:`repro.service` adds the cached serving layer on top.
"""

from .base import (
    EMPTY_PATTERN_MESSAGE,
    UncertainStringIndex,
    UpdateReport,
    affected_pattern_starts,
    brute_force_occurrences,
    coerce_pattern,
    coerce_pattern_array,
)
from .engine import BatchQueryEngine, locate_minimizer_batch
from .minimizer_core import (
    FactorLeaf,
    LeafCollection,
    MinimizerIndexData,
    build_index_data_from_estimation,
)
from .mwst import (
    GridMinimizerWSA,
    GridMinimizerWST,
    MinimizerIndexBase,
    MinimizerWSA,
    MinimizerWST,
)
from .property_structures import PropertySuffixStructure
from .query import ExecutionPlan, Query, QueryMode, QueryPlanner, QueryResult
from .registry import (
    INDEX_CLASSES,
    REGISTRY,
    ConstructionPipeline,
    IndexSpec,
    available_kinds,
    build_index,
    get_spec,
    rebuild_in_place,
    register_index,
)
from .se_construction import SpaceEfficientMWST, build_index_data_space_efficient
from .sharded import Shard, ShardedIndex, plan_shards
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel
from .verification import (
    HeavyMismatchVerifier,
    exact_occurrence_products,
    verify_against_source,
    verify_candidate_batches,
    verify_candidates_against_source,
)
from .wsa import WeightedSuffixArray
from .wst import WeightedSuffixTree

__all__ = [
    "UncertainStringIndex",
    "UpdateReport",
    "affected_pattern_starts",
    "rebuild_in_place",
    "BatchQueryEngine",
    "locate_minimizer_batch",
    "brute_force_occurrences",
    "coerce_pattern",
    "coerce_pattern_array",
    "EMPTY_PATTERN_MESSAGE",
    "Query",
    "QueryMode",
    "QueryResult",
    "QueryPlanner",
    "ExecutionPlan",
    "WeightedSuffixTree",
    "WeightedSuffixArray",
    "MinimizerWST",
    "MinimizerWSA",
    "GridMinimizerWST",
    "GridMinimizerWSA",
    "SpaceEfficientMWST",
    "ShardedIndex",
    "Shard",
    "plan_shards",
    "MinimizerIndexBase",
    "MinimizerIndexData",
    "LeafCollection",
    "FactorLeaf",
    "PropertySuffixStructure",
    "build_index_data_from_estimation",
    "build_index_data_space_efficient",
    "HeavyMismatchVerifier",
    "exact_occurrence_products",
    "verify_against_source",
    "verify_candidate_batches",
    "verify_candidates_against_source",
    "SpaceModel",
    "DEFAULT_SPACE_MODEL",
    "ConstructionTracker",
    "IndexStats",
    "INDEX_CLASSES",
    "REGISTRY",
    "IndexSpec",
    "ConstructionPipeline",
    "register_index",
    "get_spec",
    "available_kinds",
    "build_index",
]
