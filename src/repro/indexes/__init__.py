"""The index family: WST / WSA baselines and the minimizer-based indexes.

===========  ===============================================================
Index        Description
===========  ===============================================================
WST          Weighted suffix tree over the z-estimation (state of the art,
             tree flavour): Θ(nz) size, O(m + occ) queries.
WSA          Weighted suffix array (state of the art, array flavour):
             Θ(nz) size, binary-search queries.
MWST         Minimizer solid-factor trees + the simple Section-5 query.
MWSA         Array variant of MWST (binary search over sorted leaves).
MWST-G       MWST + 2D-grid query (Theorem 9).
MWSA-G       MWSA + 2D-grid query (Theorem 9).
MWST-SE      MWST built by the space-efficient construction of Section 4
             (never materialises the z-estimation).
===========  ===============================================================
"""

from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from .base import UncertainStringIndex, brute_force_occurrences, coerce_pattern
from .engine import BatchQueryEngine, locate_minimizer_batch
from .minimizer_core import (
    FactorLeaf,
    LeafCollection,
    MinimizerIndexData,
    build_index_data_from_estimation,
)
from .mwst import (
    GridMinimizerWSA,
    GridMinimizerWST,
    MinimizerIndexBase,
    MinimizerWSA,
    MinimizerWST,
)
from .property_structures import PropertySuffixStructure
from .se_construction import SpaceEfficientMWST, build_index_data_space_efficient
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel
from .verification import (
    HeavyMismatchVerifier,
    verify_against_source,
    verify_candidate_batches,
    verify_candidates_against_source,
)
from .wsa import WeightedSuffixArray
from .wst import WeightedSuffixTree

__all__ = [
    "UncertainStringIndex",
    "BatchQueryEngine",
    "locate_minimizer_batch",
    "brute_force_occurrences",
    "coerce_pattern",
    "WeightedSuffixTree",
    "WeightedSuffixArray",
    "MinimizerWST",
    "MinimizerWSA",
    "GridMinimizerWST",
    "GridMinimizerWSA",
    "SpaceEfficientMWST",
    "MinimizerIndexBase",
    "MinimizerIndexData",
    "LeafCollection",
    "FactorLeaf",
    "PropertySuffixStructure",
    "build_index_data_from_estimation",
    "build_index_data_space_efficient",
    "HeavyMismatchVerifier",
    "verify_against_source",
    "verify_candidate_batches",
    "verify_candidates_against_source",
    "SpaceModel",
    "DEFAULT_SPACE_MODEL",
    "ConstructionTracker",
    "IndexStats",
    "INDEX_CLASSES",
    "build_index",
]

#: Registry of every index class keyed by its display name.
INDEX_CLASSES = {
    cls.name: cls
    for cls in (
        WeightedSuffixTree,
        WeightedSuffixArray,
        MinimizerWST,
        MinimizerWSA,
        GridMinimizerWST,
        GridMinimizerWSA,
        SpaceEfficientMWST,
    )
}


def build_index(
    source: WeightedString,
    z: float,
    *,
    kind: str = "MWSA",
    ell: int | None = None,
    **options,
) -> UncertainStringIndex:
    """Build an index by name (``"WST"``, ``"WSA"``, ``"MWSA"``, ``"MWST-SE"``, ...).

    The minimizer-based kinds require ``ell`` (the minimum supported pattern
    length); the baselines ignore it.  Any remaining keyword options are
    passed to the specific ``build`` classmethod.
    """
    try:
        cls = INDEX_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(INDEX_CLASSES))
        raise ConstructionError(f"unknown index kind {kind!r}; known kinds: {known}") from None
    if issubclass(cls, MinimizerIndexBase):
        if ell is None:
            raise ConstructionError(f"index kind {kind!r} requires the ell parameter")
        return cls.build(source, z, ell, **options)
    return cls.build(source, z, **options)
