"""Sharded indexes: overlapping chunks built in parallel, queried as one.

A :class:`ShardedIndex` splits a weighted string into ``shard_count``
near-equal chunks and builds one monolithic index (any registered kind) per
chunk.  Consecutive shards overlap by ``max_pattern_len - 1`` positions, so
every occurrence of a pattern of length ``m <= max_pattern_len`` is fully
contained in at least one shard; each shard *owns* the occurrences starting
inside its core (non-overlap) range, which makes the merged answer an exact,
duplicate-free reconstruction of the monolithic answer:

* ``locate`` / ``count`` / ``exists`` shift each shard's local positions by
  the shard start, keep only owned starts and merge;
* ``match_many`` (through the batch engine's ``_batch_locate`` hook) fans the
  deduplicated pattern batch out across the shards and merges per pattern.

Shard construction is embarrassingly parallel: with ``workers > 1`` the
shards are built in separate processes via :mod:`multiprocessing` and the
finished indexes are shipped back, which is what makes the build wall-clock
scale with cores (and, later, with machines).  Patterns longer than
``max_pattern_len`` could straddle more than one shard and are rejected with
the same :class:`~repro.errors.PatternError` discipline as too-short
patterns on the minimizer indexes.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from .base import UncertainStringIndex
from .space import IndexStats

__all__ = ["Shard", "ShardedIndex", "plan_shards"]


@dataclass(frozen=True)
class Shard:
    """One chunk of the shard plan.

    The shard's index covers global positions ``[start, end)``; the shard
    owns occurrences starting in ``[start, core_end)`` (its core range), and
    ``[core_end, end)`` is the overlap into the next shard's core.
    """

    start: int
    core_end: int
    end: int

    @property
    def length(self) -> int:
        """Number of positions the shard's index covers."""
        return self.end - self.start


def plan_shards(n: int, shard_count: int, overlap: int) -> list[Shard]:
    """Split ``[0, n)`` into ``shard_count`` cores with ``overlap`` lookahead.

    Cores are near-equal; each shard extends ``overlap`` positions past its
    core (clamped to ``n``) so patterns starting in the core never overhang
    the shard.
    """
    if shard_count <= 0:
        raise ConstructionError("shard_count must be positive")
    if overlap < 0:
        raise ConstructionError("shard overlap cannot be negative")
    shard_count = min(shard_count, n) or 1
    bounds = [round(index * n / shard_count) for index in range(shard_count + 1)]
    return [
        Shard(start=bounds[index], core_end=bounds[index + 1],
              end=min(bounds[index + 1] + overlap, n))
        for index in range(shard_count)
    ]


def _build_shard(payload):
    """Build one shard's index (module-level so worker processes can import it)."""
    matrix, alphabet, z, kind, ell, options = payload
    from .registry import build_index

    source = WeightedString(matrix, alphabet)
    return build_index(source, z, kind=kind, ell=ell, **options)


class ShardedIndex(UncertainStringIndex):
    """A horizontally sharded uncertain-string index.

    Built through :meth:`build` (or ``build_index(..., shards=N)``); answers
    are bit-identical to the equivalent monolithic index for every pattern of
    length in ``[minimum_pattern_length, max_pattern_len]``.
    """

    name = "SHARDED"

    def __init__(
        self,
        source: WeightedString,
        z: float,
        shards: list[Shard],
        indexes: list[UncertainStringIndex],
        kind: str,
        max_pattern_len: int,
        stats: IndexStats,
        *,
        ell: int | None = None,
        build_options: dict | None = None,
        generations: list[int] | None = None,
    ) -> None:
        super().__init__(source, z)
        self._shards = shards
        self._indexes = indexes
        self._kind = kind
        self._max_pattern_len = max_pattern_len
        self._stats = stats
        self._ell = ell
        self._build_options = dict(build_options or {})
        self._generations = (
            list(generations) if generations is not None else [0] * len(shards)
        )
        self.name = f"SHARDED[{kind}]"

    # -- construction -----------------------------------------------------------------
    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        *,
        kind: str = "MWSA",
        ell: int | None = None,
        shard_count: int = 1,
        workers: int | None = None,
        max_pattern_len: int | None = None,
        estimation=None,  # noqa: ARG003 — accepted for harness symmetry
        **options,
    ) -> "ShardedIndex":
        """Build ``shard_count`` per-chunk indexes of ``kind`` (in parallel).

        ``max_pattern_len`` fixes the overlap (``max_pattern_len - 1``) and
        the largest supported query length; it defaults to ``2·ell`` for the
        minimizer kinds (covering the workloads of the paper's figures) and
        must be given explicitly for the baselines.  ``workers`` > 1 builds
        the shards in that many processes.  A shared ``estimation`` is
        accepted for call-site symmetry with the monolithic builds but
        ignored: each shard estimates its own chunk.
        """
        from .registry import get_spec

        spec = get_spec(kind)  # validate the inner kind up front
        if spec.needs_ell and ell is None:
            raise ConstructionError(f"index kind {kind!r} requires the ell parameter")
        if max_pattern_len is None:
            if ell is None:
                raise ConstructionError(
                    "sharded builds need max_pattern_len (or ell to default it "
                    "to 2*ell): the shard overlap must bound the query length"
                )
            max_pattern_len = 2 * ell
        if max_pattern_len < 1 or (ell is not None and max_pattern_len < ell):
            raise ConstructionError(
                f"max_pattern_len {max_pattern_len} cannot be smaller than the "
                f"minimum pattern length"
            )
        started = time.perf_counter()
        shards = plan_shards(len(source), shard_count, max_pattern_len - 1)
        payloads = [
            (
                source.matrix[shard.start : shard.end],
                source.alphabet,
                z,
                kind,
                ell,
                options,
            )
            for shard in shards
        ]
        if workers is not None and workers > 1 and len(shards) > 1:
            import multiprocessing

            with multiprocessing.Pool(min(workers, len(shards))) as pool:
                indexes = pool.map(_build_shard, payloads)
        else:
            indexes = [_build_shard(payload) for payload in payloads]
        stats = IndexStats(
            name=f"SHARDED[{kind}]",
            index_size_bytes=sum(index.stats.index_size_bytes for index in indexes),
            construction_space_bytes=max(
                (index.stats.construction_space_bytes for index in indexes), default=0
            ),
            construction_seconds=time.perf_counter() - started,
            counters={
                "shards": len(shards),
                "kind": kind,
                "overlap": max_pattern_len - 1,
                "workers": workers or 1,
                "shard_lengths": [shard.length for shard in shards],
            },
        )
        return cls(
            source, z, shards, indexes, kind, max_pattern_len, stats,
            ell=ell, build_options=options,
        )

    # -- shape ------------------------------------------------------------------------
    @property
    def shards(self) -> list[Shard]:
        """The shard plan (for inspection, storage and tests)."""
        return self._shards

    @property
    def shard_indexes(self) -> list[UncertainStringIndex]:
        """The per-shard indexes, in shard order."""
        return self._indexes

    @property
    def kind(self) -> str:
        """The per-shard index kind."""
        return self._kind

    @property
    def generations(self) -> list[int]:
        """Per-shard rebuild generations (bumped by dirty-shard updates).

        The binary store stamps these into saved sharded indexes so a
        persisted index can be refreshed shard by shard: only shards whose
        generation moved since the last save are rewritten.
        """
        return list(self._generations)

    @property
    def minimum_pattern_length(self) -> int:
        return max(
            (index.minimum_pattern_length for index in self._indexes), default=1
        )

    @property
    def maximum_pattern_length(self) -> int:
        return self._max_pattern_len

    # -- updates ----------------------------------------------------------------------
    def dirty_shards(self, positions) -> list[int]:
        """Shard numbers whose covered range contains an updated position.

        A shard's index is built over ``[start, end)`` — core *plus* the
        ``max_pattern_len - 1`` overlap — so an update anywhere in that range
        invalidates it.  An update inside an overlap region therefore dirties
        both the shard that owns the position and the predecessor whose
        overlap reaches into it; updates elsewhere dirty exactly one shard.
        """
        updated = sorted({int(position) for position in positions})
        dirty = []
        for number, shard in enumerate(self._shards):
            low = bisect_left(updated, shard.start)
            if low < len(updated) and updated[low] < shard.end:
                dirty.append(number)
        return dirty

    def _infer_ell(self) -> int | None:
        """The per-shard ``ell`` for rebuilds (recovered for loaded indexes)."""
        if self._ell is not None:
            return self._ell
        from .registry import get_spec

        if get_spec(self._kind).needs_ell and self._indexes:
            self._ell = self._indexes[0].minimum_pattern_length
        return self._ell

    def _rebuild_updated(self, positions) -> dict:
        """Dirty-shard repair: rebuild only the shards an update touched.

        Clean shards keep their structures untouched — their slice of the
        probability matrix did not change — so the merged answers stay
        bit-identical to a full rebuild over the mutated string while the
        work is proportional to the number of dirty shards.
        """
        dirty = self.dirty_shards(positions)
        ell = self._infer_ell()
        options = dict(self._build_options)
        if dirty and "scheme" not in options:
            # Store-loaded indexes arrive without their build options; reuse
            # the live shards' minimizer scheme so a dirty rebuild cannot
            # drift from the clean shards' construction parameters.
            scheme = getattr(getattr(self._indexes[dirty[0]], "data", None), "scheme", None)
            if scheme is not None:
                options["scheme"] = scheme
                self._build_options = options
        for number in dirty:
            shard = self._shards[number]
            self._indexes[number] = _build_shard(
                (
                    self._source.matrix[shard.start : shard.end],
                    self._source.alphabet,
                    self._z,
                    self._kind,
                    ell,
                    options,
                )
            )
            self._generations[number] += 1
        self._stats.index_size_bytes = sum(
            index.stats.index_size_bytes for index in self._indexes
        )
        self._stats.counters["generations"] = list(self._generations)
        return {
            "strategy": "dirty-shards",
            "rebuilt_shards": dirty,
            "clean_shards": len(self._shards) - len(dirty),
        }

    # -- queries ----------------------------------------------------------------------
    @staticmethod
    def _accumulate(shard: Shard, local_positions, owned: set[int]) -> None:
        """Shift one shard's local starts and keep only the starts it owns.

        A global start belongs to the shard whose core contains it, so
        filtering on the core upper bound yields each occurrence exactly once.
        """
        for position in local_positions:
            globally = shard.start + int(position)
            if globally < shard.core_end:
                owned.add(globally)

    def _locate_codes(self, codes) -> list[int]:
        """Scalar strategy: per-shard scalar queries, ownership-filtered merge."""
        owned: set[int] = set()
        for shard, index in zip(self._shards, self._indexes):
            if shard.length >= len(codes):
                self._accumulate(shard, index._locate_codes(codes), owned)
        return sorted(owned)

    def _fitting_rows(self, code_lists: list, shard: Shard) -> list[int]:
        """Rows of the batch whose patterns fit inside ``shard``.

        The same guard the scalar path applies, so short tail shards never
        run the batch machinery on patterns they cannot contain.
        """
        return [
            row
            for row in range(len(code_lists))
            if len(code_lists[row]) <= shard.length
        ]

    def _batch_locate(self, code_lists: list) -> list[list[int]]:
        """Fan the deduplicated batch out across the shards and merge back."""
        owned: list[set[int]] = [set() for _ in code_lists]
        for shard, index in zip(self._shards, self._indexes):
            rows = self._fitting_rows(code_lists, shard)
            if not rows:
                continue
            shard_results = index._batch_locate([code_lists[row] for row in rows])
            for row, local_positions in zip(rows, shard_results):
                self._accumulate(shard, local_positions, owned[row])
        return [sorted(positions) for positions in owned]

    def _batch_locate_probs(self, code_lists: list):
        """Probability-carrying fan-out: merge per-shard ``(positions, probs)``.

        A shard computes each occurrence's probability from its own slice of
        the probability matrix — the very same ``float64`` entries in the
        same order as the monolithic index — so merged probabilities are
        bit-identical to the monolithic answer.
        """
        owned: list[dict[int, float]] = [{} for _ in code_lists]
        for shard, index in zip(self._shards, self._indexes):
            rows = self._fitting_rows(code_lists, shard)
            if not rows:
                continue
            shard_results = index._batch_locate_probs(
                [code_lists[row] for row in rows]
            )
            for row, (local_positions, probabilities) in zip(rows, shard_results):
                mapping = owned[row]
                for position, probability in zip(local_positions, probabilities):
                    globally = shard.start + int(position)
                    if globally < shard.core_end:
                        mapping[globally] = float(probability)
        out = []
        for mapping in owned:
            positions = sorted(mapping)
            out.append(
                (
                    positions,
                    np.array([mapping[p] for p in positions], dtype=np.float64),
                )
            )
        return out
