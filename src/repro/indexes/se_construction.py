"""MWST-SE: the space-efficient construction (Section 4, Algorithms 1–4).

The explicit construction of the minimizer indexes first materialises the
z-estimation, which costs Θ(nz) working space even though the final index is
only ``O(n + (nz/ℓ)·log z)``.  The space-efficient construction avoids this
by a depth-first traversal of the *extended solid factor trees*: solid
factors are grown one letter at a time away from the heavy string, the
probability of the grown part is maintained incrementally, a sliding
structure over the last ℓ positions of the current root-to-node path detects
the minimizers of solid length-ℓ windows, and a leaf (anchor position +
mismatch list, the Corollary-4 encoding) is emitted whenever the traversal
backtracks through a pending minimizer position.  At any moment only the
current path, O(n) bookkeeping arrays and the already-emitted output are
alive, so the peak working space is ``O(n + output)``.

Two passes are run: one on the weighted string itself (producing the
``Tsuff`` leaves) and one on its reverse (producing the ``Tpref`` leaves);
both use the *same* minimizer function on the forward reading of every
window, so the sampled positions coincide with the explicit construction's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.heavy import HeavyString
from ..core.numerics import is_solid_probability, validate_threshold
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from .minimizer_core import FactorLeaf, LeafCollection, MinimizerIndexData
from .mwst import MinimizerIndexBase
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel

__all__ = ["SpaceEfficientMWST", "build_index_data_space_efficient", "DFSStatistics"]


@dataclass
class DFSStatistics:
    """Counters of one extended-solid-factor-tree traversal."""

    nodes: int = 0
    max_depth: int = 0
    leaves: int = 0
    solid_windows: int = 0


class _MinSegmentTree:
    """Point-update / range-min segment tree over (order value, tie) keys."""

    _SENTINEL = (float("inf"), float("inf"))

    def __init__(self, size: int) -> None:
        self._size = 1
        while self._size < max(1, size):
            self._size *= 2
        self._keys = [self._SENTINEL] * (2 * self._size)

    def set(self, position: int, key) -> None:
        node = self._size + position
        self._keys[node] = key
        node //= 2
        while node:
            self._keys[node] = min(self._keys[2 * node], self._keys[2 * node + 1])
            node //= 2

    def clear(self, position: int) -> None:
        self.set(position, self._SENTINEL)

    def range_min(self, lo: int, hi: int):
        """Minimum key over positions [lo, hi); the sentinel if empty."""
        best = self._SENTINEL
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                if self._keys[lo] < best:
                    best = self._keys[lo]
                lo += 1
            if hi & 1:
                hi -= 1
                if self._keys[hi] < best:
                    best = self._keys[hi]
            lo //= 2
            hi //= 2
        return best


class _ExtendedFactorDFS:
    """One traversal of the (forward or backward) extended solid factor tree."""

    def __init__(
        self,
        view: WeightedString,
        heavy: HeavyString,
        z: float,
        ell: int,
        scheme: MinimizerScheme,
        *,
        reverse_orientation: bool,
        max_nodes: int | None = None,
    ) -> None:
        self.view = view
        self.heavy = heavy
        self.z = z
        self.ell = ell
        self.scheme = scheme
        self.reverse_orientation = reverse_orientation
        self.max_nodes = max_nodes
        self.statistics = DFSStatistics()
        n = len(view)
        self.n = n
        self.k = scheme.k
        self.heavy_codes = heavy.codes
        # Letters sorted by decreasing probability per position, so the DFS can
        # stop trying letters as soon as the solidity check fails.
        self.sorted_letters: list[list[tuple[float, int]]] = []
        matrix = view.matrix
        for position in range(n):
            row = matrix[position]
            order = np.argsort(-row, kind="stable")
            letters = [(float(row[code]), int(code)) for code in order if row[code] > 0.0]
            self.sorted_letters.append(letters)

    # -- k-mer handling ----------------------------------------------------------------
    def _kmer_key(self, path_letters: np.ndarray, position: int):
        """Order key of the k-mer anchored at ``position`` of the current path."""
        sigma = self.scheme.sigma
        code = 0
        if self.reverse_orientation:
            # The original-orientation k-mer reads the view letters backwards.
            for offset in range(self.k - 1, -1, -1):
                code = code * sigma + int(path_letters[position + offset])
            tie = -position
        else:
            for offset in range(self.k):
                code = code * sigma + int(path_letters[position + offset])
            tie = position
        return (self.scheme.order_value(code), tie)

    def _pending_position(self, selected_tie) -> int:
        """Map the selected k-mer back to the path position that must emit."""
        if self.reverse_orientation:
            return -selected_tie + self.k - 1
        return selected_tie

    # -- the traversal ------------------------------------------------------------------
    def run(self) -> list[FactorLeaf]:
        n, k, ell, z = self.n, self.k, self.ell, self.z
        if n < ell:
            return []
        heavy = self.heavy
        heavy_codes = self.heavy_codes
        path_letters = np.zeros(n, dtype=np.int64)
        tree = _MinSegmentTree(max(1, n - k + 1))
        pending: set[int] = set()
        diff_stack: list[tuple[int, int]] = []
        leaves: list[FactorLeaf] = []
        statistics = self.statistics

        def window_is_solid(position: int, probability: float) -> bool:
            if position + ell > n:
                return False
            if not diff_stack:
                window_probability = heavy.range_product(position, position + ell)
            else:
                last_mismatch = diff_stack[0][0]
                if last_mismatch >= position + ell:
                    return True
                window_probability = probability * heavy.range_product(
                    last_mismatch + 1, position + ell
                )
            return is_solid_probability(window_probability, z)

        def emit(position: int) -> None:
            offsets = sorted(
                ((diff_position - position, code) for diff_position, code in diff_stack)
            )
            anchor = position
            original_position = (n - 1 - position) if self.reverse_orientation else position
            leaves.append(
                FactorLeaf(
                    anchor=anchor,
                    length=n - position,
                    mismatches=tuple(offsets),
                    position=original_position,
                    source=-1,
                )
            )
            statistics.leaves += 1

        # Frames: [node_position, letter_index, child_undo]; the root frame sits
        # at position n (the empty string) and descends towards position 0.
        root_frame = [n, 0, None]
        stack = [root_frame]
        probability = 1.0

        while stack:
            frame = stack[-1]
            node_position, letter_index, child_undo = frame
            if child_undo is not None:
                # A child subtree just finished: undo its letter application.
                (pushed_diff, previous_probability, kmer_position) = child_undo
                child_position = node_position - 1
                if child_position in pending:
                    pending.discard(child_position)
                    emit(child_position)
                if pushed_diff:
                    diff_stack.pop()
                probability = previous_probability
                if kmer_position >= 0:
                    tree.clear(kmer_position)
                frame[2] = None
            child_position = node_position - 1
            descended = False
            while child_position >= 0 and frame[1] < len(self.sorted_letters[child_position]):
                letter_probability, code = self.sorted_letters[child_position][frame[1]]
                frame[1] += 1
                pure_heavy = not diff_stack and code == int(heavy_codes[child_position])
                if pure_heavy:
                    new_probability = 1.0
                else:
                    candidate = (
                        letter_probability
                        if not diff_stack
                        else probability * letter_probability
                    )
                    if not is_solid_probability(candidate, z):
                        # Letters are sorted by decreasing probability: once one
                        # fails, the remaining (non-heavy) letters fail too.
                        frame[1] = len(self.sorted_letters[child_position])
                        break
                    new_probability = candidate
                if self.max_nodes is not None and statistics.nodes >= self.max_nodes:
                    raise ConstructionError(
                        "space-efficient construction exceeded the node budget"
                    )
                # Apply the letter and open the child frame.
                statistics.nodes += 1
                statistics.max_depth = max(statistics.max_depth, n - child_position)
                path_letters[child_position] = code
                pushed_diff = False
                if not pure_heavy and code != int(heavy_codes[child_position]):
                    diff_stack.append((child_position, code))
                    pushed_diff = True
                previous_probability = probability
                probability = new_probability
                kmer_position = -1
                if child_position + self.k <= n:
                    kmer_position = child_position
                    tree.set(kmer_position, self._kmer_key(path_letters, kmer_position))
                if window_is_solid(child_position, probability):
                    statistics.solid_windows += 1
                    key = tree.range_min(child_position, child_position + ell - self.k + 1)
                    if key[0] != float("inf"):
                        pending.add(self._pending_position(key[1]))
                frame[2] = (pushed_diff, previous_probability, kmer_position)
                stack.append([child_position, 0, None])
                descended = True
                break
            if descended:
                continue
            # All children explored: close this frame (the parent will undo).
            stack.pop()
        return leaves


def build_index_data_space_efficient(
    source: WeightedString,
    z: float,
    ell: int,
    *,
    scheme: MinimizerScheme | None = None,
    max_nodes: int | None = None,
) -> tuple[MinimizerIndexData, dict]:
    """Build the minimizer index data without materialising the z-estimation."""
    z = validate_threshold(z)
    if ell <= 0:
        raise ConstructionError("ell must be positive")
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    heavy = HeavyString(source)
    forward_dfs = _ExtendedFactorDFS(
        source, heavy, z, ell, scheme, reverse_orientation=False, max_nodes=max_nodes
    )
    forward_leaves = forward_dfs.run()
    reversed_view = source.reverse()
    reversed_heavy = HeavyString(reversed_view)
    backward_dfs = _ExtendedFactorDFS(
        reversed_view,
        reversed_heavy,
        z,
        ell,
        scheme,
        reverse_orientation=True,
        max_nodes=max_nodes,
    )
    backward_leaves = backward_dfs.run()
    forward = LeafCollection(forward_leaves, heavy.codes)
    backward = LeafCollection(backward_leaves, reversed_heavy.codes)
    counters = {
        "forward_leaves": len(forward),
        "backward_leaves": len(backward),
        "forward_nodes": forward_dfs.statistics.nodes,
        "backward_nodes": backward_dfs.statistics.nodes,
        "solid_windows": forward_dfs.statistics.solid_windows,
    }
    data = MinimizerIndexData(
        source=source,
        z=z,
        ell=ell,
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=None,
        construction="space_efficient",
        counters=counters,
    )
    return data, counters


class SpaceEfficientMWST(MinimizerIndexBase):
    """MWST-SE: the MWST index built by the space-efficient DFS construction.

    Queries are identical to :class:`MinimizerWST` (the simple Section-5
    query over the minimizer solid-factor trees); only the construction path
    — and therefore the construction space and time — differs.
    """

    name = "MWST-SE"
    use_trie = True
    use_grid = False

    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        ell: int,
        *,
        scheme: MinimizerScheme | None = None,
        space_model: SpaceModel = DEFAULT_SPACE_MODEL,
        max_nodes: int | None = None,
        **_ignored,
    ) -> "SpaceEfficientMWST":
        started = time.perf_counter()
        tracker = ConstructionTracker()
        data, counters = build_index_data_space_efficient(
            source, z, ell, scheme=scheme, max_nodes=max_nodes
        )
        n = len(source)
        # Working space: the input matrix, the O(n) traversal bookkeeping and
        # the emitted leaves — but no z-estimation.  (The Python implementation
        # materialises a reversed copy of the matrix for convenience; an
        # array-based implementation reads the same matrix backwards, so the
        # input is charged once, as for every other construction.)
        tracker.allocate(space_model.probabilities(n * source.sigma))
        tracker.allocate(space_model.words(6 * n))
        tracker.allocate(
            data.forward.size_bytes(space_model) + data.backward.size_bytes(space_model)
        )
        index_size = data.size_bytes(space_model, as_tree=True, with_grid=False)
        stats = IndexStats(
            name=cls.name,
            index_size_bytes=index_size,
            construction_space_bytes=tracker.peak_bytes,
            construction_seconds=time.perf_counter() - started,
            counters=counters,
        )
        return cls(source, z, data, stats, None)
