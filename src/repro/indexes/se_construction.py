"""MWST-SE: the space-efficient construction (Section 4, Algorithms 1–4).

The explicit construction of the minimizer indexes first materialises the
z-estimation, which costs Θ(nz) working space even though the final index is
only ``O(n + (nz/ℓ)·log z)``.  The space-efficient construction avoids this
by a depth-first traversal of the *extended solid factor trees*: solid
factors are grown one letter at a time away from the heavy string, the
probability of the grown part is maintained incrementally, a sliding
structure over the last ℓ positions of the current root-to-node path detects
the minimizers of solid length-ℓ windows, and a leaf (anchor position +
mismatch list, the Corollary-4 encoding) is emitted whenever the traversal
backtracks through a pending minimizer position.  At any moment only the
current path, O(n) bookkeeping arrays and the already-emitted output are
alive, so the peak working space is ``O(n + output)``.

Two passes are run: one on the weighted string itself (producing the
``Tsuff`` leaves) and one on its reverse (producing the ``Tpref`` leaves);
both use the *same* minimizer function on the forward reading of every
window, so the sampled positions coincide with the explicit construction's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .._kernels import NUMBA
from .._kernels.segtree import (
    PAIR_SENTINEL_HI,
    PAIR_SENTINEL_LO,
    seg_bulk_fill,
    seg_range_min,
    seg_set,
)
from ..core.heavy import HeavyString
from ..core.numerics import is_solid_probability, validate_threshold
from ..core.weighted_string import WeightedString
from ..errors import ConstructionError
from ..sampling.minimizers import MinimizerScheme
from .minimizer_core import FactorLeaf, LeafCollection, MinimizerIndexData
from .mwst import MinimizerIndexBase
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel

__all__ = ["SpaceEfficientMWST", "build_index_data_space_efficient", "DFSStatistics"]


@dataclass
class DFSStatistics:
    """Counters of one extended-solid-factor-tree traversal."""

    nodes: int = 0
    max_depth: int = 0
    leaves: int = 0
    solid_windows: int = 0


class _MinSegmentTree:
    """Point-update / range-min segment tree over packed integer keys.

    Keys are ``(order value << 32) | (tie + offset)`` integers — one machine
    comparison instead of a tuple compare — and :meth:`set` stops climbing as
    soon as an ancestor's minimum is unchanged, which is the common case
    when inserting a random-order k-mer into a populated window.
    :meth:`bulk_fill` seeds every leaf at once and builds the internal nodes
    bottom-up in O(size), which is how the heavy-spine descent batches its
    ``n`` point updates into one pass.
    """

    _SENTINEL = 1 << 100

    def __init__(self, size: int) -> None:
        self._size = 1
        while self._size < max(1, size):
            self._size *= 2
        self._keys = [self._SENTINEL] * (2 * self._size)

    def set(self, position: int, key: int) -> None:
        keys = self._keys
        node = self._size + position
        keys[node] = key
        node >>= 1
        while node:
            left = keys[2 * node]
            right = keys[2 * node + 1]
            smallest = left if left < right else right
            if keys[node] == smallest:
                break
            keys[node] = smallest
            node >>= 1

    def clear(self, position: int) -> None:
        self.set(position, self._SENTINEL)

    def bulk_fill(self, leaf_keys: list) -> None:
        """Set leaves ``0 .. len(leaf_keys)`` at once (O(size) rebuild)."""
        keys = self._keys
        size = self._size
        keys[size : size + len(leaf_keys)] = leaf_keys
        for node in range(size - 1, 0, -1):
            left = keys[2 * node]
            right = keys[2 * node + 1]
            keys[node] = left if left < right else right

    def range_min(self, lo: int, hi: int) -> int:
        """Minimum key over positions [lo, hi); the sentinel if empty."""
        best = self._SENTINEL
        keys = self._keys
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                if keys[lo] < best:
                    best = keys[lo]
                lo += 1
            if hi & 1:
                hi -= 1
                if keys[hi] < best:
                    best = keys[hi]
            lo >>= 1
            hi >>= 1
        return best


class _KernelMinSegmentTree:
    """Array twin of :class:`_MinSegmentTree` driven by the compiled kernels.

    Packed keys exceed 64 bits (the random-order value alone is a full
    uint64), so each key is split into an ``(order, tie)`` pair compared
    lexicographically — the exact big-int comparison order.  The public
    interface (packed ints in, packed ints out, same sentinel) is identical,
    so the DFS code is engine-agnostic.
    """

    _SENTINEL = _MinSegmentTree._SENTINEL
    _LOW_MASK = 0xFFFFFFFF

    def __init__(self, size: int) -> None:
        self._size = 1
        while self._size < max(1, size):
            self._size *= 2
        self._hi = np.full(2 * self._size, PAIR_SENTINEL_HI, dtype=np.uint64)
        self._lo = np.full(2 * self._size, PAIR_SENTINEL_LO, dtype=np.int64)

    def set(self, position: int, key: int) -> None:
        if key == self._SENTINEL:
            self.clear(position)
            return
        seg_set(
            self._hi,
            self._lo,
            self._size,
            position,
            np.uint64(key >> 32),
            np.int64(key & self._LOW_MASK),
        )

    def clear(self, position: int) -> None:
        seg_set(
            self._hi,
            self._lo,
            self._size,
            position,
            np.uint64(PAIR_SENTINEL_HI),
            np.int64(PAIR_SENTINEL_LO),
        )

    def bulk_fill(self, leaf_keys: list) -> None:
        """Set leaves ``0 .. len(leaf_keys)`` at once (O(size) rebuild)."""
        sentinel = self._SENTINEL
        leaf_hi = np.array(
            [PAIR_SENTINEL_HI if key == sentinel else key >> 32 for key in leaf_keys],
            dtype=np.uint64,
        )
        leaf_lo = np.array(
            [
                PAIR_SENTINEL_LO if key == sentinel else key & self._LOW_MASK
                for key in leaf_keys
            ],
            dtype=np.int64,
        )
        seg_bulk_fill(self._hi, self._lo, self._size, leaf_hi, leaf_lo)

    def range_min(self, lo: int, hi: int) -> int:
        """Minimum key over positions [lo, hi); the sentinel if empty."""
        best_hi, best_lo = seg_range_min(self._hi, self._lo, self._size, lo, hi)
        best_hi, best_lo = int(best_hi), int(best_lo)
        if best_hi == PAIR_SENTINEL_HI and best_lo == PAIR_SENTINEL_LO:
            return self._SENTINEL
        return (best_hi << 32) | best_lo


#: Engine-selected segment tree: big-int list tree on CPython, pair-keyed
#: array tree under the compiled kernels (bit-identical key order).
_SegmentTree = _KernelMinSegmentTree if NUMBA else _MinSegmentTree


class _ExtendedFactorDFS:
    """One traversal of the (forward or backward) extended solid factor tree."""

    def __init__(
        self,
        view: WeightedString,
        heavy: HeavyString,
        z: float,
        ell: int,
        scheme: MinimizerScheme,
        *,
        reverse_orientation: bool,
        max_nodes: int | None = None,
    ) -> None:
        self.view = view
        self.heavy = heavy
        self.z = z
        self.ell = ell
        self.scheme = scheme
        self.reverse_orientation = reverse_orientation
        self.max_nodes = max_nodes
        self.statistics = DFSStatistics()
        n = len(view)
        self.n = n
        self.k = scheme.k
        self.heavy_codes = heavy.codes
        # Letters sorted by decreasing probability per position, so the DFS
        # can stop trying letters as soon as the solidity check fails.  One
        # whole-matrix argsort instead of n per-row sorts; the count vector
        # bounds each position's loop to its positive letters (zeros sort
        # last under the stable descending order).
        matrix = view.matrix
        if n:
            self.letter_order = np.argsort(-matrix, axis=1, kind="stable")
            self.letter_probs = np.take_along_axis(matrix, self.letter_order, axis=1)
            self.letter_counts = np.count_nonzero(matrix > 0.0, axis=1).tolist()
        else:
            self.letter_order = np.empty((0, view.sigma), dtype=np.int64)
            self.letter_probs = np.empty((0, view.sigma), dtype=np.float64)
            self.letter_counts = []
        # Packed order keys of every *heavy* k-mer, so the (frequent) k-mer
        # windows that lie entirely on the heavy spine skip the per-letter
        # code accumulation.
        self._heavy_keys = self._pack_heavy_keys()

    # -- k-mer handling ----------------------------------------------------------------
    def _pack_key(self, order_value: int, position: int) -> int:
        """One integer encoding the (order value, tie) pair, order-preserving."""
        tie = -position if self.reverse_orientation else position
        return (int(order_value) << 32) | (tie + self.n)

    def _pack_heavy_keys(self) -> list[int]:
        """Packed keys of all heavy-spine k-mers, computed vectorised."""
        n, k, sigma = self.n, self.k, self.scheme.sigma
        if n < k:
            return []
        codes = np.zeros(n - k + 1, dtype=np.int64)
        offsets = (
            range(k - 1, -1, -1) if self.reverse_orientation else range(k)
        )
        # Mirrors _kmer_key's accumulation order: the reverse orientation
        # reads the view letters backwards (the original-orientation k-mer).
        for offset in offsets:
            codes = codes * sigma + self.heavy_codes[offset : n - k + 1 + offset]
        orders = self.scheme.order_values(codes)
        return [
            self._pack_key(int(order), position)
            for position, order in enumerate(orders)
        ]

    def _kmer_key(self, path_letters: np.ndarray, position: int) -> int:
        """Order key of the k-mer anchored at ``position`` of the current path."""
        sigma = self.scheme.sigma
        code = 0
        if self.reverse_orientation:
            # The original-orientation k-mer reads the view letters backwards.
            for offset in range(self.k - 1, -1, -1):
                code = code * sigma + int(path_letters[position + offset])
        else:
            for offset in range(self.k):
                code = code * sigma + int(path_letters[position + offset])
        return self._pack_key(self.scheme.order_value(code), position)

    def _pending_from_key(self, key: int) -> int:
        """Map a selected k-mer key back to the path position that must emit."""
        selected_tie = (key & 0xFFFFFFFF) - self.n
        if self.reverse_orientation:
            return -selected_tie + self.k - 1
        return selected_tie

    # -- the traversal ------------------------------------------------------------------
    def run(self) -> list[FactorLeaf]:
        n, k, ell, z = self.n, self.k, self.ell, self.z
        if n < ell:
            return []
        heavy = self.heavy
        heavy_codes = self.heavy_codes
        path_letters = np.zeros(n, dtype=np.int64)
        tree = _SegmentTree(max(1, n - k + 1))
        pending: set[int] = set()
        diff_stack: list[tuple[int, int]] = []
        leaves: list[FactorLeaf] = []
        statistics = self.statistics

        def window_is_solid(position: int, probability: float) -> bool:
            if position + ell > n:
                return False
            if not diff_stack:
                window_probability = heavy.range_product(position, position + ell)
            else:
                last_mismatch = diff_stack[0][0]
                if last_mismatch >= position + ell:
                    return True
                window_probability = probability * heavy.range_product(
                    last_mismatch + 1, position + ell
                )
            return is_solid_probability(window_probability, z)

        def emit(position: int) -> None:
            offsets = sorted(
                ((diff_position - position, code) for diff_position, code in diff_stack)
            )
            anchor = position
            original_position = (n - 1 - position) if self.reverse_orientation else position
            leaves.append(
                FactorLeaf(
                    anchor=anchor,
                    length=n - position,
                    mismatches=tuple(offsets),
                    position=original_position,
                    source=-1,
                )
            )
            statistics.leaves += 1

        # Frames: [node_position, letter_index, child_undo]; the root frame sits
        # at position n (the empty string) and descends towards position 0.
        stack = [[n, 0, None]]
        probability = 1.0
        letter_counts = self.letter_counts
        letter_order = self.letter_order
        letter_probs = self.letter_probs
        heavy_keys = self._heavy_keys
        sentinel = _MinSegmentTree._SENTINEL

        if self.max_nodes is None:
            # Batch the leftmost branch: the heavy spine is always tried
            # first (heavy letters are probability-sorted first) and is
            # always solid (its grown part is empty), so the first n frames,
            # the n segment-tree point updates and the per-window solidity
            # checks collapse into one vectorised prologue: frames are
            # stacked in bulk, the tree is bottom-up filled with the
            # precomputed heavy k-mer keys, and the pending minimizers of
            # every solid spine window are seeded by plain range-min probes.
            path_letters[:] = heavy_codes
            tree.bulk_fill(heavy_keys)
            for child_position in range(n - 1, -1, -1):
                kmer_position = child_position if child_position + k <= n else -1
                stack[-1][1] = 1
                stack[-1][2] = (False, 1.0, kmer_position)
                stack.append([child_position, 0, None])
                if window_is_solid(child_position, 1.0):
                    statistics.solid_windows += 1
                    # Every queried window lies at positions ≥ child_position,
                    # exactly the keys a stepwise descent would have set.
                    key = tree.range_min(
                        child_position, child_position + ell - k + 1
                    )
                    if key != sentinel:
                        pending.add(self._pending_from_key(key))
            statistics.nodes += n
            statistics.max_depth = n

        while stack:
            frame = stack[-1]
            node_position, letter_index, child_undo = frame
            if child_undo is not None:
                # A child subtree just finished: undo its letter application.
                (pushed_diff, previous_probability, kmer_position) = child_undo
                child_position = node_position - 1
                if child_position in pending:
                    pending.discard(child_position)
                    emit(child_position)
                if pushed_diff:
                    diff_stack.pop()
                probability = previous_probability
                if kmer_position >= 0:
                    tree.clear(kmer_position)
                frame[2] = None
            child_position = node_position - 1
            descended = False
            while child_position >= 0 and frame[1] < letter_counts[child_position]:
                letter_probability = float(letter_probs[child_position, frame[1]])
                code = int(letter_order[child_position, frame[1]])
                frame[1] += 1
                pure_heavy = not diff_stack and code == int(heavy_codes[child_position])
                if pure_heavy:
                    new_probability = 1.0
                else:
                    candidate = (
                        letter_probability
                        if not diff_stack
                        else probability * letter_probability
                    )
                    if not is_solid_probability(candidate, z):
                        # Letters are sorted by decreasing probability: once one
                        # fails, the remaining (non-heavy) letters fail too.
                        frame[1] = letter_counts[child_position]
                        break
                    new_probability = candidate
                if self.max_nodes is not None and statistics.nodes >= self.max_nodes:
                    raise ConstructionError(
                        "space-efficient construction exceeded the node budget"
                    )
                # Apply the letter and open the child frame.
                statistics.nodes += 1
                statistics.max_depth = max(statistics.max_depth, n - child_position)
                path_letters[child_position] = code
                pushed_diff = False
                if not pure_heavy and code != int(heavy_codes[child_position]):
                    diff_stack.append((child_position, code))
                    pushed_diff = True
                previous_probability = probability
                probability = new_probability
                kmer_position = -1
                if child_position + k <= n:
                    kmer_position = child_position
                    if not diff_stack or diff_stack[-1][0] >= kmer_position + k:
                        # The k-mer window lies entirely on the heavy spine
                        # (the deepest diff sits past it): reuse the
                        # precomputed packed key.
                        key = heavy_keys[kmer_position]
                    else:
                        key = self._kmer_key(path_letters, kmer_position)
                    tree.set(kmer_position, key)
                if window_is_solid(child_position, probability):
                    statistics.solid_windows += 1
                    key = tree.range_min(child_position, child_position + ell - k + 1)
                    if key != sentinel:
                        pending.add(self._pending_from_key(key))
                frame[2] = (pushed_diff, previous_probability, kmer_position)
                stack.append([child_position, 0, None])
                descended = True
                break
            if descended:
                continue
            # All children explored: close this frame (the parent will undo).
            stack.pop()
        return leaves


def build_index_data_space_efficient(
    source: WeightedString,
    z: float,
    ell: int,
    *,
    scheme: MinimizerScheme | None = None,
    max_nodes: int | None = None,
) -> tuple[MinimizerIndexData, dict]:
    """Build the minimizer index data without materialising the z-estimation."""
    z = validate_threshold(z)
    if ell <= 0:
        raise ConstructionError("ell must be positive")
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    heavy = HeavyString(source)
    forward_dfs = _ExtendedFactorDFS(
        source, heavy, z, ell, scheme, reverse_orientation=False, max_nodes=max_nodes
    )
    forward_leaves = forward_dfs.run()
    reversed_view = source.reverse()
    reversed_heavy = HeavyString(reversed_view)
    backward_dfs = _ExtendedFactorDFS(
        reversed_view,
        reversed_heavy,
        z,
        ell,
        scheme,
        reverse_orientation=True,
        max_nodes=max_nodes,
    )
    backward_leaves = backward_dfs.run()
    forward = LeafCollection(forward_leaves, heavy.codes)
    backward = LeafCollection(backward_leaves, reversed_heavy.codes)
    counters = {
        "forward_leaves": len(forward),
        "backward_leaves": len(backward),
        "forward_nodes": forward_dfs.statistics.nodes,
        "backward_nodes": backward_dfs.statistics.nodes,
        "solid_windows": forward_dfs.statistics.solid_windows,
    }
    data = MinimizerIndexData(
        source=source,
        z=z,
        ell=ell,
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=None,
        construction="space_efficient",
        counters=counters,
    )
    return data, counters


class SpaceEfficientMWST(MinimizerIndexBase):
    """MWST-SE: the MWST index built by the space-efficient DFS construction.

    Queries are identical to :class:`MinimizerWST` (the simple Section-5
    query over the minimizer solid-factor trees); only the construction path
    — and therefore the construction space and time — differs.
    """

    name = "MWST-SE"
    use_trie = True
    use_grid = False

    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        ell: int,
        *,
        scheme: MinimizerScheme | None = None,
        space_model: SpaceModel = DEFAULT_SPACE_MODEL,
        max_nodes: int | None = None,
        **_ignored,
    ) -> "SpaceEfficientMWST":
        started = time.perf_counter()
        tracker = ConstructionTracker()
        data, counters = build_index_data_space_efficient(
            source, z, ell, scheme=scheme, max_nodes=max_nodes
        )
        n = len(source)
        # Working space: the input matrix, the O(n) traversal bookkeeping and
        # the emitted leaves — but no z-estimation.  (The Python implementation
        # materialises a reversed copy of the matrix for convenience; an
        # array-based implementation reads the same matrix backwards, so the
        # input is charged once, as for every other construction.)
        tracker.allocate(space_model.probabilities(n * source.sigma))
        tracker.allocate(space_model.words(6 * n))
        tracker.allocate(
            data.forward.size_bytes(space_model) + data.backward.size_bytes(space_model)
        )
        index_size = data.size_bytes(space_model, as_tree=True, with_grid=False)
        stats = IndexStats(
            name=cls.name,
            index_size_bytes=index_size,
            construction_space_bytes=tracker.peak_bytes,
            construction_seconds=time.perf_counter() - started,
            counters=counters,
        )
        return cls(source, z, data, stats, None)
