"""Verification of candidate occurrences.

The minimizer-based indexes report *candidate* positions that must be checked
against the weighted string (Section 3's false positives and Section 5's
simple query).  Two verifiers are provided:

* :func:`verify_against_source` — the O(m) direct product of probabilities,
  which is what the practical Section-5 query uses (random access to X);
* :class:`HeavyMismatchVerifier` — the O(log z)-flavoured check of Theorem 9
  that combines heavy-string prefix products with the ≤ log₂ z stored
  mismatches of a candidate factor.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..core.heavy import HeavyString
from ..core.numerics import RELATIVE_TOLERANCE, is_solid_probability, validate_threshold
from ..core.weighted_string import WeightedString

__all__ = ["verify_against_source", "HeavyMismatchVerifier"]


def verify_against_source(
    source: WeightedString, pattern: Sequence[int], position: int, z: float
) -> bool:
    """Whether ``pattern`` has a z-valid occurrence at ``position`` (O(m))."""
    z = validate_threshold(z)
    return is_solid_probability(source.occurrence_probability(pattern, position), z)


class HeavyMismatchVerifier:
    """Verification via heavy prefix products plus per-position corrections.

    For a candidate occurrence of a pattern at ``position``, the occurrence
    probability equals the product of the heavy probabilities over the window
    multiplied, for every position where the pattern letter differs from the
    heavy letter, by ``p_i(pattern letter) / p_i(heavy letter)``.  When the
    pattern is solid there are at most ``log₂ z`` such corrections (Lemma 3),
    so the check costs O(log z) once the mismatching positions are known; a
    verifier that is handed the pattern letters simply scans them but only
    touches probabilities at mismatching positions.
    """

    def __init__(self, source: WeightedString, heavy: HeavyString | None = None) -> None:
        self._source = source
        self._heavy = heavy if heavy is not None else HeavyString(source)

    @property
    def heavy(self) -> HeavyString:
        """The heavy string used for the prefix products."""
        return self._heavy

    def occurrence_probability(self, pattern: Sequence[int], position: int) -> float:
        """Occurrence probability computed through the heavy decomposition."""
        m = len(pattern)
        if position < 0 or position + m > len(self._source):
            return 0.0
        log_probability = self._heavy.log_range_product(position, position + m)
        heavy_codes = self._heavy.codes
        for offset, code in enumerate(pattern):
            at = position + offset
            if code != heavy_codes[at]:
                letter_probability = self._source.probability(at, code)
                if letter_probability <= 0.0:
                    return 0.0
                log_probability += math.log(letter_probability) - math.log(
                    float(self._heavy.probabilities[at])
                )
        return math.exp(log_probability)

    def is_valid(self, pattern: Sequence[int], position: int, z: float) -> bool:
        """Whether the candidate occurrence is z-valid."""
        z = validate_threshold(z)
        probability = self.occurrence_probability(pattern, position)
        return probability * z >= 1.0 - RELATIVE_TOLERANCE * max(1.0, probability * z)
