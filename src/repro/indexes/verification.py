"""Verification of candidate occurrences.

The minimizer-based indexes report *candidate* positions that must be checked
against the weighted string (Section 3's false positives and Section 5's
simple query).  Two verifiers are provided:

* :func:`verify_against_source` — the O(m) direct product of probabilities,
  which is what the practical Section-5 query uses (random access to X);
* :class:`HeavyMismatchVerifier` — the O(log z)-flavoured check of Theorem 9
  that combines heavy-string prefix products with the ≤ log₂ z stored
  mismatches of a candidate factor.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.heavy import HeavyString
from ..core.numerics import (
    RELATIVE_TOLERANCE,
    is_solid_probability,
    solid_probability_mask,
    validate_threshold,
)
from ..core.weighted_string import WeightedString

__all__ = [
    "verify_against_source",
    "verify_candidates_against_source",
    "verify_candidate_batches",
    "exact_occurrence_products",
    "HeavyMismatchVerifier",
]


def exact_occurrence_products(
    source: WeightedString, pattern: Sequence[int], positions
) -> np.ndarray:
    """Exact occurrence probabilities of ``pattern`` at an array of starts.

    Unlike :meth:`WeightedString.occurrence_probabilities` — which sums the
    log-probability cache and exponentiates, and is the substrate of every
    *solidity decision* — this computes the direct left-to-right ``float64``
    product ``p(P[0]) · p(P[1]) · ...`` per start, bit-identical to the
    scalar :meth:`WeightedString.occurrence_probability` loop.  It is what
    every reported probability (``locate_probs`` / ``topk`` results) comes
    from, so reported values equal the brute-force O(n·m) oracle exactly.
    Out-of-range starts yield 0.0.
    """
    codes = np.asarray(pattern, dtype=np.int64)
    starts = np.asarray(positions, dtype=np.int64)
    m = len(codes)
    n = len(source)
    out = np.zeros(len(starts), dtype=np.float64)
    if m == 0:
        out[(starts >= 0) & (starts <= n)] = 1.0
        return out
    in_range = (starts >= 0) & (starts + m <= n)
    if not in_range.any():
        return out
    valid_starts = starts[in_range]
    gathered = source.matrix[
        valid_starts[:, None] + np.arange(m, dtype=np.int64)[None, :],
        codes[None, :],
    ]
    # np.multiply.reduce applies the multiplications left to right, exactly
    # like the scalar loop, so the products carry identical rounding.
    out[in_range] = np.multiply.reduce(gathered, axis=1)
    return out


def verify_against_source(
    source: WeightedString, pattern: Sequence[int], position: int, z: float
) -> bool:
    """Whether ``pattern`` has a z-valid occurrence at ``position`` (O(m))."""
    z = validate_threshold(z)
    return is_solid_probability(source.occurrence_probability(pattern, position), z)


def verify_candidates_against_source(
    source: WeightedString, pattern: Sequence[int], positions, z: float
) -> np.ndarray:
    """Boolean mask of the z-valid candidates among an array of positions.

    Batched counterpart of :func:`verify_against_source`: one gather over the
    source's log-probability cache verifies every candidate at once
    (O(B·m) array work instead of B Python-level probability products).
    Out-of-range candidates verify to False.
    """
    z = validate_threshold(z)
    probabilities = source.occurrence_probabilities(pattern, positions)
    return solid_probability_mask(probabilities, z)


def verify_candidate_batches(
    source: WeightedString,
    z: float,
    patterns: Sequence[Sequence[int]],
    candidates_per_pattern: Sequence,
    *,
    with_probabilities: bool = False,
) -> list:
    """Verify the candidate sets of a whole pattern batch with grouped array ops.

    For every pattern ``patterns[i]`` with candidate start array
    ``candidates_per_pattern[i]`` (sorted, deduplicated; ``None`` or empty
    means no candidates), returns the sorted list of z-valid occurrence
    positions.  Patterns of equal length share one fancy-indexing gather
    over the source's log-probability cache, so the number of NumPy
    dispatches scales with the number of distinct pattern lengths, not with
    the batch size.  This is the bulk engine behind
    :meth:`UncertainStringIndex.match_many`;
    :func:`verify_candidates_against_source` is its one-pattern sibling.

    With ``with_probabilities=True`` each entry becomes a
    ``(positions, probabilities)`` pair: the verification stage computes the
    per-occurrence products anyway, and the rich query modes
    (``locate_probs`` / ``topk``) surface them instead of discarding them.
    Reported values come from one extra exact-product gather per length
    group (:func:`exact_occurrence_products` semantics), while the solidity
    *decision* keeps using the log-cache probabilities — so ``locate``
    results stay bit-identical and reported probabilities match the
    brute-force product oracle exactly.
    """
    z = validate_threshold(z)
    results: list[list[int]] = [[] for _ in patterns]
    probabilities_out: list[np.ndarray] = [
        np.zeros(0, dtype=np.float64) for _ in patterns
    ]
    by_length: dict[int, list[int]] = {}
    for row, candidates in enumerate(candidates_per_pattern):
        if candidates is not None and len(candidates):
            by_length.setdefault(len(patterns[row]), []).append(row)
    n = len(source)
    log_matrix = source.log_matrix
    for m, rows in by_length.items():
        if m > n:
            continue  # every candidate overhangs the string: nothing is valid
        sizes = np.array([len(candidates_per_pattern[row]) for row in rows])
        starts = np.concatenate([candidates_per_pattern[row] for row in rows])
        pattern_of = np.repeat(np.arange(len(rows), dtype=np.int64), sizes)
        pattern_matrix = np.array([patterns[row] for row in rows], dtype=np.int64)
        in_range = (starts >= 0) & (starts + m <= n)
        safe_starts = np.where(in_range, starts, 0)
        offsets = np.arange(m, dtype=np.int64)
        letter_rows = safe_starts[:, None] + offsets[None, :]
        letter_columns = pattern_matrix[pattern_of]
        gathered = log_matrix[letter_rows, letter_columns]
        probabilities = np.exp(gathered.sum(axis=1))
        solid = solid_probability_mask(probabilities, z) & in_range
        if with_probabilities:
            products = np.multiply.reduce(
                source.matrix[letter_rows, letter_columns], axis=1
            )
        boundaries = np.cumsum(sizes)[:-1]
        split_products = (
            np.split(products, boundaries) if with_probabilities else None
        )
        for group, (row, row_starts, row_solid) in enumerate(
            zip(rows, np.split(starts, boundaries), np.split(solid, boundaries))
        ):
            results[row] = [int(position) for position in row_starts[row_solid]]
            if with_probabilities:
                probabilities_out[row] = split_products[group][row_solid]
    if with_probabilities:
        return list(zip(results, probabilities_out))
    return results


class HeavyMismatchVerifier:
    """Verification via heavy prefix products plus per-position corrections.

    For a candidate occurrence of a pattern at ``position``, the occurrence
    probability equals the product of the heavy probabilities over the window
    multiplied, for every position where the pattern letter differs from the
    heavy letter, by ``p_i(pattern letter) / p_i(heavy letter)``.  When the
    pattern is solid there are at most ``log₂ z`` such corrections (Lemma 3),
    so the check costs O(log z) once the mismatching positions are known; a
    verifier that is handed the pattern letters simply scans them but only
    touches probabilities at mismatching positions.
    """

    def __init__(self, source: WeightedString, heavy: HeavyString | None = None) -> None:
        self._source = source
        self._heavy = heavy if heavy is not None else HeavyString(source)

    @property
    def heavy(self) -> HeavyString:
        """The heavy string used for the prefix products."""
        return self._heavy

    def occurrence_probability(self, pattern: Sequence[int], position: int) -> float:
        """Occurrence probability computed through the heavy decomposition."""
        m = len(pattern)
        if position < 0 or position + m > len(self._source):
            return 0.0
        log_probability = self._heavy.log_range_product(position, position + m)
        heavy_codes = self._heavy.codes
        for offset, code in enumerate(pattern):
            at = position + offset
            if code != heavy_codes[at]:
                letter_probability = self._source.probability(at, code)
                if letter_probability <= 0.0:
                    return 0.0
                log_probability += math.log(letter_probability) - math.log(
                    float(self._heavy.probabilities[at])
                )
        return math.exp(log_probability)

    def occurrence_log_probabilities(
        self, pattern: Sequence[int], positions
    ) -> np.ndarray:
        """Batched log occurrence probabilities via the heavy decomposition.

        The heavy log-prefix cache gives the base product of every candidate
        window with one subtraction; the per-position corrections (pattern
        letter ≠ heavy letter) are applied with masked array ops.  Candidates
        that overhang the string get ``-inf``.
        """
        codes = np.asarray(pattern, dtype=np.int64)
        starts = np.asarray(positions, dtype=np.int64)
        m = len(codes)
        out = np.full(len(starts), -np.inf, dtype=np.float64)
        if m == 0:
            out[(starts >= 0) & (starts <= len(self._source))] = 0.0
            return out
        in_range = (starts >= 0) & (starts + m <= len(self._source))
        if not in_range.any():
            return out
        valid_starts = starts[in_range]
        windows = valid_starts[:, None] + np.arange(m, dtype=np.int64)[None, :]
        base = self._heavy.log_range_products(valid_starts, valid_starts + m)
        mismatched = self._heavy.codes[windows] != codes[None, :]
        letter_logs = self._source.log_matrix[windows, codes[None, :]]
        corrections = np.where(
            mismatched, letter_logs - self._heavy.log_probabilities[windows], 0.0
        ).sum(axis=1)
        out[in_range] = base + corrections
        return out

    def is_valid(self, pattern: Sequence[int], position: int, z: float) -> bool:
        """Whether the candidate occurrence is z-valid."""
        z = validate_threshold(z)
        probability = self.occurrence_probability(pattern, position)
        return probability * z >= 1.0 - RELATIVE_TOLERANCE * max(1.0, probability * z)

    def valid_mask(self, pattern: Sequence[int], positions, z: float) -> np.ndarray:
        """Boolean mask of z-valid candidates (batched :meth:`is_valid`)."""
        z = validate_threshold(z)
        probabilities = np.exp(self.occurrence_log_probabilities(pattern, positions))
        return solid_probability_mask(probabilities, z)
