"""WST — the weighted suffix tree baseline (state of the art, tree flavour).

The weighted suffix tree is the compacted trie of the property suffixes of
the z-estimation; it supports O(m + |Occ|) queries but occupies Θ(nz) tree
nodes, which is what makes it impractical for large inputs (the paper's
motivating observation).  Our implementation materialises the explicit node
structure on top of the generalised suffix array so that its size behaves
like a pointer-based suffix tree.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.weighted_string import WeightedString
from ..strings.trie import CompactedTrie
from .base import UncertainStringIndex
from .property_structures import PropertySuffixStructure
from .space import DEFAULT_SPACE_MODEL, ConstructionTracker, IndexStats, SpaceModel

__all__ = ["WeightedSuffixTree"]


class _SuffixLetterAccessor:
    """Letter accessor over the concatenated suffix text.

    A named class (rather than a closure) so built trees can cross process
    boundaries — the sharded builder ships finished indexes back from its
    worker processes by pickling them.
    """

    __slots__ = ("text", "sa")

    def __init__(self, text, sa) -> None:
        self.text = text
        self.sa = sa

    def __call__(self, key: int, depth: int) -> int:
        return int(self.text[self.sa[key] + depth])

    def bulk(self, keys: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Vectorised twin over parallel key/depth arrays."""
        keys = np.asarray(keys, dtype=np.int64)
        depths = np.asarray(depths, dtype=np.int64)
        return np.asarray(self.text, dtype=np.int64)[np.asarray(self.sa)[keys] + depths]


class WeightedSuffixTree(UncertainStringIndex):
    """The WST baseline: property suffix tree over the z-estimation."""

    name = "WST"

    def __init__(
        self,
        source: WeightedString,
        z: float,
        structure: PropertySuffixStructure,
        trie: CompactedTrie,
        stats: IndexStats,
    ) -> None:
        super().__init__(source, z)
        self._structure = structure
        self._trie = trie
        self._stats = stats

    # -- construction ---------------------------------------------------------------
    @classmethod
    def build(
        cls,
        source: WeightedString,
        z: float,
        *,
        estimation: ZEstimation | None = None,
        space_model: SpaceModel = DEFAULT_SPACE_MODEL,
        method: str = "vectorized",
    ) -> "WeightedSuffixTree":
        """Build the WST for ``source`` and threshold ``1/z``."""
        started = time.perf_counter()
        tracker = ConstructionTracker()
        # The input probability matrix is resident during every construction.
        tracker.allocate(space_model.probabilities(len(source) * source.sigma))
        if estimation is None:
            estimation = build_z_estimation(source, z, method=method)
        estimation_cost = space_model.codes(
            estimation.width * estimation.length
        ) + space_model.words(estimation.width * estimation.length)
        tracker.allocate(estimation_cost)
        structure = PropertySuffixStructure(estimation, with_lcp=True)
        entries = structure.entry_count
        tracker.allocate(space_model.codes(entries) + space_model.words(4 * entries))
        text = structure.text
        sa = structure.sa
        lengths = len(text) - sa
        accessor = _SuffixLetterAccessor(text, sa)
        trie = CompactedTrie(lengths, structure.lcp, accessor, bulk_letter=accessor.bulk)
        tracker.allocate(space_model.tree_nodes(trie.node_count))
        stats = IndexStats(
            name=cls.name,
            index_size_bytes=cls._index_size(structure, trie, space_model),
            construction_space_bytes=tracker.peak_bytes,
            construction_seconds=time.perf_counter() - started,
            counters={
                "entries": entries,
                "nodes": trie.node_count,
            },
        )
        return cls(source, z, structure, trie, stats)

    @staticmethod
    def _index_size(
        structure: PropertySuffixStructure, trie: CompactedTrie, model: SpaceModel
    ) -> int:
        entries = structure.entry_count
        # Explicit tree nodes with edge pointers, plus per-leaf position and
        # valid length, plus the report structure.
        return (
            model.tree_nodes(trie.node_count)
            + model.words(3 * entries)
            + model.codes(entries)
        )

    # -- queries -------------------------------------------------------------------------
    def _locate_codes(self, codes) -> list[int]:
        """Scalar strategy: one trie walk plus the output-sensitive report."""
        shifted = [int(code) + 1 for code in codes]
        lo, hi = self._trie.descend(shifted)
        reported = np.asarray(
            self._structure.report_valid(lo, hi, len(codes)), dtype=np.int64
        )
        return [int(position) for position in np.unique(reported)]

    @property
    def node_count(self) -> int:
        """Number of explicit suffix-tree nodes."""
        return self._trie.node_count

    @property
    def structure(self) -> PropertySuffixStructure:
        """The underlying property suffix structure (for inspection/storage)."""
        return self._structure
