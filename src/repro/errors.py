"""Exception hierarchy for the :mod:`repro` package.

Every error raised on a user-facing code path derives from
:class:`ReproError`, so applications embedding the library can catch a
single base class.  More specific subclasses signal which layer rejected
the input (the core model, an index, the IO layer, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class AlphabetError(ReproError):
    """A letter or code is not part of the alphabet in use."""


class WeightedStringError(ReproError, ValueError):
    """A weighted string (probability matrix) is malformed.

    Also a :class:`ValueError`: degenerate distributions (all-zero,
    negative, non-finite) are plain bad values, and callers validating
    update payloads commonly catch ``ValueError``.
    """


class InvalidThresholdError(ReproError):
    """The weight threshold ``1/z`` is outside the allowed range ``(0, 1]``."""


class PatternError(ReproError):
    """A query pattern is malformed or violates the index's constraints.

    The most common cause is querying an ``ℓ``-weighted index with a
    pattern shorter than the ``ℓ`` the index was built for.
    """


class QueryError(ReproError):
    """A query request is malformed or asks more than the index can answer.

    Raised for invalid mode/parameter combinations (``topk`` without ``k``)
    and for per-query threshold overrides looser than the threshold the
    index was built for (occurrences below ``1/z`` are not indexed).
    """


class ConstructionError(ReproError):
    """An index could not be constructed from the given inputs."""


class SerializationError(ReproError):
    """A file could not be parsed into (or written from) a library object."""


class StoreError(SerializationError):
    """Base class for errors raised by the on-disk index store layer."""


class StoreFormatError(StoreError):
    """A store file is not ours or speaks a format/version we cannot read.

    Raised for bad magic bytes, foreign ``format`` identifiers, unsupported
    versions and family mismatches — i.e. the file is structurally intact
    but not something this reader should try to interpret.
    """


class StoreCorruptionError(StoreError):
    """A store file is ours but damaged: truncated, torn or bit-flipped.

    Carries enough structure for tooling (``verify-store``/``recover``) to
    point at the damage: the file path, the failing section, and — when a
    checksum mismatch is the evidence — the byte offset plus expected and
    actual digests.
    """

    def __init__(
        self,
        path,
        section: str,
        message: str | None = None,
        *,
        offset: int | None = None,
        expected: str | None = None,
        actual: str | None = None,
    ) -> None:
        self.path = str(path)
        self.section = section
        self.offset = offset
        self.expected = expected
        self.actual = actual
        detail = message or "is corrupt"
        parts = [f"{self.path}: {section} {detail}"]
        if offset is not None:
            parts.append(f"at offset {offset}")
        if expected is not None or actual is not None:
            parts.append(f"(expected {expected}, actual {actual})")
        super().__init__(" ".join(parts))


class DatasetError(ReproError):
    """A synthetic dataset specification is invalid."""
