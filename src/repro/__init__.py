"""repro — space-efficient indexes for uncertain (weighted) strings.

A from-scratch reproduction of *"Space-Efficient Indexes for Uncertain
Strings"* (ICDE 2024): the character-level uncertainty data model, the
z-estimation transformation, the baseline weighted suffix tree / array
indexes (WST, WSA), and the paper's minimizer-based indexes
(MWST, MWSA, MWST-G, MWSA-G) together with the space-efficient
construction MWST-SE.

Quickstart
----------
>>> from repro import WeightedString, MinimizerWSA
>>> ws = WeightedString.from_dicts(
...     [{"A": 1.0}, {"A": 0.5, "B": 0.5}, {"A": 0.75, "B": 0.25},
...      {"A": 0.8, "B": 0.2}, {"A": 0.5, "B": 0.5}, {"A": 0.25, "B": 0.75}]
... )
>>> index = MinimizerWSA.build(ws, z=4, ell=4)
>>> index.locate("AAAA")
[0]
"""

from .core import (
    DNA,
    PROTEIN,
    Alphabet,
    HeavyString,
    PropertyArray,
    SolidFactor,
    WeightedString,
    ZEstimation,
    build_z_estimation,
)
from .version import __version__

__all__ = [
    "__version__",
    "Alphabet",
    "DNA",
    "PROTEIN",
    "WeightedString",
    "HeavyString",
    "PropertyArray",
    "SolidFactor",
    "ZEstimation",
    "build_z_estimation",
    # re-exported lazily from repro.indexes:
    "WeightedSuffixTree",
    "WeightedSuffixArray",
    "MinimizerWST",
    "MinimizerWSA",
    "GridMinimizerWST",
    "GridMinimizerWSA",
    "SpaceEfficientMWST",
    "ShardedIndex",
    "build_index",
]

_INDEX_EXPORTS = {
    "WeightedSuffixTree",
    "WeightedSuffixArray",
    "MinimizerWST",
    "MinimizerWSA",
    "GridMinimizerWST",
    "GridMinimizerWSA",
    "SpaceEfficientMWST",
    "ShardedIndex",
    "build_index",
    "brute_force_occurrences",
}


def __getattr__(name):
    """Lazily expose the index classes to keep ``import repro`` light."""
    if name in _INDEX_EXPORTS:
        from . import indexes

        return getattr(indexes, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
