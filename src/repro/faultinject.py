"""Deterministic fault injection for crash-consistency testing.

Durability-critical code paths (container saves, shard refreshes, WAL
appends, compaction) call :func:`failpoint` at every write/rename/fsync
boundary.  In production the calls are near-free no-ops; under test the
``REPRO_FAILPOINTS`` environment variable arms specific points::

    REPRO_FAILPOINTS="store.container.fsynced=kill,store.wal.appended=error"

Supported actions:

``kill``
    ``os.kill(os.getpid(), SIGKILL)`` — simulates a crash at exactly this
    point.  Bytes already written to the OS survive (the kernel keeps
    them), bytes not yet written are lost, which is precisely the torn
    state recovery must handle.
``error``
    Raise :class:`InjectedFault` (an ``OSError``) every time the point is
    hit — simulates a persistently failing disk for degraded-mode tests.
``error-once``
    Raise :class:`InjectedFault` the first time only, then pass.

Failpoint names form a closed registry: hitting or arming an unknown name
raises immediately, so a typo in a test cannot silently disarm coverage.
"""

from __future__ import annotations

import os
import signal

_ENV_VAR = "REPRO_FAILPOINTS"

#: Every failpoint threaded through the store layer.  Tests iterate this
#: tuple to sweep kill-points; keep it in sync with the ``failpoint()``
#: call sites in :mod:`repro.io.store`.
FAILPOINTS: tuple[str, ...] = (
    # Monolithic container save (tmp write → fsync → rename).
    "store.container.tmp_written",
    "store.container.fsynced",
    "store.container.replaced",
    # Sharded-store manifest save.
    "store.manifest.tmp_written",
    "store.manifest.fsynced",
    "store.manifest.replaced",
    # Write-ahead log append.
    "store.wal.appended",
    "store.wal.fsynced",
    # Sharded refresh (shard rewrites, then the manifest swap).
    "store.refresh.shard_written",
    "store.refresh.manifest_written",
    # Compaction (canonical rewrites, manifest swap, obsolete unlinks).
    "store.compact.shard_written",
    "store.compact.manifest_written",
    "store.compact.unlink",
)

_REGISTRY = frozenset(FAILPOINTS)

_ACTIONS = ("kill", "error", "error-once")


class InjectedFault(OSError):
    """The artificial I/O failure raised by an ``error`` failpoint."""


_armed: dict[str, str] | None = None
_tripped: set[str] = set()


def _parse(spec: str) -> dict[str, str]:
    armed: dict[str, str] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, action = entry.partition("=")
        name = name.strip()
        action = action.strip() or "kill"
        if name not in _REGISTRY:
            raise ValueError(f"unknown failpoint {name!r} in {_ENV_VAR}")
        if action not in _ACTIONS:
            raise ValueError(f"unknown failpoint action {action!r} for {name}")
        armed[name] = action
    return armed


def _load() -> dict[str, str]:
    global _armed
    if _armed is None:
        _armed = _parse(os.environ.get(_ENV_VAR, ""))
    return _armed


def configure(spec: str | None) -> None:
    """Arm failpoints in-process (tests); ``None`` or ``""`` disarms all."""
    global _armed
    _armed = _parse(spec) if spec else {}
    _tripped.clear()


def clear() -> None:
    """Disarm every failpoint and forget ``error-once`` state."""
    configure(None)


def registered_failpoints() -> tuple[str, ...]:
    """The closed registry of failpoint names, for sweep-style tests."""
    return FAILPOINTS


def failpoint(name: str) -> None:
    """Trigger ``name`` if armed.  No-op (one dict lookup) otherwise."""
    armed = _load()
    if name not in armed:
        if name not in _REGISTRY:
            raise RuntimeError(f"failpoint {name!r} is not registered")
        return
    action = armed[name]
    if action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "error-once":
        if name in _tripped:
            return
        _tripped.add(name)
        raise InjectedFault(f"injected fault at {name}")
    else:
        raise InjectedFault(f"injected fault at {name}")
