"""Run metadata stamped onto every benchmark result JSON.

Benchmark trajectories (``BENCH_*.json``) are only comparable across
machines and commits when every result records where it came from.
:func:`run_metadata` gathers the identifying facts — git commit, Python and
NumPy versions, platform and core count — and is wired into

* the pytest-benchmark ``machine_info`` of every ``pytest benchmarks/`` run
  (see ``benchmarks/conftest.py``), and
* the ``--json`` output of ``python -m repro.bench`` and of the standalone
  benchmark runners.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from .._kernels import engine
from ..version import __version__
from .measure import peak_rss_bytes

__all__ = ["run_metadata"]


def _git_sha() -> str | None:
    """The checked-out commit, or ``None`` outside a git checkout."""
    try:
        output = subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            stderr=subprocess.DEVNULL,
            timeout=5,
        )
        return output.decode("ascii").strip()
    except Exception:
        return None


def run_metadata() -> dict:
    """Identifying facts of this benchmark run (JSON-ready)."""
    return {
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": _git_sha(),
        "repro_version": __version__,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": np.__version__,
        # Which kernel engine served the scalar loops: "numba" when the
        # optional compiled layer is active, "python" for the fallback.
        "engine": engine(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        # Process RSS high-water mark at stamping time: downstream reports
        # (Figs. 8–9 / 13–14 space plots) read measured peaks from the run
        # metadata and the per-build rows instead of ad-hoc accounting.
        "peak_rss_bytes": peak_rss_bytes(),
    }
