"""The experiment harness: scales, shared builds and sweep execution.

Every figure of the paper's Section 7 is a sweep of one parameter (ℓ, z, σ
or n) over a set of indexes on a dataset, reporting one of the four
efficiency measures.  :class:`BenchScale` centralises the sweep values so
the same experiment code runs at three sizes:

* ``tiny``  — seconds; used by ``pytest benchmarks/`` in CI;
* ``small`` — minutes; the default of ``examples/reproduce_paper.py``;
* ``paper`` — the paper's parameter values (requires the full-length
  datasets and a lot of patience in pure Python).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.weighted_string import WeightedString
from ..datasets.patterns import sample_valid_patterns
from ..datasets.registry import load_dataset
from ..indexes import ConstructionPipeline, get_spec
from ..sampling.minimizers import MinimizerScheme
from .measure import BuildMeasurement, measure_build, measure_query_time

__all__ = ["BenchScale", "SCALES", "build_index_suite", "query_workload", "sweep_rows"]

#: All index names, in the order the paper's figures list them.
TREE_KINDS = ("WST", "MWST", "MWST-G")
ARRAY_KINDS = ("WSA", "MWSA", "MWSA-G")
SE_KINDS = ("WST", "MWST", "WSA", "MWSA", "MWST-SE")


@dataclass
class BenchScale:
    """Sweep values for one run of the experiment suite."""

    name: str
    dataset_lengths: dict = field(default_factory=dict)
    ell_values: tuple = (8, 16, 32)
    z_values: dict = field(default_factory=dict)
    default_ell: int = 16
    pattern_count: int = 10
    rssi_sigma_values: tuple = (16, 32, 64, 91)
    rssi_length_factors: tuple = (1, 2)
    #: Synthetic input length and sweep values of the shard-scaling experiment.
    shard_length: int = 2_000
    shard_counts: tuple = (1, 2, 4)
    shard_workers: tuple = (1, 2)
    #: Serving-mix experiment: request count, hot-pattern pool size and the
    #: Zipf skew exponent of the request stream.
    serve_request_count: int = 600
    serve_unique_patterns: int = 60
    serve_zipf_s: float = 1.2

    def dataset(self, name: str, *, seed: int | None = None) -> WeightedString:
        """Load a dataset at this scale."""
        return load_dataset(name, self.dataset_lengths.get(name), seed=seed)

    def zs(self, dataset: str) -> tuple:
        """The z sweep of one dataset at this scale."""
        return self.z_values.get(dataset, (4, 8, 16))

    def default_z(self, dataset: str) -> float:
        """The default z of one dataset at this scale (middle of its sweep)."""
        values = self.zs(dataset)
        return values[len(values) // 2]


SCALES: dict[str, BenchScale] = {
    "tiny": BenchScale(
        name="tiny",
        dataset_lengths={"SARS": 2_000, "EFM": 2_000, "HUMAN": 2_000, "RSSI": 1_200},
        ell_values=(8, 16, 32),
        z_values={
            "SARS": (4, 8, 16),
            "EFM": (4, 8, 16),
            "HUMAN": (2, 4, 8),
            "RSSI": (2, 4, 8),
        },
        default_ell=16,
        pattern_count=8,
        rssi_sigma_values=(16, 32, 64, 91),
        rssi_length_factors=(1, 2),
        shard_length=2_000,
        shard_counts=(1, 2, 4),
        shard_workers=(1, 2),
        serve_request_count=600,
        serve_unique_patterns=60,
    ),
    "small": BenchScale(
        name="small",
        dataset_lengths={"SARS": 12_000, "EFM": 12_000, "HUMAN": 12_000, "RSSI": 6_000},
        ell_values=(16, 32, 64, 128),
        z_values={
            "SARS": (8, 16, 32, 64),
            "EFM": (8, 16, 32, 64),
            "HUMAN": (2, 4, 8, 16),
            "RSSI": (4, 8, 16, 32),
        },
        default_ell=32,
        pattern_count=20,
        rssi_sigma_values=(16, 32, 64, 91),
        rssi_length_factors=(1, 2, 4),
        shard_length=20_000,
        shard_counts=(1, 2, 4, 8),
        shard_workers=(1, 4),
        serve_request_count=5_000,
        serve_unique_patterns=200,
    ),
    "paper": BenchScale(
        name="paper",
        dataset_lengths={
            "SARS": 29_903,
            "EFM": 2_955_294,
            "HUMAN": 35_194_566,
            "RSSI": 6_053_462,
        },
        ell_values=(64, 128, 256, 512, 1024),
        z_values={
            "SARS": (64, 128, 256, 512, 1024),
            "EFM": (8, 16, 32, 64, 128),
            "HUMAN": (2, 4, 8, 16, 32),
            "RSSI": (4, 8, 16, 32, 64),
        },
        default_ell=256,
        pattern_count=200,
        rssi_sigma_values=(16, 32, 64, 91),
        rssi_length_factors=(1, 2, 4, 6, 8),
        shard_length=200_000,
        shard_counts=(1, 2, 4, 8, 16),
        shard_workers=(1, 4, 8),
        serve_request_count=50_000,
        serve_unique_patterns=1_000,
    ),
}


def build_index_suite(
    source: WeightedString,
    z: float,
    ell: int,
    kinds,
    *,
    scheme: MinimizerScheme | None = None,
    trace_memory: bool = False,
) -> dict[str, BuildMeasurement]:
    """Build a set of index kinds on one input, sharing what can be shared.

    Construction goes through the staged
    :class:`~repro.indexes.registry.ConstructionPipeline`: the z-estimation
    is shared between the baselines and the explicit minimizer constructions
    (so their query answers are computed on identical samples) and the
    minimizer index data is shared between the MWST/MWSA/-G variants.  The
    shared stages are warmed *before* the per-variant timers start, so each
    measurement covers only that variant's assembly — matching how the paper
    reports per-index construction cost.  MWST-SE always rebuilds from
    scratch — not sharing is precisely its point.
    """
    if scheme is None:
        scheme = MinimizerScheme(ell, source.sigma)
    pipeline = ConstructionPipeline(source, z, ell=ell, scheme=scheme)
    specs = [get_spec(kind) for kind in kinds]
    if any(spec.shares_estimation for spec in specs):
        pipeline.estimation()
    if any(spec.shares_data for spec in specs):
        pipeline.index_data()
    measurements = {}
    for kind in kinds:
        measurements[kind] = measure_build(
            lambda kind=kind: pipeline.build(kind), kind, trace_memory=trace_memory
        )
    return measurements


def query_workload(
    source: WeightedString,
    z: float,
    m: int,
    count: int,
    *,
    seed: int | None = 0,
) -> list[list[int]]:
    """The paper's query workload: valid patterns sampled from the z-estimation."""
    return sample_valid_patterns(source, z, m, count, seed=seed)


def sweep_rows(
    measurements: dict[str, BuildMeasurement],
    parameters: dict,
    *,
    patterns=None,
) -> list[dict]:
    """Flatten one sweep point into report rows (one row per index)."""
    rows = []
    for name, measurement in measurements.items():
        row = dict(parameters)
        row.update(measurement.as_row())
        if patterns is not None:
            row["avg_query_us"] = measure_query_time(measurement.index, patterns)
        rows.append(row)
    return rows
