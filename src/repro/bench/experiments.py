"""One experiment per table/figure of the paper's evaluation (Section 7).

Every function returns an :class:`ExperimentResult` whose ``rows`` are flat
dictionaries (one per data point) and whose ``text`` renders the same series
the paper plots.  The sweep values come from a :class:`BenchScale`, so the
same code runs in CI (``tiny``), on a laptop (``small``) or at the paper's
parameters (``paper``).

Expected qualitative outcomes (checked against the paper in
``EXPERIMENTS.md``): the minimizer indexes are 1–2 orders of magnitude
smaller than WST/WSA and shrink as ℓ grows; arrays beat trees; MWST-SE needs
by far the least construction space; MWSA queries are competitive with WSA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.estimation import build_z_estimation
from ..datasets.registry import DATASETS, dataset_characteristics
from ..datasets.rssi import rssi_family, rssi_like
from ..indexes.space import DEFAULT_SPACE_MODEL
from .harness import ARRAY_KINDS, SCALES, SE_KINDS, TREE_KINDS, BenchScale, build_index_suite, query_workload, sweep_rows
from .measure import timed
from .report import format_series, format_table

__all__ = [
    "ExperimentResult",
    "table2",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "shardscale",
    "servemix",
    "ALL_EXPERIMENTS",
    "run_all",
]

GENOMIC_DATASETS = ("SARS", "EFM", "HUMAN")
SPACE_DATASETS = ("EFM", "HUMAN")


@dataclass
class ExperimentResult:
    """Rows and rendered text of one reproduced table/figure."""

    experiment: str
    description: str
    rows: list = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def _resolve_scale(scale) -> BenchScale:
    if isinstance(scale, BenchScale):
        return scale
    return SCALES[scale]


def _series_text(title: str, rows, x_column: str, value_column: str) -> str:
    blocks = []
    datasets = []
    for row in rows:
        if row["dataset"] not in datasets:
            datasets.append(row["dataset"])
    for dataset in datasets:
        subset = [row for row in rows if row["dataset"] == dataset]
        blocks.append(
            format_series(
                f"{title} — {dataset}", subset, x_column, "index", value_column
            )
        )
    return "\n".join(blocks)


def _sweep(
    scale: BenchScale,
    datasets,
    kinds,
    *,
    vary: str,
    value_column: str,
    with_queries: bool = False,
    trace_memory: bool = False,
    title: str,
    experiment: str,
    description: str,
) -> ExperimentResult:
    """Shared ℓ-sweep / z-sweep runner behind most figures.

    ``trace_memory`` runs every build under the harness's peak-memory
    tracking (tracemalloc + RSS high-water mark), so the space figures
    report measured peaks next to the space-model accounting.
    """
    rows = []
    for dataset_name in datasets:
        source = scale.dataset(dataset_name)
        if vary == "ell":
            sweep_values = scale.ell_values
        else:
            sweep_values = scale.zs(dataset_name)
        for value in sweep_values:
            ell = value if vary == "ell" else scale.default_ell
            z = scale.default_z(dataset_name) if vary == "ell" else value
            if ell > len(source):
                continue
            measurements = build_index_suite(
                source, z, ell, kinds, trace_memory=trace_memory
            )
            patterns = None
            if with_queries:
                patterns = query_workload(
                    source, z, m=ell, count=scale.pattern_count, seed=0
                )
            rows.extend(
                sweep_rows(
                    measurements,
                    {"dataset": dataset_name, "ell": ell, "z": z},
                    patterns=patterns,
                )
            )
    x_column = vary
    text = _series_text(title, rows, x_column, value_column)
    return ExperimentResult(experiment, description, rows, text)


# --------------------------------------------------------------------------- #
# Table 2                                                                      #
# --------------------------------------------------------------------------- #
def table2(scale="tiny") -> ExperimentResult:
    """Table 2: dataset characteristics and z-estimation sizes."""
    scale = _resolve_scale(scale)
    rows = []
    for name in DATASETS:
        characteristics = dataset_characteristics(
            name, scale.dataset_lengths.get(name)
        )
        source = scale.dataset(name)
        z = scale.default_z(name)
        estimation = build_z_estimation(source, z)
        model = DEFAULT_SPACE_MODEL
        estimation_mb = (
            model.codes(estimation.width * estimation.length)
            + model.words(estimation.width * estimation.length)
        ) / 1e6
        characteristics.update(
            {"bench_z": z, "z_estimation_mb": estimation_mb, "delta_percent": 100 * source.delta}
        )
        rows.append(characteristics)
    text = "Table 2 — dataset characteristics\n" + format_table(
        rows,
        ["name", "length", "paper_length", "sigma", "delta_percent", "bench_z", "z_estimation_mb"],
    )
    return ExperimentResult("table2", "Dataset characteristics", rows, text)


# --------------------------------------------------------------------------- #
# Index size (Figs. 6 and 7)                                                   #
# --------------------------------------------------------------------------- #
def fig06(scale="tiny") -> ExperimentResult:
    """Fig. 6: index size (MB) vs ℓ for the tree and array index families."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        GENOMIC_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="ell",
        value_column="index_size_mb",
        title="Fig. 6 — index size (MB) vs ell",
        experiment="fig06",
        description="Index size vs ell",
    )


def fig07(scale="tiny") -> ExperimentResult:
    """Fig. 7: index size (MB) vs z."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        GENOMIC_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="z",
        value_column="index_size_mb",
        title="Fig. 7 — index size (MB) vs z",
        experiment="fig07",
        description="Index size vs z",
    )


# --------------------------------------------------------------------------- #
# Construction space (Figs. 8 and 9)                                           #
# --------------------------------------------------------------------------- #
def fig08(scale="tiny") -> ExperimentResult:
    """Fig. 8: construction space (MB) vs ℓ."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        SPACE_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="ell",
        value_column="construction_space_mb",
        trace_memory=True,
        title="Fig. 8 — construction space (MB) vs ell",
        experiment="fig08",
        description="Construction space vs ell",
    )


def fig09(scale="tiny") -> ExperimentResult:
    """Fig. 9: construction space (MB) vs z."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        SPACE_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="z",
        value_column="construction_space_mb",
        trace_memory=True,
        title="Fig. 9 — construction space (MB) vs z",
        experiment="fig09",
        description="Construction space vs z",
    )


# --------------------------------------------------------------------------- #
# Query time (Figs. 10 and 11)                                                 #
# --------------------------------------------------------------------------- #
def fig10(scale="tiny") -> ExperimentResult:
    """Fig. 10: average query time (µs) vs ℓ (patterns of length m = ℓ)."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        GENOMIC_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="ell",
        value_column="avg_query_us",
        with_queries=True,
        title="Fig. 10 — average query time (us) vs ell",
        experiment="fig10",
        description="Query time vs ell",
    )


def fig11(scale="tiny") -> ExperimentResult:
    """Fig. 11: average query time (µs) vs z."""
    scale = _resolve_scale(scale)
    return _sweep(
        scale,
        GENOMIC_DATASETS,
        TREE_KINDS + ARRAY_KINDS,
        vary="z",
        value_column="avg_query_us",
        with_queries=True,
        title="Fig. 11 — average query time (us) vs z",
        experiment="fig11",
        description="Query time vs z",
    )


# --------------------------------------------------------------------------- #
# Construction time (Fig. 12)                                                  #
# --------------------------------------------------------------------------- #
def fig12(scale="tiny") -> ExperimentResult:
    """Fig. 12: construction time (s) vs ℓ and vs z (EFM)."""
    scale = _resolve_scale(scale)
    ell_part = _sweep(
        scale,
        ("EFM",),
        TREE_KINDS + ARRAY_KINDS,
        vary="ell",
        value_column="construction_seconds",
        title="Fig. 12(a,b) — construction time (s) vs ell",
        experiment="fig12",
        description="Construction time vs ell",
    )
    z_part = _sweep(
        scale,
        ("EFM",),
        TREE_KINDS + ARRAY_KINDS,
        vary="z",
        value_column="construction_seconds",
        title="Fig. 12(c,d) — construction time (s) vs z",
        experiment="fig12",
        description="Construction time vs z",
    )
    rows = ell_part.rows + z_part.rows
    text = ell_part.text + "\n" + z_part.text
    return ExperimentResult("fig12", "Construction time (EFM)", rows, text)


# --------------------------------------------------------------------------- #
# Space-efficient construction (Figs. 13 and 15)                               #
# --------------------------------------------------------------------------- #
def fig13(scale="tiny") -> ExperimentResult:
    """Fig. 13: construction space (MB) incl. MWST-SE vs ℓ and z."""
    scale = _resolve_scale(scale)
    ell_part = _sweep(
        scale,
        SPACE_DATASETS,
        SE_KINDS,
        vary="ell",
        value_column="construction_space_mb",
        trace_memory=True,
        title="Fig. 13(a,b) — construction space (MB) vs ell",
        experiment="fig13",
        description="SE construction space vs ell",
    )
    z_part = _sweep(
        scale,
        SPACE_DATASETS,
        SE_KINDS,
        vary="z",
        value_column="construction_space_mb",
        trace_memory=True,
        title="Fig. 13(c,d) — construction space (MB) vs z",
        experiment="fig13",
        description="SE construction space vs z",
    )
    rows = ell_part.rows + z_part.rows
    return ExperimentResult("fig13", "SE construction space", rows, ell_part.text + "\n" + z_part.text)


def fig15(scale="tiny") -> ExperimentResult:
    """Fig. 15: construction time (s) incl. MWST-SE vs ℓ and z."""
    scale = _resolve_scale(scale)
    ell_part = _sweep(
        scale,
        SPACE_DATASETS,
        SE_KINDS,
        vary="ell",
        value_column="construction_seconds",
        title="Fig. 15(a,b) — construction time (s) vs ell",
        experiment="fig15",
        description="SE construction time vs ell",
    )
    z_part = _sweep(
        scale,
        SPACE_DATASETS,
        SE_KINDS,
        vary="z",
        value_column="construction_seconds",
        title="Fig. 15(c,d) — construction time (s) vs z",
        experiment="fig15",
        description="SE construction time vs z",
    )
    rows = ell_part.rows + z_part.rows
    return ExperimentResult("fig15", "SE construction time", rows, ell_part.text + "\n" + z_part.text)


# --------------------------------------------------------------------------- #
# RSSI experiments (Figs. 14 and 16)                                           #
# --------------------------------------------------------------------------- #
def _rssi_sweep(scale: BenchScale, value_column: str, experiment: str, title: str) -> ExperimentResult:
    kinds = ("WSA", "MWST-SE")
    rows = []
    base_length = scale.dataset_lengths.get("RSSI", 1_200)
    base = rssi_like(base_length, seed=23)
    default_z = scale.default_z("RSSI")
    # (a) ell sweep and (b) z sweep on the base RSSI string.
    for ell in scale.ell_values:
        if ell > len(base):
            continue
        measurements = build_index_suite(base, default_z, ell, kinds)
        rows.extend(
            sweep_rows(
                measurements,
                {"dataset": "RSSI", "sweep": "ell", "ell": ell, "z": default_z,
                 "sigma": base.sigma, "n": len(base)},
            )
        )
    for z in scale.zs("RSSI"):
        measurements = build_index_suite(base, z, scale.default_ell, kinds)
        rows.extend(
            sweep_rows(
                measurements,
                {"dataset": "RSSI", "sweep": "z", "ell": scale.default_ell, "z": z,
                 "sigma": base.sigma, "n": len(base)},
            )
        )
    # (c) alphabet-size sweep (RSSI_{1,sigma}).
    for sigma in scale.rssi_sigma_values:
        variant = rssi_family(base, sigma=sigma if sigma != base.sigma else None)
        measurements = build_index_suite(variant, default_z, scale.default_ell, kinds)
        rows.extend(
            sweep_rows(
                measurements,
                {"dataset": "RSSI", "sweep": "sigma", "ell": scale.default_ell,
                 "z": default_z, "sigma": variant.sigma, "n": len(variant)},
            )
        )
    # (d) length sweep (RSSI_{n,32}).
    for factor in scale.rssi_length_factors:
        variant = rssi_family(base, sigma=32, length_factor=factor)
        measurements = build_index_suite(variant, default_z, scale.default_ell, kinds)
        rows.extend(
            sweep_rows(
                measurements,
                {"dataset": "RSSI", "sweep": "n", "ell": scale.default_ell,
                 "z": default_z, "sigma": variant.sigma, "n": len(variant)},
            )
        )
    blocks = []
    for sweep_name, x_column in (("ell", "ell"), ("z", "z"), ("sigma", "sigma"), ("n", "n")):
        subset = [row for row in rows if row["sweep"] == sweep_name]
        if subset:
            blocks.append(
                format_series(
                    f"{title} — vs {sweep_name}", subset, x_column, "index", value_column
                )
            )
    return ExperimentResult(experiment, title, rows, "\n".join(blocks))


def fig14(scale="tiny") -> ExperimentResult:
    """Fig. 14: construction space on RSSI vs ℓ, z, σ and n (WSA vs MWST-SE)."""
    return _rssi_sweep(
        _resolve_scale(scale),
        "construction_space_mb",
        "fig14",
        "Fig. 14 — RSSI construction space (MB)",
    )


def fig16(scale="tiny") -> ExperimentResult:
    """Fig. 16: construction time on RSSI vs ℓ, z, σ and n (WSA vs MWST-SE)."""
    return _rssi_sweep(
        _resolve_scale(scale),
        "construction_seconds",
        "fig16",
        "Fig. 16 — RSSI construction time (s)",
    )


# --------------------------------------------------------------------------- #
# Sharded construction and the index store (not a paper figure)                 #
# --------------------------------------------------------------------------- #
def shardscale(scale="tiny") -> ExperimentResult:
    """Build throughput vs shard count/workers, plus store save/load times.

    Not a paper figure: this experiment tracks the scaling behaviour of the
    sharded index architecture.  Every configuration builds the same
    synthetic sparse-uncertainty input; the single-shard serial build is the
    baseline every speedup column refers to.  The last rows measure the
    binary index store: saving the largest sharded build, reloading it
    (memory-mapped) and verifying the reloaded index answers a spot-check
    query batch identically.
    """
    import os
    import tempfile

    from ..datasets.synthetic import sparse_uncertainty_string
    from ..indexes import build_index
    from ..io.store import load_index, save_index

    scale = _resolve_scale(scale)
    z, ell, kind = 8.0, 16, "MWSA"
    source = sparse_uncertainty_string(scale.shard_length, 4, delta=0.1, seed=11)
    patterns = query_workload(source, z, m=ell, count=scale.pattern_count, seed=0)
    rows = []
    baseline_seconds = None
    built = None
    for shard_count in scale.shard_counts:
        for workers in scale.shard_workers:
            if workers > shard_count:
                continue
            index, seconds = timed(
                build_index,
                source,
                z,
                kind=kind,
                ell=ell,
                shards=shard_count,
                workers=workers,
            )
            if baseline_seconds is None:
                baseline_seconds = seconds
            built = index
            rows.append(
                {
                    "dataset": "SYN-SPARSE",
                    "n": len(source),
                    "index": kind,
                    "shards": shard_count,
                    "workers": workers,
                    "construction_seconds": seconds,
                    "positions_per_second": len(source) / seconds if seconds else None,
                    "speedup_vs_single": baseline_seconds / seconds if seconds else None,
                    "index_size_mb": index.stats.index_size_bytes / 1e6,
                }
            )
    store_rows = []
    if built is not None:
        handle, path = tempfile.mkstemp(suffix=".idx")
        os.close(handle)
        try:
            _, save_seconds = timed(save_index, path, built)
            loaded, load_seconds = timed(load_index, path)
            loaded_results, query_seconds = timed(loaded.match_many, patterns)
            store_rows.append(
                {
                    "dataset": "SYN-SPARSE",
                    "n": len(source),
                    "store_bytes": os.path.getsize(path),
                    "save_seconds": save_seconds,
                    "load_seconds": load_seconds,
                    "loaded_query_seconds": query_seconds,
                    "loaded_matches_built": loaded_results
                    == built.match_many(patterns),
                }
            )
        finally:
            os.unlink(path)
    text = "Shard scaling — build throughput\n" + format_table(
        rows,
        ["shards", "workers", "construction_seconds", "positions_per_second",
         "speedup_vs_single", "index_size_mb"],
    )
    if store_rows:
        text += "\nIndex store — save/load round trip\n" + format_table(
            store_rows,
            ["store_bytes", "save_seconds", "load_seconds",
             "loaded_query_seconds", "loaded_matches_built"],
        )
    return ExperimentResult(
        "shardscale", "Sharded build scaling and index store", rows + store_rows, text
    )


# --------------------------------------------------------------------------- #
# Serving mix through the cached QueryService (not a paper figure)              #
# --------------------------------------------------------------------------- #
def servemix(scale="tiny") -> ExperimentResult:
    """Skewed serving traffic through ``QueryService``, cache on vs off.

    Not a paper figure: this experiment tracks the serving layer.  A Zipf
    request stream (a few hot patterns dominating, the shape of production
    query traffic) is answered through a :class:`~repro.service.QueryService`
    twice — with the LRU result cache disabled and enabled — and the rows
    report throughput, hit rate and evictions.  The cached run must answer
    identically and, on any skewed mix, faster.
    """
    import time

    from ..datasets.patterns import (
        sample_random_patterns,
        sample_valid_patterns,
        sample_zipf_workload,
    )
    from ..datasets.synthetic import sparse_uncertainty_string
    from ..indexes import build_index
    from ..service import QueryService

    scale = _resolve_scale(scale)
    z, ell, kind = 8.0, 16, "MWSA"
    source = sparse_uncertainty_string(scale.shard_length, 4, delta=0.1, seed=11)
    index = build_index(source, z, kind=kind, ell=ell)
    pool_size = scale.serve_unique_patterns
    valid_count = (7 * pool_size) // 10
    pool = sample_valid_patterns(source, z, m=ell, count=valid_count, seed=1)
    pool += sample_random_patterns(source, m=ell, count=pool_size - valid_count, seed=2)
    requests = sample_zipf_workload(
        pool, scale.serve_request_count, s=scale.serve_zipf_s, seed=7
    )
    rows = []
    baseline_results = None
    for enabled in (False, True):
        service = QueryService(
            index, cache_size=2 * pool_size, cache_enabled=enabled
        )
        started = time.perf_counter()
        results = [service.query(pattern) for pattern in requests]
        elapsed = time.perf_counter() - started
        answers = [result.positions for result in results]
        if baseline_results is None:
            baseline_results = answers
        stats = service.stats()
        rows.append(
            {
                "dataset": "SYN-SPARSE",
                "n": len(source),
                "index": kind,
                "cache": "on" if enabled else "off",
                "requests": len(requests),
                "unique_patterns": pool_size,
                "zipf_s": scale.serve_zipf_s,
                "elapsed_seconds": elapsed,
                "queries_per_second": len(requests) / elapsed if elapsed else None,
                "hit_rate": stats["hit_rate"],
                "evictions": stats["evictions"],
                "matches_uncached": answers == baseline_results,
            }
        )
    text = "Serving mix — QueryService, Zipf traffic, cache off vs on\n" + format_table(
        rows,
        ["cache", "requests", "unique_patterns", "queries_per_second",
         "hit_rate", "evictions", "matches_uncached"],
    )
    return ExperimentResult(
        "servemix", "Cached serving throughput on a skewed pattern mix", rows, text
    )


#: All experiments in paper order.
ALL_EXPERIMENTS = {
    "table2": table2,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "shardscale": shardscale,
    "servemix": servemix,
}


def run_all(scale="tiny", experiments=None) -> list[ExperimentResult]:
    """Run (a subset of) the experiment suite and return the results."""
    names = list(experiments) if experiments else list(ALL_EXPERIMENTS)
    results = []
    for name in names:
        results.append(ALL_EXPERIMENTS[name](scale))
    return results
