"""Plain-text rendering of experiment results (the paper's figures as tables)."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "pivot", "format_series"]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render a list of dictionary rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max((len(row[i]) for row in cells), default=0))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    ruler = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(columns))) for row in cells
    )
    return "\n".join([header, ruler, body])


def pivot(
    rows: Sequence[dict],
    index_column: str,
    series_column: str,
    value_column: str,
) -> list[dict]:
    """Pivot rows into one row per ``index_column`` value, one column per series.

    This is the shape of the paper's figures: the x axis (ℓ or z) indexes the
    rows and each curve (index kind) becomes a column.
    """
    series_names: list = []
    grouped: dict = {}
    for row in rows:
        x = row[index_column]
        series = row[series_column]
        if series not in series_names:
            series_names.append(series)
        grouped.setdefault(x, {})[series] = row.get(value_column)
    result = []
    for x in sorted(grouped):
        entry = {index_column: x}
        for series in series_names:
            entry[series] = grouped[x].get(series)
        result.append(entry)
    return result


def format_series(
    title: str,
    rows: Sequence[dict],
    index_column: str,
    series_column: str,
    value_column: str,
) -> str:
    """Render a figure-like series table with a title line."""
    table = format_table(pivot(rows, index_column, series_column, value_column))
    return f"{title}\n{table}\n"
