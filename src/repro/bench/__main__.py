"""``python -m repro.bench`` — run the paper's experiment suite and print it.

``--json FILE`` additionally writes the raw result rows, stamped with the
run metadata (git sha, Python/NumPy versions, cpu count — see
:mod:`repro.bench.metadata`), so result files from different machines and
commits stay comparable.
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments import ALL_EXPERIMENTS, run_all
from .harness import SCALES
from .metadata import run_metadata


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="sweep sizes: tiny (seconds), small (minutes), paper (full parameters)",
    )
    parser.add_argument(
        "--experiments",
        nargs="*",
        choices=sorted(ALL_EXPERIMENTS),
        help="subset of experiments to run (default: all)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the result rows (with run metadata) to this JSON file",
    )
    arguments = parser.parse_args(argv)
    results = run_all(arguments.scale, arguments.experiments)
    for result in results:
        print("=" * 78)
        print(result.text)
    if arguments.json:
        payload = {
            "metadata": run_metadata(),
            "scale": arguments.scale,
            "results": [
                {
                    "experiment": result.experiment,
                    "description": result.description,
                    "rows": result.rows,
                }
                for result in results
            ],
        }
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=str)
        print(f"wrote {arguments.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
