"""``python -m repro.bench`` — run the paper's experiment suite and print it."""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS, run_all
from .harness import SCALES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the tables and figures of the paper's evaluation.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="sweep sizes: tiny (seconds), small (minutes), paper (full parameters)",
    )
    parser.add_argument(
        "--experiments",
        nargs="*",
        choices=sorted(ALL_EXPERIMENTS),
        help="subset of experiments to run (default: all)",
    )
    arguments = parser.parse_args(argv)
    results = run_all(arguments.scale, arguments.experiments)
    for result in results:
        print("=" * 78)
        print(result.text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
