"""Benchmark harness reproducing every table and figure of Section 7."""

from .experiments import ALL_EXPERIMENTS, ExperimentResult, run_all
from .harness import SCALES, BenchScale, build_index_suite, query_workload
from .measure import BuildMeasurement, measure_build, measure_query_time, timed
from .report import format_series, format_table, pivot

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "run_all",
    "SCALES",
    "BenchScale",
    "build_index_suite",
    "query_workload",
    "BuildMeasurement",
    "measure_build",
    "measure_query_time",
    "timed",
    "format_table",
    "format_series",
    "pivot",
]
