"""Measurement helpers: the four efficiency measures of the paper.

* index size        — the space model bytes reported by each index;
* construction space — the space model peak recorded at build time
                        (optionally cross-checked with ``tracemalloc``);
* construction time — wall-clock seconds of the build;
* query time        — average microseconds per pattern over a workload.
"""

from __future__ import annotations

import sys
import time
import tracemalloc
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = [
    "BuildMeasurement",
    "measure_build",
    "measure_query_time",
    "peak_rss_bytes",
    "smaps_rollup_bytes",
    "timed",
]


def peak_rss_bytes() -> int | None:
    """The process's resident-set high-water mark in bytes, if knowable.

    Prefers ``VmHWM`` from ``/proc/self/status`` (Linux), falls back to
    ``resource.getrusage`` (``ru_maxrss`` is KiB on Linux, bytes on macOS),
    and returns ``None`` on platforms exposing neither.  The value is a
    process-lifetime maximum — to attribute memory to one build, compare
    readings before and after, or run the build in a fresh process.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return int(usage) if sys.platform == "darwin" else int(usage) * 1024
    except (ImportError, ValueError, OSError):
        return None


#: ``smaps_rollup`` fields worth reporting, normalized to snake_case keys.
_SMAPS_FIELDS = {
    "Rss": "rss",
    "Pss": "pss",
    "Shared_Clean": "shared_clean",
    "Shared_Dirty": "shared_dirty",
    "Private_Clean": "private_clean",
    "Private_Dirty": "private_dirty",
}


def smaps_rollup_bytes(pid: int | str = "self") -> dict[str, int] | None:
    """Shared/private resident-memory accounting from ``/proc/<pid>/smaps_rollup``.

    Returns ``{rss, pss, shared_clean, shared_dirty, private_clean,
    private_dirty}`` in bytes, plus derived ``shared`` and ``private``
    totals, or ``None`` where the kernel does not expose the file (non-Linux,
    or a PID gone away).  This is how the multi-worker serving bench proves
    the memory-mapped index is *shared*: N workers over one store show the
    index pages as shared (counted once physically) while private bytes stay
    at roughly one Python heap per worker.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup", encoding="ascii") as handle:
            values: dict[str, int] = {}
            for line in handle:
                name, _, rest = line.partition(":")
                key = _SMAPS_FIELDS.get(name.strip())
                if key is not None:
                    values[key] = int(rest.split()[0]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    if not values:
        return None
    values["shared"] = values.get("shared_clean", 0) + values.get("shared_dirty", 0)
    values["private"] = values.get("private_clean", 0) + values.get("private_dirty", 0)
    return values


def timed(function: Callable, *args, **kwargs):
    """Run a callable and return ``(result, seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started


@dataclass
class BuildMeasurement:
    """Everything measured while building one index."""

    index: object
    name: str
    seconds: float
    index_size_bytes: int
    construction_space_bytes: int
    tracemalloc_peak_bytes: int | None = None
    #: How much this build raised the process RSS high-water mark (``VmHWM``
    #: is a process-lifetime maximum, so only the delta is attributable to
    #: one build; 0 means an earlier allocation already peaked higher).
    rss_peak_delta_bytes: int | None = None

    def as_row(self) -> dict:
        """Flat dictionary row used by the reports."""
        row = {
            "index": self.name,
            "construction_seconds": self.seconds,
            "index_size_mb": self.index_size_bytes / 1e6,
            "construction_space_mb": self.construction_space_bytes / 1e6,
        }
        if self.tracemalloc_peak_bytes is not None:
            row["tracemalloc_peak_mb"] = self.tracemalloc_peak_bytes / 1e6
        if self.rss_peak_delta_bytes is not None:
            row["rss_peak_delta_mb"] = self.rss_peak_delta_bytes / 1e6
        return row


def measure_build(
    builder: Callable[[], object],
    name: str,
    *,
    trace_memory: bool = False,
) -> BuildMeasurement:
    """Build one index and collect the paper's construction measures.

    ``builder`` is a zero-argument callable returning the built index; the
    index is expected to expose the :class:`repro.indexes.space.IndexStats`
    protocol through its ``stats`` attribute.  Each measurement records how
    much the build raised the process RSS high-water mark (the mark itself
    is a process-lifetime maximum, so only the before/after delta is
    attributable to one build; ``None`` when the platform exposes no RSS);
    ``trace_memory`` additionally runs the build under ``tracemalloc`` for
    exact per-build Python-side peaks — the measured companions of the
    space-model accounting behind Figs. 8–9 and 13–14.
    """
    rss_before = peak_rss_bytes()
    if trace_memory:
        tracemalloc.start()
    started = time.perf_counter()
    index = builder()
    seconds = time.perf_counter() - started
    peak = None
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    rss_after = peak_rss_bytes()
    rss_delta = (
        max(0, rss_after - rss_before)
        if rss_before is not None and rss_after is not None
        else None
    )
    stats = getattr(index, "stats", None)
    index_size = getattr(stats, "index_size_bytes", 0)
    construction_space = getattr(stats, "construction_space_bytes", 0)
    return BuildMeasurement(
        index=index,
        name=name,
        seconds=seconds,
        index_size_bytes=index_size,
        construction_space_bytes=construction_space,
        tracemalloc_peak_bytes=peak,
        rss_peak_delta_bytes=rss_delta,
    )


def measure_query_time(index, patterns: Sequence, *, repeats: int = 1) -> float:
    """Average query time in microseconds over a pattern workload."""
    if not patterns:
        return 0.0
    total = 0.0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for pattern in patterns:
            index.locate(pattern)
        total += time.perf_counter() - started
    queries = len(patterns) * max(1, repeats)
    return 1e6 * total / queries
