"""Measurement helpers: the four efficiency measures of the paper.

* index size        — the space model bytes reported by each index;
* construction space — the space model peak recorded at build time
                        (optionally cross-checked with ``tracemalloc``);
* construction time — wall-clock seconds of the build;
* query time        — average microseconds per pattern over a workload.
"""

from __future__ import annotations

import time
import tracemalloc
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["BuildMeasurement", "measure_build", "measure_query_time", "timed"]


def timed(function: Callable, *args, **kwargs):
    """Run a callable and return ``(result, seconds)``."""
    started = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - started


@dataclass
class BuildMeasurement:
    """Everything measured while building one index."""

    index: object
    name: str
    seconds: float
    index_size_bytes: int
    construction_space_bytes: int
    tracemalloc_peak_bytes: int | None = None

    def as_row(self) -> dict:
        """Flat dictionary row used by the reports."""
        row = {
            "index": self.name,
            "construction_seconds": self.seconds,
            "index_size_mb": self.index_size_bytes / 1e6,
            "construction_space_mb": self.construction_space_bytes / 1e6,
        }
        if self.tracemalloc_peak_bytes is not None:
            row["tracemalloc_peak_mb"] = self.tracemalloc_peak_bytes / 1e6
        return row


def measure_build(
    builder: Callable[[], object],
    name: str,
    *,
    trace_memory: bool = False,
) -> BuildMeasurement:
    """Build one index and collect the paper's construction measures.

    ``builder`` is a zero-argument callable returning the built index; the
    index is expected to expose the :class:`repro.indexes.space.IndexStats`
    protocol through its ``stats`` attribute.
    """
    if trace_memory:
        tracemalloc.start()
    started = time.perf_counter()
    index = builder()
    seconds = time.perf_counter() - started
    peak = None
    if trace_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    stats = getattr(index, "stats", None)
    index_size = getattr(stats, "index_size_bytes", 0)
    construction_space = getattr(stats, "construction_space_bytes", 0)
    return BuildMeasurement(
        index=index,
        name=name,
        seconds=seconds,
        index_size_bytes=index_size,
        construction_space_bytes=construction_space,
        tracemalloc_peak_bytes=peak,
    )


def measure_query_time(index, patterns: Sequence, *, repeats: int = 1) -> float:
    """Average query time in microseconds over a pattern workload."""
    if not patterns:
        return 0.0
    total = 0.0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for pattern in patterns:
            index.locate(pattern)
        total += time.perf_counter() - started
    queries = len(patterns) * max(1, repeats)
    return 1e6 * total / queries
