"""Prefork multi-worker HTTP serving over one shared memory-mapped store.

The space story of the whole project — indexes a few times the input size —
would be thrown away by naively running N copies of the server: each would
hold its own arrays.  This module keeps the paper's space win at production
concurrency with the classic prefork architecture:

* the **supervisor** binds the listen socket once, loads the authoritative
  index from the store (memory-mapped), and forks N **workers**;
* each worker ``load_index(..., mmap=True)``-s the *same* store files — the
  kernel page cache holds one physical copy of every array, so per-worker
  RSS grows by roughly a Python heap, not an index;
* workers accept directly from the inherited listening socket (shared
  accept; the kernel load-balances), so the port is bound exactly once and
  survives any worker's death;
* a per-worker ``socketpair`` **control channel** (newline-delimited JSON)
  carries everything that must be coordinated: readiness, graceful drain,
  crash respawn bookkeeping, metrics aggregation, and the write path.

**Write path.**  ``POST /update`` hitting any worker is forwarded over the
control channel.  The supervisor serializes updates, applies each batch to
its authoritative index, persists the new state *under new file names*
(generation-stamped shard files via
:func:`~repro.io.store.refresh_sharded_store`, or a ``.gN`` sibling for
single-file stores — never truncating a file a live worker still maps), and
broadcasts a ``reload``.  Workers re-map only what moved
(:func:`~repro.io.store.reload_sharded_store`) and invalidate their caches
exactly (:meth:`~repro.service.QueryService.adopt_index`).  The requester's
HTTP response is released only after *every* worker acknowledged, so a query
issued after the update returns can never be served a previous generation.
Superseded files are unlinked once all acks are in.

**Failure model.**  ``SIGCHLD`` reaps dead workers and respawns them from
the current store (the socket stays bound; siblings are untouched).
``SIGTERM``/``SIGINT`` — including during the initial store load — broadcast
a drain, wait for workers to flush in-flight batches, and exit 0.

The supervisor itself is synchronous (``selectors`` loop, no asyncio): it
serves no HTTP, and a blocking loop makes the signal/fork handling plain.
Workers run the ordinary :class:`~repro.service.server.HttpServer` on their
own event loop with a small cluster adapter wired into the update, metrics
and stats routes.
"""

from __future__ import annotations

import asyncio
import errno
import json
import os
import random
import selectors
import signal
import socket
import sys
import time
from pathlib import Path

from ..errors import ReproError, SerializationError
from ..bench.measure import peak_rss_bytes, smaps_rollup_bytes
from .metrics import render_cluster_stats
from .query_service import QueryService

__all__ = ["Supervisor"]

#: Errors an update payload can legitimately raise (answered as HTTP 400).
_UPDATE_ERRORS = (ReproError, TypeError, ValueError, KeyError, OverflowError)

#: Errors that mean the *store* failed, not the payload: the supervisor
#: rolls back to the last committed generation and serves degraded.
_PERSIST_ERRORS = (OSError, SerializationError)

#: Safety valve: stop respawning after this many worker deaths (a worker
#: that dies instantly in a loop would otherwise fork-bomb the box).
DEFAULT_RESPAWN_LIMIT = 64

#: A worker death within this many seconds of its spawn counts as a fast
#: death; consecutive fast deaths back off exponentially (with jitter)
#: instead of respawning in a tight fork loop.
_FAST_DEATH_SECONDS = 5.0
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_MAX_SECONDS = 5.0


def _load_store(path, *, mmap: bool = True):
    """Load a single-file or directory (sharded) store."""
    from ..io.store import load_index, load_sharded_store

    path = Path(path)
    if path.is_dir():
        return load_sharded_store(path, mmap=mmap)
    return load_index(path, mmap=mmap)


def _store_bytes(path) -> int:
    path = Path(path)
    if path.is_dir():
        return sum(f.stat().st_size for f in path.iterdir() if f.is_file())
    try:
        return path.stat().st_size
    except OSError:
        return 0


def _encode(message: dict) -> bytes:
    return json.dumps(message).encode("utf-8") + b"\n"


class _WorkerRecord:
    """Supervisor-side state of one worker: pid + buffered control channel."""

    __slots__ = ("number", "pid", "sock", "inbuf", "outbuf", "ready", "alive")

    def __init__(self, number: int, pid: int, sock: socket.socket) -> None:
        self.number = number
        self.pid = pid
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.ready = False
        self.alive = True


class Supervisor:
    """Fork N serving workers over one store and coordinate them.

    Parameters
    ----------
    store_path:
        A single-file index store or a sharded store directory.  Workers
        memory-map it; updates persist back to it (directory stores) or to
        generation-stamped siblings (single-file stores).
    workers:
        Number of worker processes to fork.
    host / port:
        The listen address; bound once, by the supervisor (``port=0`` picks
        a free port).
    service_options / server_options:
        Keyword arguments for each worker's :class:`QueryService` /
        :class:`HttpServer` (batching, quotas, tenant classes, ...).
    warm_patterns / warm_top:
        Optional query-log patterns each worker replays through
        :meth:`QueryService.warm` *before* accepting traffic.
    drain_timeout:
        Seconds to wait for workers to drain on shutdown before SIGKILL.
    ready:
        ``ready(host, port)`` callback fired once every initial worker is
        accepting (the CLI prints its "serving on" line through it).
    """

    def __init__(
        self,
        store_path,
        *,
        workers: int,
        host: str = "127.0.0.1",
        port: int = 0,
        service_options: dict | None = None,
        server_options: dict | None = None,
        warm_patterns=None,
        warm_top: int | None = None,
        drain_timeout: float = 10.0,
        respawn_limit: int = DEFAULT_RESPAWN_LIMIT,
        ready=None,
    ) -> None:
        if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
            raise ReproError("multi-worker serving needs os.fork (POSIX)")
        self._store_path = str(store_path)
        self._current_store = str(store_path)
        self._is_directory = Path(store_path).is_dir()
        self._workers = max(1, int(workers))
        self._host = host
        self._port = int(port)
        self._service_options = dict(service_options or {})
        self._server_options = dict(server_options or {})
        self._warm_patterns = list(warm_patterns or [])
        self._warm_top = warm_top
        self._drain_timeout = float(drain_timeout)
        self._respawn_limit = max(0, int(respawn_limit))
        self._ready = ready
        self._index = None
        self._listen: socket.socket | None = None
        self._selector: selectors.BaseSelector | None = None
        self._records: dict[int, _WorkerRecord] = {}  # pid -> record
        self._stopping = False
        self._drain_deadline: float | None = None
        self._announced = False
        self._got_sigchld = False
        self._wake_r = self._wake_w = -1
        self._generation = 0
        self._updates = 0
        self._respawns = 0
        self._degraded = False
        self._recovery: dict | None = None
        self._spawn_times: dict[int, float] = {}
        self._fast_deaths: dict[int, int] = {}
        self._pending_respawns: list[tuple[float, int]] = []
        self._collect_ids = 0
        self._collections: dict[int, dict] = {}
        self._update_queue: list[dict] = []
        self._active_update: dict | None = None
        self._generated_files: list[str] = []

    # -- lifecycle ---------------------------------------------------------------
    def run(self) -> int:
        """Load, bind, fork, and coordinate until shutdown.  Returns 0."""
        self._install_signals()
        try:
            if self._stopping:  # terminated before the load even started
                return 0
            if self._is_directory:
                # Crash recovery before serving: sweep temp files, truncate a
                # torn WAL tail, quarantine corrupt shards, roll committed
                # updates forward.  Single-file stores are written atomically
                # (old-or-new), so they need no repair pass.
                from ..io.store import recover_sharded_store

                _recovered, self._recovery = recover_sharded_store(self._store_path)
            if self._stopping:  # terminated during a long recovery
                return 0
            self._index = _load_store(self._store_path, mmap=True)
            if self._stopping:  # terminated during a long store load
                return 0
            self._listen = socket.create_server(
                (self._host, self._port), backlog=128, reuse_port=False
            )
            self._listen.set_inheritable(True)
            bound = self._listen.getsockname()
            self._host, self._port = bound[0], bound[1]
            self._selector = selectors.DefaultSelector()
            self._wake_r, self._wake_w = os.pipe()
            os.set_blocking(self._wake_r, False)
            os.set_blocking(self._wake_w, False)
            self._selector.register(self._wake_r, selectors.EVENT_READ, None)
            for number in range(self._workers):
                self._spawn(number)
            self._loop()
            return 0
        finally:
            self._cleanup()

    def _loop(self) -> None:
        while True:
            if self._got_sigchld:
                self._got_sigchld = False
                self._reap()
            if self._pending_respawns and not self._stopping:
                now = time.monotonic()
                due = [n for (when, n) in self._pending_respawns if when <= now]
                self._pending_respawns = [
                    (when, n) for (when, n) in self._pending_respawns if when > now
                ]
                for number in due:
                    self._spawn(number)
            if self._stopping:
                if not self._records:
                    return
                if (
                    self._drain_deadline is not None
                    and time.monotonic() >= self._drain_deadline
                ):
                    for record in list(self._records.values()):
                        self._kill(record, signal.SIGKILL)
                    self._reap(block=True)
                    return
            try:
                events = self._selector.select(timeout=0.1)
            except OSError as error:  # pragma: no cover - EINTR paranoia
                if error.errno != errno.EINTR:
                    raise
                continue
            for key, mask in events:
                if key.data is None:
                    self._drain_wake_pipe()
                else:
                    self._service_channel(key.data, mask)

    def _cleanup(self) -> None:
        for record in list(self._records.values()):
            self._kill(record, signal.SIGKILL)
            self._close_record(record)
        self._reap(block=True)
        if self._selector is not None:
            self._selector.close()
        for fd in (self._wake_r, self._wake_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        if self._listen is not None:
            self._listen.close()

    # -- signals -----------------------------------------------------------------
    def _install_signals(self) -> None:
        signal.signal(signal.SIGCHLD, self._on_sigchld)
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._on_terminate)

    def _on_sigchld(self, signum, frame) -> None:
        self._got_sigchld = True
        self._wake()

    def _on_terminate(self, signum, frame) -> None:
        if not self._stopping:
            self._stopping = True
            self._drain_deadline = time.monotonic() + self._drain_timeout
            for record in self._records.values():
                self._send(record, {"op": "drain"})
        self._wake()

    def _wake(self) -> None:
        if self._wake_w >= 0:
            try:
                os.write(self._wake_w, b"x")
            except (OSError, BlockingIOError):
                pass

    def _drain_wake_pipe(self) -> None:
        try:
            while os.read(self._wake_r, 4096):
                pass
        except (OSError, BlockingIOError):
            pass

    # -- workers -----------------------------------------------------------------
    def _spawn(self, number: int) -> None:
        self._spawn_times[number] = time.monotonic()
        parent_sock, child_sock = socket.socketpair()
        pid = os.fork()
        if pid == 0:  # child
            status = 1
            try:
                parent_sock.close()
                self._child_reset()
                status = _worker_main(
                    number,
                    self._listen,
                    child_sock,
                    self._current_store,
                    {
                        "service": self._service_options,
                        "server": self._server_options,
                        "warm_patterns": self._warm_patterns,
                        "warm_top": self._warm_top,
                        "generation": self._generation,
                    },
                )
            except BaseException:  # pragma: no cover - crash path
                status = 1
            finally:
                os._exit(status)
        child_sock.close()
        parent_sock.setblocking(False)
        record = _WorkerRecord(number, pid, parent_sock)
        self._records[pid] = record
        self._selector.register(parent_sock, selectors.EVENT_READ, record)

    def _child_reset(self) -> None:
        """Shed supervisor state the forked child must not touch."""
        signal.signal(signal.SIGCHLD, signal.SIG_DFL)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        if self._selector is not None:
            self._selector.close()
        for fd in (self._wake_r, self._wake_w):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        for record in self._records.values():
            try:
                record.sock.close()
            except OSError:
                pass
        # The authoritative index (and its mmaps) is CoW-shared with the
        # parent; the worker loads its own from the store instead.
        self._index = None

    def _reap(self, block: bool = False) -> None:
        while True:
            try:
                pid, _status = os.waitpid(-1, 0 if block else os.WNOHANG)
            except ChildProcessError:
                return
            except InterruptedError:  # pragma: no cover
                continue
            if pid == 0:
                return
            record = self._records.pop(pid, None)
            if record is None:
                continue
            record.alive = False
            self._close_record(record)
            self._prune_waits(record)
            if not self._stopping:
                if self._respawns < self._respawn_limit:
                    self._respawns += 1
                    self._schedule_respawn(record.number)
                else:  # pragma: no cover - safety valve
                    print(
                        f"worker {record.number} died; respawn limit "
                        f"({self._respawn_limit}) reached",
                        file=sys.stderr,
                    )

    def _schedule_respawn(self, number: int) -> None:
        """Respawn a dead worker, backing off on consecutive fast deaths.

        The first death respawns immediately (a one-off crash should not
        add latency); a worker that keeps dying within seconds of its spawn
        waits ``min(5s, 0.05s · 2^(failures-1))`` plus up to 25% jitter, so
        a persistently broken store never turns into a tight fork loop.  A
        worker that survived past the fast-death window resets its count.
        """
        alive = time.monotonic() - self._spawn_times.get(number, 0.0)
        if alive >= _FAST_DEATH_SECONDS:
            self._fast_deaths[number] = 0
        failures = self._fast_deaths.get(number, 0) + 1
        self._fast_deaths[number] = failures
        if failures <= 1:
            self._spawn(number)
            return
        delay = min(
            _BACKOFF_MAX_SECONDS, _BACKOFF_BASE_SECONDS * (2 ** (failures - 1))
        ) * (1.0 + 0.25 * random.random())
        self._pending_respawns.append((time.monotonic() + delay, number))

    def _kill(self, record: _WorkerRecord, signum) -> None:
        try:
            os.kill(record.pid, signum)
        except ProcessLookupError:
            pass

    def _close_record(self, record: _WorkerRecord) -> None:
        try:
            self._selector.unregister(record.sock)
        except (KeyError, ValueError):
            pass
        try:
            record.sock.close()
        except OSError:
            pass

    def _prune_waits(self, record: _WorkerRecord) -> None:
        """A dead worker can neither ack a reload nor answer a stats request."""
        if self._active_update is not None:
            self._active_update["waiting"].discard(record.pid)
            if not self._active_update["waiting"]:
                self._finish_update()
        for token in list(self._collections):
            collection = self._collections[token]
            collection["waiting"].discard(record.pid)
            if collection["requester"] is record:
                del self._collections[token]
            elif not collection["waiting"]:
                self._finish_collection(token)

    # -- control channel ---------------------------------------------------------
    def _send(self, record: _WorkerRecord, message: dict) -> None:
        if not record.alive:
            return
        record.outbuf += _encode(message)
        self._flush(record)

    def _flush(self, record: _WorkerRecord) -> None:
        while record.outbuf:
            try:
                sent = record.sock.send(record.outbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                record.outbuf.clear()
                return
            del record.outbuf[:sent]
        events = selectors.EVENT_READ
        if record.outbuf:
            events |= selectors.EVENT_WRITE
        try:
            self._selector.modify(record.sock, events, record)
        except (KeyError, ValueError):
            pass

    def _service_channel(self, record: _WorkerRecord, mask: int) -> None:
        if mask & selectors.EVENT_WRITE:
            self._flush(record)
        if not mask & selectors.EVENT_READ:
            return
        try:
            chunk = record.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            chunk = b""
        if not chunk:
            # EOF: the worker is gone (SIGCHLD will reap it).
            self._close_record(record)
            return
        record.inbuf += chunk
        while True:
            newline = record.inbuf.find(b"\n")
            if newline < 0:
                break
            line = bytes(record.inbuf[:newline])
            del record.inbuf[: newline + 1]
            if not line.strip():
                continue
            try:
                message = json.loads(line)
            except json.JSONDecodeError:  # pragma: no cover - defensive
                continue
            self._handle_message(record, message)

    def _handle_message(self, record: _WorkerRecord, message: dict) -> None:
        op = message.get("op")
        if op == "ready":
            record.ready = True
            if (
                not self._announced
                and self._ready is not None
                and all(r.ready for r in self._records.values())
                and len(self._records) >= self._workers
            ):
                self._announced = True
                self._ready(self._host, self._port)
        elif op == "update":
            self._update_queue.append(
                {
                    "requester": record,
                    "id": message.get("id"),
                    "updates": message.get("updates", []),
                }
            )
            self._pump_updates()
        elif op == "reload_ack":
            active = self._active_update
            if active is not None and message.get("generation") == active["generation"]:
                active["waiting"].discard(record.pid)
                if not active["waiting"]:
                    self._finish_update()
        elif op in ("scrape", "stats"):
            self._start_collection(record, op, message.get("id"))
        elif op == "stats_reply":
            token = message.get("collect")
            collection = self._collections.get(token)
            if collection is None:
                return
            collection["waiting"].discard(record.pid)
            collection["replies"][record.number] = message.get("payload", {})
            if not collection["waiting"]:
                self._finish_collection(token)

    # -- update fan-out ----------------------------------------------------------
    def _pump_updates(self) -> None:
        while self._active_update is None and self._update_queue:
            self._apply_update(self._update_queue.pop(0))

    def _apply_update(self, request: dict) -> None:
        from ..io.store import (
            _wal_updates_payload,
            append_update_log,
            append_wal,
            refresh_sharded_store,
            save_index,
        )

        requester = request["requester"]
        try:
            pairs = [tuple(entry) for entry in request["updates"]]
            report = self._index.apply_updates(pairs).as_dict()
        except _UPDATE_ERRORS as error:
            self._send(
                requester,
                {"op": "update_done", "id": request["id"], "error": str(error)},
            )
            return
        self._generation += 1
        self._updates += 1
        obsolete: list[str] = []
        store_message = None
        wal_start: int | None = None
        try:
            if self._is_directory:
                # WAL first (fsync'd commit point), then the shard rewrite:
                # a crash after the append is rolled forward by recovery, a
                # crash before it leaves the acknowledged pre-update state.
                wal_start = append_wal(
                    self._current_store,
                    {
                        "type": "update",
                        "updates": _wal_updates_payload(pairs),
                        "generation": self._generation,
                    },
                )
                refresh = refresh_sharded_store(
                    self._current_store, self._index, generation_names=True
                )
                obsolete = refresh["obsolete"]
                report["store"] = {
                    "rewritten": refresh["rewritten"],
                    "skipped": refresh["skipped"],
                }
                append_wal(
                    self._current_store,
                    {
                        "type": "applied",
                        "generations": list(self._index.generations),
                    },
                )
                try:
                    append_update_log(
                        self._current_store,
                        {
                            "time": time.time(),
                            "positions": report.get("positions", []),
                            "strategy": report.get("strategy"),
                            "generation": self._generation,
                            "rewritten": refresh["rewritten"],
                        },
                    )
                except OSError:  # pragma: no cover - the log is advisory
                    pass
            else:
                base = Path(self._store_path)
                new_path = str(base.with_name(f"{base.name}.g{self._generation}"))
                save_index(new_path, self._index)
                if self._current_store != self._store_path:
                    # Only files this supervisor created are ever unlinked;
                    # the user's original store is left untouched (stale,
                    # like the single-process server leaves it).
                    obsolete.append(self._current_store)
                self._current_store = new_path
                self._generated_files.append(new_path)
                store_message = new_path
                report["store"] = {"path": new_path}
        except _PERSIST_ERRORS as error:
            self._enter_degraded(error, wal_start)
            self._send(
                requester,
                {
                    "op": "update_done",
                    "id": request["id"],
                    "error": f"store persist failed, serving last committed "
                    f"generation: {error}",
                    "status": 503,
                },
            )
            return
        if self._degraded:
            self._degraded = False
            self._broadcast_degraded(False)
        report["cluster_generation"] = self._generation
        positions = report.get("positions", [])
        waiting = {pid for pid, r in self._records.items() if r.alive}
        self._active_update = {
            "requester": requester,
            "id": request["id"],
            "report": report,
            "generation": self._generation,
            "waiting": waiting,
            "obsolete": obsolete,
        }
        reload_message = {
            "op": "reload",
            "generation": self._generation,
            "positions": positions,
            "store": store_message,
        }
        for record in self._records.values():
            self._send(record, reload_message)
        if not waiting:  # pragma: no cover - all workers died at once
            self._finish_update()

    def _finish_update(self) -> None:
        active, self._active_update = self._active_update, None
        if active is None:
            return
        for path in active["obsolete"]:
            try:
                os.unlink(path)
            except OSError:
                pass
        requester = active["requester"]
        if requester.alive:
            self._send(
                requester,
                {
                    "op": "update_done",
                    "id": active["id"],
                    "report": active["report"],
                },
            )
        self._pump_updates()

    def _enter_degraded(self, error, wal_start: int | None) -> None:
        """Roll back to the last committed generation after a persist failure.

        The update already mutated the in-memory index, so the authoritative
        copy is reloaded from the store (whatever generation the disk holds
        is, by construction, a committed one); the WAL record this update
        appended — if it got that far — is truncated away so recovery never
        replays an unacknowledged batch; workers keep serving their current
        maps, and ``/healthz``/``/stats``/``/metrics`` flag the cluster
        degraded until an update persists cleanly again.
        """
        self._generation -= 1
        self._updates -= 1
        if wal_start is not None:
            try:
                from ..io.store import _truncate_wal

                _truncate_wal(self._current_store, wal_start)
            except OSError:  # pragma: no cover - disk is already failing
                pass
        try:
            self._index = _load_store(self._current_store, mmap=True)
        except _PERSIST_ERRORS:  # pragma: no cover - disk is already failing
            pass  # keep serving the mutated in-memory copy rather than dying
        print(
            f"update persist failed ({error}); serving degraded at "
            f"generation {self._generation}",
            file=sys.stderr,
        )
        if not self._degraded:
            self._degraded = True
            self._broadcast_degraded(True)

    def _broadcast_degraded(self, value: bool) -> None:
        message = {"op": "degraded", "value": value}
        for record in self._records.values():
            self._send(record, message)

    # -- metrics / stats aggregation ---------------------------------------------
    def _start_collection(self, record: _WorkerRecord, kind: str, reqid) -> None:
        self._collect_ids += 1
        token = self._collect_ids
        waiting = {pid for pid, r in self._records.items() if r.alive}
        self._collections[token] = {
            "type": kind,
            "requester": record,
            "id": reqid,
            "waiting": waiting,
            "replies": {},
        }
        message = {"op": "stats_request", "collect": token}
        for peer in self._records.values():
            self._send(peer, message)
        if not waiting:  # pragma: no cover
            self._finish_collection(token)

    def _supervisor_stats(self) -> dict:
        return {
            "workers": len(self._records),
            "configured_workers": self._workers,
            "respawns": self._respawns,
            "respawns_pending": len(self._pending_respawns),
            "generation": self._generation,
            "updates": self._updates,
            "degraded": self._degraded,
            "recovery": self._recovery,
            "store": self._current_store,
            "store_bytes": _store_bytes(self._current_store),
            "pid": os.getpid(),
            "pids": {
                record.number: pid for pid, record in self._records.items()
            },
        }

    def _finish_collection(self, token: int) -> None:
        collection = self._collections.pop(token, None)
        if collection is None:
            return
        requester = collection["requester"]
        if not requester.alive:
            return
        if collection["type"] == "scrape":
            text = render_cluster_stats(
                collection["replies"], self._supervisor_stats()
            )
            self._send(
                requester,
                {"op": "scrape_done", "id": collection["id"], "text": text},
            )
        else:
            payload = {
                "workers": {
                    str(number): snapshot
                    for number, snapshot in sorted(collection["replies"].items())
                },
                "supervisor": self._supervisor_stats(),
            }
            self._send(
                requester,
                {"op": "stats_done", "id": collection["id"], "payload": payload},
            )


# --------------------------------------------------------------------------- #
# worker side                                                                  #
# --------------------------------------------------------------------------- #
class _WorkerContext:
    """The worker's cluster adapter: HTTP routes on one side, the control
    channel to the supervisor on the other."""

    def __init__(self, number: int, reader, writer, store_path: str) -> None:
        self.number = number
        self.degraded = False
        self._reader = reader
        self._writer = writer
        self._store_path = store_path
        self._server = None
        self._service: QueryService | None = None
        self._ids = 0
        self._pending: dict[int, asyncio.Future] = {}
        self._stop = asyncio.Event()

    def bind(self, server, service: QueryService) -> None:
        self._server = server
        self._service = service

    @property
    def stopped(self) -> asyncio.Event:
        return self._stop

    async def send(self, message: dict) -> None:
        self._writer.write(_encode(message))
        await self._writer.drain()

    async def _request(self, message: dict) -> dict:
        self._ids += 1
        reqid = self._ids
        message["id"] = reqid
        future = asyncio.get_running_loop().create_future()
        self._pending[reqid] = future
        try:
            await self.send(message)
            return await future
        finally:
            self._pending.pop(reqid, None)

    # -- the HttpServer cluster interface ---------------------------------------
    async def update(self, pairs) -> dict:
        reply = await self._request(
            {"op": "update", "updates": [[p, d] for p, d in pairs]}
        )
        if "error" in reply:
            if reply.get("status") == 503:
                # The store failed, not the payload: the cluster rolled back
                # and keeps serving the last committed generation.
                from .server import HttpError

                self.degraded = True
                raise HttpError(503, reply["error"])
            raise ReproError(reply["error"])
        self.degraded = False
        return reply["report"]

    async def scrape(self) -> str:
        reply = await self._request({"op": "scrape"})
        return reply.get("text", "")

    async def cluster_stats(self) -> dict:
        reply = await self._request({"op": "stats"})
        return reply.get("payload", {})

    # -- supervisor-initiated operations -----------------------------------------
    def _snapshot(self) -> dict:
        memory = {"peak_rss_bytes": peak_rss_bytes()}
        rollup = smaps_rollup_bytes()
        if rollup is not None:
            memory["shared_bytes"] = rollup["shared"]
            memory["private_bytes"] = rollup["private"]
            memory["pss_bytes"] = rollup.get("pss")
        return {
            "worker": self.number,
            "pid": os.getpid(),
            "service": self._service.stats(),
            "server": self._server.server_stats(),
            "memory": memory,
        }

    async def _apply_reload(self, message: dict) -> None:
        from ..io.store import load_index, reload_sharded_store

        async with self._server.write_lock:
            store = message.get("store")
            if store:
                new_index = load_index(store, mmap=True)
            else:
                new_index, _reloaded = reload_sharded_store(
                    self._store_path, self._service.index, mmap=True
                )
            self._service.adopt_index(
                new_index,
                positions=message.get("positions", ()),
                generation=message.get("generation"),
            )

    async def run(self) -> None:
        """Consume supervisor messages until drain/EOF."""
        while True:
            try:
                line = await self._reader.readline()
            except (ConnectionResetError, OSError):
                line = b""
            if not line:
                # Supervisor is gone: stop serving rather than run orphaned.
                self._stop.set()
                return
            try:
                message = json.loads(line)
            except json.JSONDecodeError:  # pragma: no cover - defensive
                continue
            op = message.get("op")
            if op in ("update_done", "scrape_done", "stats_done"):
                future = self._pending.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message)
            elif op == "stats_request":
                await self.send(
                    {
                        "op": "stats_reply",
                        "collect": message.get("collect"),
                        "payload": self._snapshot(),
                    }
                )
            elif op == "reload":
                await self._apply_reload(message)
                await self.send(
                    {"op": "reload_ack", "generation": message.get("generation")}
                )
            elif op == "degraded":
                self.degraded = bool(message.get("value"))
            elif op == "drain":
                self._stop.set()
                return


async def _worker_serve(
    number: int, listen_sock: socket.socket, ctrl_sock: socket.socket,
    store_path: str, config: dict,
) -> int:
    from .server import HttpServer

    loop = asyncio.get_running_loop()
    index = _load_store(store_path, mmap=True)
    service = QueryService(
        index,
        generation=int(config.get("generation", 0)),
        **config.get("service", {}),
    )
    warm_patterns = config.get("warm_patterns") or []
    if warm_patterns:
        # Warm before accepting: the first post-warm request wave hits the
        # cache, not the planner.  ``remember=True`` keeps the warm set so
        # adopt_index re-warms exactly the entries an update invalidates.
        service.warm(warm_patterns, top=config.get("warm_top"), remember=True)
    reader, writer = await asyncio.open_connection(sock=ctrl_sock)
    context = _WorkerContext(number, reader, writer, store_path)
    server = HttpServer(service, cluster=context, **config.get("server", {}))
    context.bind(server, service)
    try:
        loop.add_signal_handler(signal.SIGTERM, context.stopped.set)
    except (NotImplementedError, RuntimeError):  # pragma: no cover
        pass
    control = asyncio.ensure_future(context.run())
    await server.start(sock=listen_sock)
    await context.send({"op": "ready"})
    await context.stopped.wait()
    await server.shutdown(drain=True)
    control.cancel()
    try:
        writer.close()
    except OSError:  # pragma: no cover
        pass
    return 0


def _worker_main(
    number: int, listen_sock: socket.socket, ctrl_sock: socket.socket,
    store_path: str, config: dict,
) -> int:
    """Entry point of a forked worker (never returns to the caller's frame)."""
    try:
        return asyncio.run(
            _worker_serve(number, listen_sock, ctrl_sock, store_path, config)
        )
    except KeyboardInterrupt:  # pragma: no cover
        return 0
    except Exception:  # pragma: no cover - crash path, logged for debugging
        import traceback

        traceback.print_exc()
        return 1
