"""``QueryService`` — cached serving front-end over any uncertain-string index.

Production pattern traffic is heavily skewed: a small set of hot patterns
dominates the request stream.  The service exploits that with an LRU cache
of finished :class:`~repro.indexes.query.QueryResult` objects keyed by the
*normalized* request — the coerced letter codes plus the query mode and
threshold parameters — so ``"AB"`` and ``[0, 1]`` are one cache entry, and a
repeated request costs a dictionary lookup instead of a planner execution.

The service never changes answers: every miss is answered by the shared
:class:`~repro.indexes.query.QueryPlanner`, identical to calling the index
directly.  Hit/miss/eviction counters feed capacity planning and the
``servemix`` benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from ..errors import QueryError, ReproError
from ..indexes.base import affected_pattern_starts, coerce_pattern_array
from ..indexes.query import Query, QueryPlanner, QueryResult

__all__ = ["QueryService"]

#: Default number of cached results (a few MB for typical occurrence lists).
DEFAULT_CACHE_SIZE = 1024


class QueryService:
    """Serving front-end: normalization, deduplication and an LRU result cache.

    Parameters
    ----------
    index:
        Any built :class:`~repro.indexes.base.UncertainStringIndex`
        (monolithic, sharded, or loaded from the binary index store).
    cache_size:
        Maximum number of cached results; least-recently-used entries are
        evicted beyond it.
    cache_enabled:
        Disable to measure the uncached baseline (requests are still
        deduplicated within each batch).

    Notes
    -----
    Cached :class:`~repro.indexes.query.QueryResult` objects are shared
    between callers — treat them as read-only.
    """

    def __init__(
        self,
        index,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_enabled: bool = True,
        generation: int = 0,
    ) -> None:
        self._index = index
        self._planner = QueryPlanner(index)
        self._cache: OrderedDict[tuple, QueryResult] = OrderedDict()
        self._cache_size = max(0, int(cache_size))
        self._cache_enabled = bool(cache_enabled) and self._cache_size > 0
        self._queries = 0
        self._cache_hits = 0
        self._dedup_hits = 0
        self._misses = 0
        self._evictions = 0
        self._updates = 0
        self._invalidations = 0
        self._rewarms = 0
        # Warm-log queries remembered by ``warm(..., remember=True)`` so the
        # cache entries an update invalidates can be re-executed immediately
        # (see :meth:`rewarm`) instead of degrading the first post-update
        # request wave into planner misses.
        self._warm_set: list[Query] = []
        # A worker respawned mid-run starts at the cluster's current
        # generation, not 0, so its responses tag the store state they
        # actually serve.
        self._generation = int(generation)

    # -- shape ------------------------------------------------------------------
    @property
    def index(self):
        """The served index."""
        return self._index

    @property
    def cache_enabled(self) -> bool:
        """Whether results are being cached."""
        return self._cache_enabled

    @property
    def hits(self) -> int:
        """Requests served without execution so far: cache hits plus in-batch
        duplicates (cheap accessor for per-request hit detection)."""
        return self._cache_hits + self._dedup_hits

    @property
    def generation(self) -> int:
        """Number of update batches applied through this service."""
        return self._generation

    # -- queries ----------------------------------------------------------------
    def query(self, pattern, *, mode="locate", k=None, z=None, zs=None) -> QueryResult:
        """Answer one request (a pattern or a prepared :class:`Query`).

        Mode/threshold options alongside a prebuilt :class:`Query` are
        rejected (they would be silently ignored otherwise).
        """
        if isinstance(pattern, Query):
            if mode != "locate" or k is not None or z is not None or zs is not None:
                raise QueryError(
                    "query options cannot be combined with a prebuilt Query; "
                    "set them on the Query itself"
                )
            request = pattern
        else:
            request = Query(pattern, mode=mode, k=k, z=z, zs=zs)
        return self.query_many([request])[0]

    def query_many(
        self, requests: Sequence, *, provenance: bool = False
    ) -> list[QueryResult] | tuple[list[QueryResult], list[str]]:
        """Answer a batch of requests, serving repeats from the cache.

        Entries may be :class:`Query` objects or bare patterns (``locate``
        mode).  Requests repeated within the batch are answered once; a
        request whose key is already cached counts as a hit, each distinct
        uncached key as one miss.

        With ``provenance=True`` the return value is ``(results, origins)``
        where ``origins[i]`` is ``"cache"``, ``"dedup"`` or ``"miss"`` for
        request ``i`` — the per-request provenance concurrent callers need
        (a global hit-counter delta misattributes hits as soon as two
        requests are in flight).
        """
        queries = [
            request if isinstance(request, Query) else Query(request)
            for request in requests
        ]
        keys = [self._key(query) for query in queries]
        results: list[QueryResult | None] = [None] * len(queries)
        origins: list[str] = ["miss"] * len(queries)
        pending: OrderedDict[tuple, list[int]] = OrderedDict()
        cache_hits = dedup_hits = misses = 0
        for position, key in enumerate(keys):
            if self._cache_enabled and key in self._cache:
                self._cache.move_to_end(key)
                results[position] = self._cache[key]
                origins[position] = "cache"
                cache_hits += 1
            elif key in pending:
                # Duplicate of an uncached request earlier in this batch:
                # served without a second execution.  Tracked separately from
                # cache hits but counted into the hit rate — it reflects
                # traffic served without touching the index, whether the
                # saved execution came from the cache or from deduplication.
                pending[key].append(position)
                origins[position] = "dedup"
                dedup_hits += 1
            else:
                pending[key] = [position]
                misses += 1
        if pending:
            # Executed before the counters commit: a batch that fails
            # validation raises here and leaves the statistics untouched.
            batch = [queries[positions[0]] for positions in pending.values()]
            answers = self._planner.execute(batch)
            for (key, positions), answer in zip(pending.items(), answers):
                for position in positions:
                    results[position] = answer
                self._store(key, answer)
        self._cache_hits += cache_hits
        self._dedup_hits += dedup_hits
        self._misses += misses
        self._queries += len(queries)
        if provenance:
            return results, origins
        return results

    def _key(self, query: Query) -> tuple:
        """Normalized cache key: coerced codes + mode + threshold parameters.

        Coercion *validates* the pattern (strict integral codes, alphabet
        range) before keying: an invalid pattern must raise
        :class:`~repro.errors.PatternError` here, on the hit path, never
        reach the cache lookup with a truncated key that can collide with a
        cached valid pattern and silently be served that entry's answer.
        """
        codes = coerce_pattern_array(query.pattern, self._index.source)
        return (codes.tobytes(), query.mode, query.k, query.z, query.zs)

    def validate(self, request) -> Query:
        """Normalize and fully validate one request without executing it.

        Returns the :class:`Query` (built from a bare pattern if needed)
        after running the same pattern checks the planner would — strict
        code coercion, alphabet range and the index's pattern-length bounds.
        Admission layers (the HTTP micro-batcher) use this to reject an
        invalid request individually instead of poisoning the whole batch
        it would have been coalesced into.
        """
        query = request if isinstance(request, Query) else Query(request)
        codes = coerce_pattern_array(query.pattern, self._index.source)
        self._index._prepare_pattern(codes)
        index_z = self._index.z
        overrides = query.zs if query.zs is not None else (
            (query.z,) if query.z is not None else ()
        )
        for value in overrides:
            if value > index_z:
                raise QueryError(
                    f"query threshold z={value:g} is looser than the index's "
                    f"z={index_z:g}; occurrences with probability below "
                    f"1/{index_z:g} are not indexed"
                )
        return query

    def warm(self, patterns, *, top: int | None = None, remember: bool = False) -> dict:
        """Pre-populate the cache by replaying patterns from a query log.

        ``patterns`` is an iterable of raw patterns (strings or code
        sequences) in log order, typically with repeats.  They are ranked by
        frequency (first appearance breaks ties, so the warm set is stable
        across runs), truncated to ``top`` — default: the cache capacity —
        and executed through :meth:`query_many` in chunks, so after warm-up
        the first wave of production traffic hits the cache instead of the
        planner.  Patterns that fail validation are skipped, not fatal: a log
        replayed against a newer index may contain patterns that no longer
        coerce.  Returns ``{"warmed": ..., "skipped": ..., "patterns_seen": ...}``.

        With ``remember=True`` the warm set is kept, and every later update
        that invalidates cache entries automatically re-executes the warm
        patterns that fell out (:meth:`rewarm`) — without it, an updated hot
        pattern would miss on its first post-update request even though the
        operator declared it hot.
        """
        counts: OrderedDict[tuple, tuple[int, object]] = OrderedDict()
        seen = 0
        for pattern in patterns:
            seen += 1
            token = (
                ("s", pattern)
                if isinstance(pattern, str)
                else ("l", tuple(np.asarray(pattern).ravel().tolist()))
            )
            if token in counts:
                counts[token] = (counts[token][0] + 1, counts[token][1])
            else:
                counts[token] = (1, pattern)
        limit = self._cache_size if top is None else max(0, int(top))
        if not self._cache_enabled:
            limit = 0
        ranked = sorted(
            enumerate(counts.values()), key=lambda item: (-item[1][0], item[0])
        )
        warm_set = []
        skipped = 0
        for _, (_, pattern) in ranked:
            if len(warm_set) >= limit:
                break
            try:
                warm_set.append(self.validate(pattern))
            except (ReproError, ValueError, TypeError):
                skipped += 1
        for start in range(0, len(warm_set), 256):
            self.query_many(warm_set[start : start + 256])
        if remember:
            self._warm_set = list(warm_set)
        return {"warmed": len(warm_set), "skipped": skipped, "patterns_seen": seen}

    def rewarm(self) -> dict:
        """Re-execute remembered warm patterns whose cache entries are gone.

        Called automatically after :meth:`update` / :meth:`adopt_index`
        invalidation when a warm set was remembered; harmless (and cheap) to
        call by hand.  Warm patterns still cached are left alone — only the
        invalidated ones are re-executed and re-cached, so the first
        post-update request wave hits the cache for the whole warm set.
        Patterns that no longer validate against the current index are
        dropped from the warm set.
        """
        if not self._warm_set or not self._cache_enabled:
            return {"rewarmed": 0, "already_cached": 0, "dropped": 0}
        pending: list[Query] = []
        kept: list[Query] = []
        already = 0
        dropped = 0
        for query in self._warm_set:
            try:
                query = self.validate(query)
            except (ReproError, ValueError, TypeError):
                dropped += 1
                continue
            kept.append(query)
            if self._key(query) in self._cache:
                already += 1
            else:
                pending.append(query)
        self._warm_set = kept
        for start in range(0, len(pending), 256):
            self.query_many(pending[start : start + 256])
        self._rewarms += len(pending)
        return {
            "rewarmed": len(pending),
            "already_cached": already,
            "dropped": dropped,
        }

    def adopt_index(self, new_index, *, positions=(), generation=None) -> dict:
        """Swap in a reloaded index, invalidating stale cache entries exactly.

        Multi-worker serving applies updates in the supervisor and ships
        workers a *reloaded* index (new store generation) instead of mutating
        the served one in place.  This installs that index with the same
        exactness contract as :meth:`update`: given the updated ``positions``,
        each cached entry's occurrence probabilities over the affected
        windows are probed on the old and new source, and only entries whose
        answers could differ are dropped.  With unknown provenance (empty
        ``positions`` or a changed string length) the whole cache is cleared
        instead.  ``generation`` pins the service generation to the
        supervisor's global counter so every worker reports the same value.
        """
        old_source = self._index.source
        new_source = new_index.source
        positions = sorted({int(p) for p in positions})
        invalidated = 0
        if len(new_source) != len(old_source) or not positions:
            invalidated = len(self._cache)
            self._cache.clear()
        elif self._cache:
            n = len(new_source)
            stale = []
            for key in self._cache:
                codes = np.frombuffer(key[0], dtype=np.int64)
                starts = affected_pattern_starts(len(codes), positions, n)
                before = old_source.occurrence_log_probabilities(codes, starts)
                after = new_source.occurrence_log_probabilities(codes, starts)
                if not np.array_equal(before, after):
                    stale.append(key)
            for key in stale:
                self._cache.pop(key, None)
            invalidated = len(stale)
        self._index = new_index
        self._planner = QueryPlanner(new_index)
        self._updates += 1
        self._invalidations += invalidated
        self._generation = (
            int(generation) if generation is not None else self._generation + 1
        )
        rewarmed = self.rewarm()["rewarmed"] if invalidated and self._warm_set else 0
        return {
            "invalidated_entries": invalidated,
            "surviving_entries": len(self._cache),
            "rewarmed_entries": rewarmed,
            "service_generation": self._generation,
        }

    def _store(self, key: tuple, result: QueryResult) -> None:
        if not self._cache_enabled:
            return
        self._cache[key] = result
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1

    # -- updates ----------------------------------------------------------------
    def update(self, updates) -> dict:
        """Apply point updates to the served index, invalidating stale entries.

        ``updates`` is a sequence of ``(position, distribution)`` pairs,
        forwarded to :meth:`UncertainStringIndex.apply_updates`.  Cache
        invalidation is *exact*: an update at position ``u`` can only change
        a pattern's answer through the occurrence starts whose window covers
        ``u`` (see :func:`~repro.indexes.base.affected_pattern_starts`), so
        each cached entry's occurrence probabilities over that window are
        probed before and after the update — entries whose probed
        probabilities are bit-identical kept their answer and survive, every
        other entry is dropped.  A cached result is therefore never served
        after an update that changed it, and entries the update could not
        have touched keep producing cache hits.
        """
        source = self._index.source
        n = len(source)
        # Materialize once: the batch is iterated here for probing and again
        # inside apply_updates — a generator would be exhausted after the
        # first pass and the update silently dropped.
        updates = list(updates)
        # Coercion validates the batch and yields the touched positions
        # before anything mutates (the raw updates are re-coerced inside
        # apply_updates; coercion is deterministic, so the rows agree).
        positions = sorted({p for p, _ in source.coerce_updates(updates)})
        probes: list[tuple[tuple, np.ndarray, np.ndarray]] = []
        if positions and self._cache:
            for key in self._cache:
                codes = np.frombuffer(key[0], dtype=np.int64)
                starts = affected_pattern_starts(len(codes), positions, n)
                probes.append(
                    (key, starts, source.occurrence_log_probabilities(codes, starts))
                )
        report = self._index.apply_updates(updates)
        invalidated = 0
        for key, starts, before in probes:
            codes = np.frombuffer(key[0], dtype=np.int64)
            after = source.occurrence_log_probabilities(codes, starts)
            if not np.array_equal(before, after):
                self._cache.pop(key, None)
                invalidated += 1
        self._updates += 1
        self._invalidations += invalidated
        self._generation += 1
        rewarmed = self.rewarm()["rewarmed"] if invalidated and self._warm_set else 0
        response = report.as_dict()
        response["invalidated_entries"] = invalidated
        response["surviving_entries"] = len(self._cache)
        response["rewarmed_entries"] = rewarmed
        response["service_generation"] = self._generation
        return response

    # -- introspection ----------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters: requests, hits, misses, evictions, updates.

        ``hits`` counts every request served without an execution — true
        cache hits plus requests deduplicated inside a batch (broken down in
        ``cache_hits`` / ``dedup_hits``) — so ``hit_rate`` reflects the
        served traffic, not only the cache.
        """
        hits = self._cache_hits + self._dedup_hits
        answered = hits + self._misses
        return {
            "queries": self._queries,
            "hits": hits,
            "cache_hits": self._cache_hits,
            "dedup_hits": self._dedup_hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": hits / answered if answered else 0.0,
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "cache_enabled": self._cache_enabled,
            "updates": self._updates,
            "invalidations": self._invalidations,
            "rewarms": self._rewarms,
            "warm_set": len(self._warm_set),
            "generation": self._generation,
            "index_generation": getattr(self._index, "generation", 0),
        }

    def clear_cache(self) -> None:
        """Drop every cached result (counters are kept)."""
        self._cache.clear()

    def reset_stats(self) -> None:
        """Zero the serving counters (cache content and generation are kept)."""
        self._queries = self._cache_hits = self._dedup_hits = 0
        self._misses = self._evictions = 0
        self._updates = self._invalidations = 0
