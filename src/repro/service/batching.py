"""Cross-request micro-batching and admission control for the HTTP server.

Two asyncio building blocks:

* :class:`MicroBatcher` — coalesces concurrent singleton requests into one
  :meth:`QueryService.query_many` call.  Requests arriving within a short
  window (or until a maximum batch size) share a single planner execution,
  so independent HTTP clients get the vectorized batch path and in-batch
  deduplication that previously required one caller to submit a whole batch
  themselves.  Execution happens under the server's single writer lock, so
  a coalesced batch never interleaves with an index update.
* :class:`TokenBucket` / :class:`RateLimiter` — classic token-bucket
  rate limiting, per client, with a bounded client table (the oldest idle
  client's bucket is recycled; an unbounded table would be a memory leak
  fed by spoofed addresses).

Both are plain asyncio, single event loop, no threads: the QueryService
calls are synchronous and atomic with respect to the loop, and the lock
makes the serialization explicit (and keeps it correct if execution ever
moves to a thread pool).
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from collections.abc import Callable

__all__ = ["MicroBatcher", "TokenBucket", "RateLimiter"]

#: Default micro-batch collection window (seconds).
DEFAULT_WINDOW = 0.002

#: Default maximum requests coalesced into one execution.
DEFAULT_MAX_BATCH = 64


class MicroBatcher:
    """Coalesce concurrent :meth:`submit` calls into batched executions.

    The first request of a batch starts a window timer; requests arriving
    before it fires join the pending batch, and reaching ``max_batch``
    flushes immediately.  Each flush answers the whole batch with one
    ``query_many(..., provenance=True)`` call and resolves every waiter
    with its ``(result, origin, generation)`` triple — the service
    generation is read under the same lock as the execution, so the tag
    can never name a generation the answer was not computed against.

    A request that fails *inside* a flush (despite admission-time
    validation) must not poison its co-batched neighbours: on a batch
    error the flush falls back to per-request execution, so exactly the
    failing requests see their exception.

    With ``enabled=False`` every submit executes immediately under the
    lock — the batching-off baseline the serving benchmark compares
    against.
    """

    def __init__(
        self,
        service,
        *,
        lock: asyncio.Lock,
        window: float = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        enabled: bool = True,
        on_batch: Callable[[int], None] | None = None,
    ) -> None:
        self._service = service
        self._lock = lock
        self._window = max(0.0, float(window))
        self._max_batch = max(1, int(max_batch))
        self._enabled = bool(enabled)
        self._on_batch = on_batch
        self._pending: list[tuple[object, asyncio.Future]] = []
        self._timer: asyncio.Task | None = None
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0

    @property
    def enabled(self) -> bool:
        """Whether requests are being coalesced."""
        return self._enabled

    @property
    def depth(self) -> int:
        """Requests currently waiting for the window to close."""
        return len(self._pending)

    def stats(self) -> dict:
        """Batching counters for ``/stats`` and the benchmark report."""
        return {
            "enabled": self._enabled,
            "window_seconds": self._window,
            "max_batch": self._max_batch,
            "batches": self._batches,
            "batched_requests": self._batched_requests,
            "largest_batch": self._largest_batch,
            "mean_batch_size": (
                self._batched_requests / self._batches if self._batches else 0.0
            ),
        }

    async def submit(self, query):
        """Answer one request, coalescing it with concurrent ones.

        Returns ``(QueryResult, origin, generation)`` with origin one of
        ``"cache"`` / ``"dedup"`` / ``"miss"``; raises whatever the
        execution raised for *this* request.
        """
        if not self._enabled:
            async with self._lock:
                results, origins = self._service.query_many(
                    [query], provenance=True
                )
                generation = self._service.generation
            self._batches += 1
            self._batched_requests += 1
            self._largest_batch = max(self._largest_batch, 1)
            if self._on_batch is not None:
                self._on_batch(1)
            return results[0], origins[0], generation
        future = asyncio.get_running_loop().create_future()
        self._pending.append((query, future))
        if len(self._pending) >= self._max_batch:
            self._cancel_timer()
            asyncio.ensure_future(self._flush())
        elif self._timer is None:
            self._timer = asyncio.ensure_future(self._window_flush())
        return await future

    async def drain(self) -> None:
        """Flush everything pending now (graceful-shutdown hook)."""
        self._cancel_timer()
        while self._pending:
            await self._flush()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    async def _window_flush(self) -> None:
        try:
            await asyncio.sleep(self._window)
        except asyncio.CancelledError:
            return
        self._timer = None
        await self._flush()

    async def _flush(self) -> None:
        batch, self._pending = self._pending, []
        if not batch:
            return
        async with self._lock:
            # Waiters that gave up (per-request timeout cancels the future)
            # still ride along in the execution; their slots are skipped when
            # the answers are distributed.
            queries = [query for query, _ in batch]
            try:
                results, origins = self._service.query_many(
                    queries, provenance=True
                )
            except Exception:
                self._resolve_individually(batch)
            else:
                generation = self._service.generation
                for (_, future), result, origin in zip(batch, results, origins):
                    if not future.done():
                        future.set_result((result, origin, generation))
        self._batches += 1
        self._batched_requests += len(batch)
        self._largest_batch = max(self._largest_batch, len(batch))
        if self._on_batch is not None:
            self._on_batch(len(batch))

    def _resolve_individually(
        self, batch: list[tuple[object, asyncio.Future]]
    ) -> None:
        """Fallback after a failed batch: each request succeeds or fails alone."""
        for query, future in batch:
            try:
                results, origins = self._service.query_many(
                    [query], provenance=True
                )
            except Exception as error:  # noqa: BLE001 - routed to the waiter
                if not future.done():
                    future.set_exception(error)
            else:
                if not future.done():
                    future.set_result(
                        (results[0], origins[0], self._service.generation)
                    )


class TokenBucket:
    """One client's token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def acquire(self, now: float, cost: float = 1.0) -> float:
        """Take ``cost`` tokens; 0.0 when admitted, else seconds to retry."""
        self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        if self.rate <= 0.0:
            return 1.0
        return (cost - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets with a bounded, LRU-recycled client table.

    ``classes`` maps tenant-class names to ``(rate, burst)`` tiers.  A
    request arriving with a tenant name (the ``X-Tenant`` header) is charged
    against one bucket per tenant *value* at that tenant's tier — unknown
    tenants fall back to the ``"default"`` class when one is configured, and
    to the per-client-IP bucket otherwise, so quota configuration can be
    rolled out one tenant at a time.  A tier rate of 0 (or below) marks the
    class unlimited.  Tenant and client buckets share the bounded LRU table.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        classes: dict[str, tuple[float, float]] | None = None,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._rate = float(rate)
        self._burst = float(burst) if burst is not None else max(1.0, self._rate)
        self._classes = {
            str(name): (float(tier[0]), float(tier[1]))
            for name, tier in (classes or {}).items()
        }
        self._max_clients = max(1, int(max_clients))
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    @property
    def classes(self) -> dict[str, tuple[float, float]]:
        """The configured tenant-class tiers (name → (rate, burst))."""
        return dict(self._classes)

    def acquire(self, client: str, cost: float = 1.0, tenant: str | None = None) -> float:
        """Charge the request; 0.0 when admitted, else a retry-after in seconds.

        With a ``tenant`` and configured classes the charge lands on the
        tenant's bucket at its class tier; otherwise on the per-``client``
        bucket at the default rate.
        """
        if tenant is not None and self._classes:
            tier = self._classes.get(tenant) or self._classes.get("default")
            if tier is not None:
                rate, burst = tier
                if rate <= 0.0:
                    return 0.0
                return self._charge(f"tenant\x00{tenant}", rate, burst, cost)
        if self._rate <= 0.0:
            return 0.0
        return self._charge(client, self._rate, self._burst, cost)

    def _charge(self, key: str, rate: float, burst: float, cost: float) -> float:
        now = self._clock()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(rate, burst, now)
            self._buckets[key] = bucket
            while len(self._buckets) > self._max_clients:
                self._buckets.popitem(last=False)
        self._buckets.move_to_end(key)
        return bucket.acquire(now, cost)
