"""The wire protocol shared by the stdin serve loop and the HTTP API.

Both front-ends speak the same JSON request shapes over a
:class:`~repro.service.QueryService`:

* a **query** object carries ``pattern`` plus optional ``mode`` / ``k`` /
  ``z`` / ``zs`` fields;
* an **update** list carries ``{"position": ..., "distribution": {...}}``
  objects (or bare ``[position, distribution]`` pairs).

This module turns those JSON payloads into the library's typed requests with
one set of validation rules and error messages, so a request is accepted or
rejected identically whether it arrives on stdin or over HTTP.
"""

from __future__ import annotations

from ..errors import ReproError
from ..indexes import Query

__all__ = ["query_from_payload", "parse_updates"]


def query_from_payload(payload: dict) -> Query:
    """Build a :class:`Query` from a JSON request object.

    Unknown fields are rejected — a typo like ``"paterns"`` must not
    silently degrade the request into something the caller did not ask.
    """
    if not isinstance(payload, dict):
        raise ReproError("a JSON request must be an object")
    unknown = set(payload) - {"pattern", "mode", "k", "z", "zs"}
    if unknown:
        raise ReproError(
            f"unknown query fields {sorted(unknown)}; "
            "a query carries pattern/mode/k/z/zs"
        )
    pattern = payload.get("pattern")
    if pattern is None:
        raise ReproError("a JSON request needs a 'pattern' field")
    zs = payload.get("zs")
    return Query(
        pattern,
        mode=payload.get("mode", "locate"),
        k=payload.get("k"),
        z=payload.get("z"),
        # An explicitly given empty sweep must raise, not silently degrade
        # to a single-z answer of the wrong shape.
        zs=None if zs is None else tuple(zs),
    )


def parse_updates(payload) -> list[tuple[int, dict]]:
    """Normalize a JSON update list into ``(position, distribution)`` pairs.

    Accepts ``{"position": i, "distribution": {...}}`` objects, bare
    ``[position, distribution]`` pairs, and *ranged* updates
    ``{"start": s, "rows": [{...}, ...]}`` (one contiguous span of new
    distributions, expanded to ``(s, rows[0]), (s+1, rows[1]), ...``).
    """
    if not isinstance(payload, list):
        raise ReproError("updates must be a JSON list")
    pairs = []
    for entry in payload:
        if isinstance(entry, dict) and "start" in entry:
            unknown = set(entry) - {"start", "rows"}
            if unknown or "rows" not in entry:
                raise ReproError(
                    "a ranged update carries exactly 'start' and 'rows'"
                )
            rows = entry["rows"]
            if not isinstance(rows, list) or not rows:
                raise ReproError("a ranged update's 'rows' must be a non-empty list")
            try:
                start = int(entry["start"])
            except (TypeError, ValueError):
                raise ReproError("a ranged update's 'start' must be an integer") from None
            pairs.extend((start + offset, row) for offset, row in enumerate(rows))
        elif isinstance(entry, dict):
            if "position" not in entry or "distribution" not in entry:
                raise ReproError(
                    "each update object needs 'position' and 'distribution' "
                    "(or 'start' and 'rows' for a ranged update)"
                )
            pairs.append((entry["position"], entry["distribution"]))
        elif isinstance(entry, (list, tuple)) and len(entry) == 2:
            pairs.append((entry[0], entry[1]))
        else:
            raise ReproError(
                "each update must be an object with position/distribution, "
                "an object with start/rows, or a [position, distribution] pair"
            )
    return pairs
