"""The serving layer: a cached query front-end over any built index.

:class:`QueryService` fronts an :class:`~repro.indexes.base.UncertainStringIndex`
(monolithic or sharded, freshly built or reloaded from the binary store) with
pattern normalization, request deduplication and an LRU result cache — the
piece that turns the library's indexes into something that can serve skewed
production traffic.  The CLI's ``serve`` sub-command wraps it in a
line-oriented stdin/stdout JSON loop; ``serve-http`` puts it behind
:class:`~repro.service.server.HttpServer`, a stdlib-only asyncio HTTP/1.1
JSON API with cross-request micro-batching
(:mod:`~repro.service.batching`), per-client rate limiting, load shedding
and Prometheus-format metrics (:mod:`~repro.service.metrics`).
"""

from .query_service import QueryService

__all__ = [
    "QueryService",
    "HttpServer",
    "AsyncHttpClient",
    "MicroBatcher",
    "Supervisor",
]


def __getattr__(name):
    # Lazy re-exports: importing QueryService must not pull asyncio server
    # machinery into every CLI invocation.
    if name == "HttpServer":
        from .server import HttpServer

        return HttpServer
    if name == "AsyncHttpClient":
        from .client import AsyncHttpClient

        return AsyncHttpClient
    if name == "MicroBatcher":
        from .batching import MicroBatcher

        return MicroBatcher
    if name == "Supervisor":
        from .supervisor import Supervisor

        return Supervisor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
