"""The serving layer: a cached query front-end over any built index.

:class:`QueryService` fronts an :class:`~repro.indexes.base.UncertainStringIndex`
(monolithic or sharded, freshly built or reloaded from the binary store) with
pattern normalization, request deduplication and an LRU result cache — the
piece that turns the library's indexes into something that can serve skewed
production traffic.  The CLI's ``serve`` sub-command wraps it in a
line-oriented stdin/stdout JSON loop.
"""

from .query_service import QueryService

__all__ = ["QueryService"]
