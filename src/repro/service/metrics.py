"""Prometheus-text-format metrics for the serving layer (stdlib only).

A tiny metrics kernel — counters, callback gauges and fixed-bucket
histograms with optional labels — that renders the `Prometheus text
exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
consumed by any Prometheus-compatible scraper.  The HTTP server's
``GET /metrics`` route renders one :class:`MetricsRegistry` plus a typed
projection of the live :meth:`QueryService.stats` counters.

No external client library: the box this runs on is stdlib-only, and the
text format is small enough to emit directly.
"""

from __future__ import annotations

import math
from collections.abc import Callable

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "render_service_stats",
    "render_cluster_stats",
]

#: Request-latency buckets (seconds): 100µs .. 2.5s, log-ish spaced.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Micro-batch size buckets (requests coalesced into one ``query_many``).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _format_value(value: float) -> str:
    """Prometheus sample value: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing sample (one labelled series)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (one labelled series).

    ``observe`` is O(#buckets) with per-bucket *non*-cumulative counts;
    rendering accumulates them into the Prometheus cumulative ``le`` form.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # trailing slot: +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for slot, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[slot] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Good enough for benchmark reporting (p50/p99 at bucket granularity);
        Prometheus itself computes quantiles server-side from the buckets.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for slot, bound in enumerate(self.buckets):
            seen += self.counts[slot]
            if seen >= target:
                return bound
        return math.inf


class MetricsRegistry:
    """Named metric families with labels, rendered as Prometheus text.

    Families are created lazily: ``counter``/``histogram`` return the live
    child series for a label set, ``gauge`` registers a zero-argument
    callback sampled at render time (the natural shape for queue depths and
    connection counts the server already tracks).
    """

    def __init__(self, namespace: str = "repro") -> None:
        self._namespace = namespace
        # name -> (type, help, {label-tuple: series-or-callback})
        self._families: dict[str, tuple[str, str, dict]] = {}

    def _family(self, name: str, kind: str, help_text: str) -> dict:
        full = f"{self._namespace}_{name}"
        family = self._families.get(full)
        if family is None:
            family = (kind, help_text, {})
            self._families[full] = family
        elif family[0] != kind:
            raise ValueError(f"metric {full} already registered as {family[0]}")
        return family[2]

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        series = self._family(name, "counter", help_text)
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = series.get(key)
        if child is None:
            child = series[key] = Counter()
        return child

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        series = self._family(name, "histogram", help_text)
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        child = series.get(key)
        if child is None:
            child = series[key] = Histogram(buckets)
        return child

    def gauge(
        self, name: str, fn: Callable[[], float], help_text: str = "", **labels: str
    ) -> None:
        series = self._family(name, "gauge", help_text)
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series[key] = fn

    def render(self) -> str:
        """The Prometheus text exposition of every registered family."""
        lines: list[str] = []
        for name, (kind, help_text, series) in sorted(self._families.items()):
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, child in sorted(series.items()):
                if kind == "counter":
                    lines.append(
                        f"{name}{_format_labels(labels)} {_format_value(child.value)}"
                    )
                elif kind == "gauge":
                    lines.append(
                        f"{name}{_format_labels(labels)} {_format_value(float(child()))}"
                    )
                else:  # histogram
                    cumulative = 0
                    for slot, bound in enumerate((*child.buckets, math.inf)):
                        cumulative += child.counts[slot]
                        bucket_labels = (*labels, ("le", _format_value(bound)))
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(labels)} {_format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{_format_labels(labels)} {child.count}")
        return "\n".join(lines) + "\n"


#: ``QueryService.stats()`` keys that are monotone counters (the rest of the
#: numeric keys render as gauges).
_STATS_COUNTERS = (
    "queries", "hits", "cache_hits", "dedup_hits", "misses", "evictions",
    "updates", "invalidations",
)

_STATS_GAUGES = (
    "hit_rate", "entries", "capacity", "generation", "index_generation",
)


def render_service_stats(stats: dict, namespace: str = "repro") -> str:
    """One-scrape projection of :meth:`QueryService.stats` to Prometheus text.

    Called per scrape with a single ``stats()`` snapshot so every exported
    sample is from the same instant (wiring each key as its own callback
    gauge would re-snapshot the service once per metric).
    """
    lines: list[str] = []
    for key in _STATS_COUNTERS:
        name = f"{namespace}_service_{key}_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(float(stats[key]))}")
    for key in _STATS_GAUGES:
        name = f"{namespace}_service_{key}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(stats[key]))}")
    name = f"{namespace}_service_cache_enabled"
    lines.append(f"# TYPE {name} gauge")
    lines.append(f"{name} {1 if stats['cache_enabled'] else 0}")
    return "\n".join(lines) + "\n"


#: Per-worker series exported with a ``worker`` label from each worker's
#: stats snapshot: (metric suffix, type, section, key).
_CLUSTER_WORKER_SERIES = (
    ("requests_total", "counter", "server", "requests"),
    ("rate_limited_total", "counter", "server", "rate_limited"),
    ("load_shed_total", "counter", "server", "shed"),
    ("timeouts_total", "counter", "server", "timeouts"),
    ("queries_total", "counter", "service", "queries"),
    ("hits_total", "counter", "service", "hits"),
    ("misses_total", "counter", "service", "misses"),
    ("invalidations_total", "counter", "service", "invalidations"),
)

#: Cluster-wide totals summed across workers: (metric name, section, key).
_CLUSTER_TOTALS = (
    ("http_requests_total", "server", "requests"),
    ("http_rate_limited_total", "server", "rate_limited"),
    ("http_load_shed_total", "server", "shed"),
    ("http_timeouts_total", "server", "timeouts"),
    ("service_queries_total", "service", "queries"),
    ("service_hits_total", "service", "hits"),
    ("service_cache_hits_total", "service", "cache_hits"),
    ("service_dedup_hits_total", "service", "dedup_hits"),
    ("service_misses_total", "service", "misses"),
    ("service_evictions_total", "service", "evictions"),
    ("service_invalidations_total", "service", "invalidations"),
)


def render_cluster_stats(
    workers: dict, supervisor: dict, namespace: str = "repro"
) -> str:
    """One ``/metrics`` scrape for the whole prefork cluster.

    ``workers`` maps worker numbers to the per-worker stats snapshots the
    supervisor collected (``{"service": ..., "server": ..., "memory": ...}``);
    ``supervisor`` carries the cluster-level counters (live workers,
    respawns, generation, applied updates).  The exposition has two layers:
    per-worker series labelled ``worker="N"`` (so a scraper can spot one
    worker running hot or cold) and *summed* totals under the same metric
    names the single-process server exports — dashboards keep working when
    ``--workers`` changes.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, samples: list[tuple[str, float]]) -> None:
        full = f"{namespace}_{name}"
        lines.append(f"# TYPE {full} {kind}")
        for label_text, value in samples:
            lines.append(f"{full}{label_text} {_format_value(float(value))}")

    emit("cluster_workers", "gauge", [("", supervisor.get("workers", len(workers)))])
    emit("cluster_respawns_total", "counter", [("", supervisor.get("respawns", 0))])
    emit("cluster_generation", "gauge", [("", supervisor.get("generation", 0))])
    emit("cluster_updates_total", "counter", [("", supervisor.get("updates", 0))])
    # 1 while the cluster serves a rolled-back generation after a persist
    # failure (writes answer 503 until a refresh succeeds again).
    emit(
        "cluster_degraded", "gauge", [("", 1 if supervisor.get("degraded") else 0)]
    )
    ordered = sorted(workers.items(), key=lambda item: int(item[0]))
    for suffix, kind, section, key in _CLUSTER_WORKER_SERIES:
        emit(
            f"cluster_worker_{suffix}",
            kind,
            [
                (f'{{worker="{number}"}}', snapshot.get(section, {}).get(key, 0))
                for number, snapshot in ordered
            ],
        )
    memory_series = (
        ("cluster_worker_rss_peak_bytes", "peak_rss_bytes"),
        ("cluster_worker_shared_bytes", "shared_bytes"),
        ("cluster_worker_private_bytes", "private_bytes"),
    )
    for name, key in memory_series:
        samples = [
            (f'{{worker="{number}"}}', snapshot["memory"][key])
            for number, snapshot in ordered
            if snapshot.get("memory", {}).get(key) is not None
        ]
        if samples:
            emit(name, "gauge", samples)
    for name, section, key in _CLUSTER_TOTALS:
        total = sum(
            snapshot.get(section, {}).get(key, 0) for _, snapshot in ordered
        )
        emit(name, "counter", [("", total)])
    tenants: dict[str, float] = {}
    for _, snapshot in ordered:
        for tenant, count in (
            snapshot.get("server", {}).get("rate_limited_by_tenant", {}).items()
        ):
            tenants[tenant] = tenants.get(tenant, 0) + count
    if tenants:
        emit(
            "http_rate_limited_by_tenant_total",
            "counter",
            [
                (f'{{tenant="{tenant}"}}', count)
                for tenant, count in sorted(tenants.items())
            ],
        )
    return "\n".join(lines) + "\n"
