"""Asyncio HTTP/1.1 JSON API over a shared :class:`QueryService` (stdlib only).

The network serving layer: one event loop, one ``QueryService``, and a
small, tested HTTP/1.1 request parser on top of ``asyncio.start_server``
(no web framework — the box is stdlib-only, and the protocol subset we need
is tiny).  Routes:

=======================  ====================================================
``POST /query``          one query object → one result (micro-batched)
``POST /query/batch``    ``{"queries": [...]}`` → per-item results/errors
``POST /update``         ``{"updates": [...]}`` → update report (serialized)
``GET /stats``           service + server counters (JSON)
``GET /healthz``         liveness probe
``GET /metrics``         Prometheus text format
=======================  ====================================================

Three layers above routing:

* **micro-batching** — concurrent ``POST /query`` requests arriving within
  a short window are coalesced into one ``query_many`` execution
  (:class:`~repro.service.batching.MicroBatcher`), so singleton HTTP
  requests get the vectorized batch path and in-batch deduplication;
* **robustness** — per-client token-bucket rate limiting, a bounded
  admission queue with load shedding (HTTP 429 + ``Retry-After``),
  per-request timeouts (HTTP 503), and graceful shutdown that stops
  accepting, flushes the pending micro-batch and drains in-flight requests
  before closing.  Updates and query batches share one writer lock, so an
  update never interleaves with a coalesced batch;
* **observability** — every :meth:`QueryService.stats` counter plus
  request/latency histograms, batch-size histogram and queue depth exported
  in Prometheus text format.

Request and response bodies are JSON; query/update payloads are exactly the
stdin serve loop's (:mod:`repro.service.protocol`), so a request is valid on
one transport iff it is valid on the other.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

from ..errors import ReproError
from .batching import MicroBatcher, RateLimiter
from .metrics import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
    render_service_stats,
)
from .protocol import parse_updates, query_from_payload

__all__ = ["HttpServer", "HttpError", "Request", "read_request", "run_server"]

#: Parser limits: request-line/header sizes are bounded by the stream limit.
MAX_HEADERS = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Errors a malformed request payload can legitimately raise (HTTP 400).
_BAD_REQUEST_ERRORS = (ReproError, TypeError, ValueError, KeyError, OverflowError)


class HttpError(Exception):
    """A protocol-level error with the HTTP status to answer it with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request (method, path, lowercase headers, raw body)."""

    __slots__ = ("method", "target", "path", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict, body: bytes) -> None:
        self.method = method
        self.target = target
        self.path = target.split("?", 1)[0]
        self.headers = headers
        self.body = body

    def json(self):
        """The body parsed as JSON (:class:`HttpError` 400 when malformed)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise HttpError(400, f"invalid JSON body: {error}") from error


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.x request from ``reader``.

    Returns ``None`` on a clean end-of-stream before the request line (the
    peer closed an idle keep-alive connection).  Raises :class:`HttpError`
    for malformed or unsupported requests, ``asyncio.IncompleteReadError`` /
    ``ConnectionResetError`` when the peer vanishes mid-request.
    """
    try:
        line = await reader.readline()
    except ValueError as error:  # request line over the stream limit
        raise HttpError(431, "request line too long") from error
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpError(505, f"unsupported protocol {version}")
    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            raw = await reader.readline()
        except ValueError as error:
            raise HttpError(431, "header line too long") from error
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise asyncio.IncompleteReadError(partial=b"", expected=2)
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many headers")
        name, separator, value = raw.decode("latin-1").partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line {name.strip()!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as error:
        raise HttpError(400, f"invalid Content-Length {length_text!r}") from error
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), target, headers, body)


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload,
    *,
    keep_alive: bool,
    content_type: str = "application/json",
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> None:
    """Serialize one response (JSON unless ``payload`` is pre-rendered text)."""
    if isinstance(payload, (bytes, bytearray)):
        body = bytes(payload)
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = json.dumps(payload).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in extra_headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


class HttpServer:
    """The asyncio HTTP serving front-end over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The shared :class:`~repro.service.QueryService`.
    batch_window / max_batch / batching:
        Micro-batching knobs (see :class:`MicroBatcher`); ``batching=False``
        is the per-request baseline mode.
    queue_limit:
        Maximum admitted-but-unanswered requests; beyond it new work is
        shed with HTTP 429 + ``Retry-After``.
    rate / burst:
        Per-client token-bucket rate limit in requests/second (0 disables).
    tenant_classes:
        Named quota tiers: ``{"gold": (500.0, 1000.0), "default": (50.0, 100.0)}``.
        Requests carrying an ``X-Tenant`` header are charged against their
        tenant's bucket at the class tier (unknown tenants use ``"default"``
        when configured); 429s are accounted per tenant in ``/metrics``.
    request_timeout:
        Per-request execution budget in seconds (HTTP 503 on expiry).
    drain_timeout:
        Graceful-shutdown budget for in-flight requests.
    cluster:
        Multi-worker adapter (see :mod:`repro.service.supervisor`).  When
        set, ``POST /update`` is forwarded to the supervisor (which applies
        it once, persists, and fans the reload out to every worker) and
        ``GET /metrics`` / ``GET /stats`` answer with cluster-wide
        aggregates instead of this process's counters.
    """

    def __init__(
        self,
        service,
        *,
        batch_window: float = 0.002,
        max_batch: int = 64,
        batching: bool = True,
        queue_limit: int = 256,
        rate: float = 0.0,
        burst: float | None = None,
        tenant_classes: dict | None = None,
        request_timeout: float = 10.0,
        drain_timeout: float = 5.0,
        cluster=None,
    ) -> None:
        self._service = service
        self._cluster = cluster
        self._write_lock = asyncio.Lock()
        self.metrics = MetricsRegistry()
        self._batch_sizes = self.metrics.histogram(
            "batch_size",
            "Requests coalesced per query_many execution",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._batcher = MicroBatcher(
            service,
            lock=self._write_lock,
            window=batch_window,
            max_batch=max_batch,
            enabled=batching,
            on_batch=self._batch_sizes.observe,
        )
        self._limiter = (
            RateLimiter(rate, burst, classes=tenant_classes)
            if rate > 0 or tenant_classes
            else None
        )
        self._queue_limit = max(1, int(queue_limit))
        self._request_timeout = float(request_timeout)
        self._drain_timeout = float(drain_timeout)
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._connection_tasks: set[asyncio.Task] = set()
        self._inflight = 0
        self._requests = 0
        self._shed = 0
        self._rate_limited = 0
        self._rate_limited_by_tenant: dict[str, int] = {}
        self._timeouts = 0
        self._stopping = False
        self.metrics.gauge(
            "http_inflight", lambda: self._inflight,
            "Admitted requests not yet answered",
        )
        self.metrics.gauge(
            "http_connections", lambda: len(self._connections),
            "Open client connections",
        )
        self.metrics.gauge(
            "http_batch_depth", lambda: self._batcher.depth,
            "Requests waiting in the current micro-batch window",
        )
        self.metrics.gauge(
            "http_queue_limit", lambda: self._queue_limit,
            "Admission queue capacity (load shedding beyond it)",
        )

    @property
    def write_lock(self) -> asyncio.Lock:
        """The single writer lock (updates, coalesced batches, index swaps)."""
        return self._write_lock

    # -- lifecycle ---------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0, *, sock=None
    ) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``.

        ``sock`` accepts an already-bound listening socket — a prefork worker
        passes the descriptor it inherited from the supervisor, so N workers
        accept from one shared socket and the port never rebinds.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def shutdown(self, *, drain: bool = True) -> dict:
        """Stop accepting, drain in-flight work, close every connection.

        Returns a small report (drained request count, whether the drain
        budget expired) so callers — the benchmark, the CLI — can assert the
        shutdown really was graceful.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Requests parked in the batch window are already admitted, so they
        # are counted in _inflight; adding the batcher depth would double
        # count them.
        drained = self._inflight
        expired = False
        if drain:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self._drain_timeout
            # Flush *inside* the loop, not once before it: a request that was
            # admitted (inflight incremented) but whose submit task has not
            # started yet reaches the batcher only after the first drain —
            # a single flush would leave it parked in a window nobody closes.
            await self._batcher.drain()
            while self._inflight > 0:
                if loop.time() >= deadline:
                    expired = True
                    break
                await asyncio.sleep(0.002)
                await self._batcher.drain()
        for writer in list(self._connections):
            writer.close()
        if self._connection_tasks:
            # Let every connection handler observe its EOF and exit before
            # the event loop goes away (otherwise loop teardown cancels them
            # mid-read and logs spurious CancelledErrors).
            await asyncio.wait(list(self._connection_tasks), timeout=1.0)
        return {"drained": drained, "drain_expired": expired}

    # -- connection handling -------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else str(peer)
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._connection_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    _write_response(
                        writer, error.status, {"error": error.message},
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError, ConnectionResetError, ValueError,
                ):
                    break
                if request is None:
                    break
                keep_alive = self._keep_alive(request)
                try:
                    await self._respond(request, client, writer, keep_alive)
                except (ConnectionResetError, BrokenPipeError):
                    break
                if not keep_alive:
                    break
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _keep_alive(self, request: Request) -> bool:
        if self._stopping:
            return False
        connection = request.headers.get("connection", "").lower()
        if "close" in connection:
            return False
        return True

    async def _respond(
        self,
        request: Request,
        client: str,
        writer: asyncio.StreamWriter,
        keep_alive: bool,
    ) -> None:
        started = time.perf_counter()
        route = f"{request.method} {request.path}"
        status, payload, content_type, extra = await self._dispatch(request, client)
        elapsed = time.perf_counter() - started
        self._requests += 1
        known = request.path in (
            "/query", "/query/batch", "/update", "/stats", "/healthz", "/metrics",
        )
        label = route if known else "unknown"
        self.metrics.counter(
            "http_requests_total", "Requests by route and status code",
            route=label, code=str(status),
        ).inc()
        self.metrics.histogram(
            "http_request_seconds", "Request latency by route", route=label,
        ).observe(elapsed)
        _write_response(
            writer, status, payload,
            keep_alive=keep_alive, content_type=content_type, extra_headers=extra,
        )
        await writer.drain()

    # -- routing ---------------------------------------------------------------
    async def _dispatch(
        self, request: Request, client: str
    ) -> tuple[int, object, str, tuple]:
        """Answer one request: ``(status, payload, content type, headers)``."""
        path, method = request.path, request.method
        try:
            if path == "/healthz":
                if method != "GET":
                    return self._method_not_allowed("GET")
                health = {
                    "status": "ok",
                    "generation": self._service.generation,
                    "stopping": self._stopping,
                    # Degraded = the last store persist failed and the
                    # cluster rolled back to its previous committed
                    # generation; reads still serve, writes answer 503.
                    "degraded": self.degraded,
                }
                if self._cluster is not None:
                    health["worker"] = self._cluster.number
                    health["pid"] = os.getpid()
                return 200, health, "application/json", ()
            if path == "/stats":
                if method != "GET":
                    return self._method_not_allowed("GET")
                if self._cluster is not None:
                    payload = await self._cluster.cluster_stats()
                    return 200, payload, "application/json", ()
                return 200, {
                    "service": self._service.stats(),
                    "server": self.server_stats(),
                }, "application/json", ()
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed("GET")
                if self._cluster is not None:
                    text = await self._cluster.scrape()
                else:
                    text = self.metrics.render() + render_service_stats(
                        self._service.stats()
                    )
                return 200, text, "text/plain; version=0.0.4", ()
            if path == "/query":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return await self._handle_query(request, client)
            if path == "/query/batch":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return await self._handle_query_batch(request, client)
            if path == "/update":
                if method != "POST":
                    return self._method_not_allowed("POST")
                return await self._handle_update(request)
            return 404, {"error": f"unknown path {path!r}"}, "application/json", ()
        except HttpError as error:
            return error.status, {"error": error.message}, "application/json", ()
        except _BAD_REQUEST_ERRORS as error:
            return 400, {"error": str(error)}, "application/json", ()

    @staticmethod
    def _method_not_allowed(allowed: str) -> tuple[int, dict, str, tuple]:
        return (
            405,
            {"error": f"method not allowed; use {allowed}"},
            "application/json",
            (("Allow", allowed),),
        )

    def _admit(
        self, client: str, cost: float = 1.0, tenant: str | None = None
    ) -> tuple[int, dict, str, tuple] | None:
        """Rate-limit and load-shed checks; a response tuple when rejected."""
        if self._limiter is not None:
            retry = self._limiter.acquire(client, cost, tenant=tenant)
            if retry > 0.0:
                self._rate_limited += 1
                label = tenant if tenant is not None else "default"
                self._rate_limited_by_tenant[label] = (
                    self._rate_limited_by_tenant.get(label, 0) + 1
                )
                self.metrics.counter(
                    "http_rate_limited_total", "Requests rejected by rate limiting",
                    tenant=label,
                ).inc()
                return (
                    429,
                    {"error": "rate limit exceeded"},
                    "application/json",
                    (("Retry-After", str(max(1, round(retry)))),),
                )
        if self._inflight >= self._queue_limit:
            self._shed += 1
            self.metrics.counter(
                "http_load_shed_total", "Requests shed by the admission queue",
            ).inc()
            return (
                429,
                {"error": "server overloaded, request shed"},
                "application/json",
                (("Retry-After", "1"),),
            )
        return None

    async def _handle_query(
        self, request: Request, client: str
    ) -> tuple[int, object, str, tuple]:
        rejected = self._admit(client, tenant=request.headers.get("x-tenant"))
        if rejected is not None:
            return rejected
        payload = request.json()
        # Full admission-time validation: an invalid request is rejected
        # here, alone, instead of poisoning the batch it would join.
        query = self._service.validate(query_from_payload(payload))
        self._inflight += 1
        try:
            started = time.perf_counter()
            result, origin, generation = await asyncio.wait_for(
                self._batcher.submit(query), self._request_timeout
            )
            micros = 1e6 * (time.perf_counter() - started)
        except asyncio.TimeoutError:
            self._timeouts += 1
            self.metrics.counter(
                "http_timeouts_total", "Requests that exceeded the execution budget",
            ).inc()
            return (
                503,
                {"error": f"request timed out after {self._request_timeout:g}s"},
                "application/json",
                (("Retry-After", "1"),),
            )
        finally:
            self._inflight -= 1
        response = result.as_dict()
        response["cached"] = origin != "miss"
        response["micros"] = round(micros, 3)
        response["generation"] = generation
        return 200, response, "application/json", ()

    async def _handle_query_batch(
        self, request: Request, client: str
    ) -> tuple[int, object, str, tuple]:
        payload = request.json()
        if isinstance(payload, dict):
            entries = payload.get("queries")
        else:
            entries = payload
        if not isinstance(entries, list):
            raise HttpError(400, "a batch request needs a 'queries' list")
        rejected = self._admit(
            client,
            cost=max(1.0, float(len(entries))),
            tenant=request.headers.get("x-tenant"),
        )
        if rejected is not None:
            return rejected
        # Per-item validation: invalid entries answer with their own error
        # object; the valid remainder still executes as one batch.
        queries: list = []
        slots: list[int | None] = []
        errors: list[str | None] = []
        for entry in entries:
            try:
                if isinstance(entry, (str, list)):
                    query = self._service.validate(entry)
                else:
                    query = self._service.validate(query_from_payload(entry))
            except _BAD_REQUEST_ERRORS as error:
                slots.append(None)
                errors.append(str(error))
            else:
                slots.append(len(queries))
                errors.append(None)
                queries.append(query)
        self._inflight += 1
        try:
            async with self._write_lock:
                results, origins = (
                    self._service.query_many(queries, provenance=True)
                    if queries else ([], [])
                )
                generation = self._service.generation
        finally:
            self._inflight -= 1
        items = []
        for slot, error in zip(slots, errors):
            if slot is None:
                items.append({"error": error})
            else:
                item = results[slot].as_dict()
                item["cached"] = origins[slot] != "miss"
                items.append(item)
        return 200, {
            "count": len(items),
            "results": items,
            "generation": generation,
        }, "application/json", ()

    async def _handle_update(self, request: Request) -> tuple[int, object, str, tuple]:
        payload = request.json()
        if isinstance(payload, dict):
            entries = payload.get("updates")
        else:
            entries = payload
        pairs = parse_updates(entries)
        if self._cluster is not None:
            # Write-path coordination: the supervisor applies the update
            # once, persists the new store generation, and broadcasts the
            # reload; this worker's reply arrives only after *every* worker
            # acknowledged, so a query issued after the update response can
            # never see the previous generation.
            self._inflight += 1
            try:
                report = await self._cluster.update(pairs)
            except _BAD_REQUEST_ERRORS as error:
                return 400, {"error": str(error)}, "application/json", ()
            finally:
                self._inflight -= 1
            return 200, {"update": report}, "application/json", ()
        self._inflight += 1
        try:
            # The single writer lock: an update never interleaves with a
            # coalesced query batch (or another update).
            async with self._write_lock:
                try:
                    report = self._service.update(pairs)
                except _BAD_REQUEST_ERRORS as error:
                    return 400, {"error": str(error)}, "application/json", ()
        finally:
            self._inflight -= 1
        return 200, {"update": report}, "application/json", ()

    # -- introspection ----------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether this server is part of a degraded (rolled-back) cluster."""
        return bool(getattr(self._cluster, "degraded", False))

    def server_stats(self) -> dict:
        """Server-side counters for ``/stats`` and tests."""
        return {
            "requests": self._requests,
            "inflight": self._inflight,
            "connections": len(self._connections),
            "queue_limit": self._queue_limit,
            "shed": self._shed,
            "rate_limited": self._rate_limited,
            "rate_limited_by_tenant": dict(self._rate_limited_by_tenant),
            "timeouts": self._timeouts,
            "stopping": self._stopping,
            "degraded": self.degraded,
            "batching": self._batcher.stats(),
        }


async def run_server(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    ready=None,
    **options,
) -> None:
    """Start an :class:`HttpServer` and serve until SIGINT/SIGTERM.

    ``ready(host, port)`` is called once the socket is bound (the CLI prints
    its "serving on" line through it, which the CI smoke test waits for).
    Shutdown is graceful: pending micro-batches are flushed and in-flight
    requests drained before the process exits.
    """
    server = HttpServer(service, **options)
    bound_host, bound_port = await server.start(host, port)
    if ready is not None:
        ready(bound_host, bound_port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without loop signal handlers
    try:
        await stop.wait()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        await server.shutdown()
