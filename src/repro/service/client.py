"""A minimal asyncio HTTP/1.1 client for the serving layer (stdlib only).

Just enough HTTP for the closed-loop benchmark, the soak tests and the CI
smoke run: keep-alive connections, JSON request bodies, Content-Length
responses.  Not a general-purpose client — it speaks exactly the subset
:mod:`repro.service.server` emits, which keeps both ends small and tested
against each other.

Resilience knobs (all off by default, so benchmarks measure the raw server
behavior): a connect/read ``timeout``, and ``retries`` with jittered
exponential backoff.  Retries cover connection failures, read timeouts and
throttle/degraded answers (HTTP 429/503), honoring the server's
``Retry-After`` header when it is larger than the computed backoff.
"""

from __future__ import annotations

import asyncio
import json
import random

__all__ = ["HttpResponse", "AsyncHttpClient"]

#: Status codes worth retrying: throttled (429) and degraded/overload (503).
_RETRY_STATUSES = frozenset({429, 503})

_CONNECTION_ERRORS = (ConnectionError, asyncio.IncompleteReadError, OSError)


class HttpResponse:
    """One parsed response: status, lowercase headers, raw body."""

    __slots__ = ("status", "reason", "headers", "body")

    def __init__(self, status: int, reason: str, headers: dict, body: bytes) -> None:
        self.status = status
        self.reason = reason
        self.headers = headers
        self.body = body

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    def retry_after(self) -> float | None:
        """The ``Retry-After`` delay in seconds, when the server sent one."""
        value = self.headers.get("retry-after")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"HttpResponse(status={self.status}, bytes={len(self.body)})"


class AsyncHttpClient:
    """One keep-alive connection to an :class:`~repro.service.server.HttpServer`.

    Usage::

        client = await AsyncHttpClient.connect(host, port)
        response = await client.request("POST", "/query", {"pattern": "AB"})
        assert response.status == 200
        await client.close()

    A connection issues one request at a time (HTTP/1.1 without pipelining);
    open several clients for concurrency — that is exactly what the
    closed-loop benchmark does.

    ``timeout`` bounds the connect and each response read; ``retries`` > 0
    re-issues a failed request (connection error, timeout, 429 or 503) up
    to that many extra times with jittered exponential backoff between
    ``backoff`` and ``max_backoff`` seconds, reconnecting first when the
    connection is no longer trustworthy.  Both default off so existing
    tests and benchmarks observe every raw response.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff = float(backoff)
        self._max_backoff = float(max_backoff)

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        timeout: float | None = None,
        retries: int = 0,
        backoff: float = 0.05,
        max_backoff: float = 2.0,
    ) -> "AsyncHttpClient":
        reader, writer = await cls._open(host, port, timeout)
        return cls(
            reader,
            writer,
            host=host,
            port=port,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            max_backoff=max_backoff,
        )

    @staticmethod
    async def _open(host: str, port: int, timeout: float | None):
        if timeout is None:
            return await asyncio.open_connection(host, port)
        return await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )

    async def _reconnect(self) -> None:
        if self._host is None or self._port is None:
            raise ConnectionError("cannot reconnect: connection-only client")
        try:
            self._writer.close()
        except Exception:  # pragma: no cover - old socket already broken
            pass
        self._reader, self._writer = await self._open(
            self._host, self._port, self._timeout
        )

    def _retry_delay(self, attempt: int, response: HttpResponse | None) -> float:
        delay = min(self._max_backoff, self._backoff * (2**attempt))
        delay *= 1.0 + 0.25 * random.random()
        if response is not None:
            server_wait = response.retry_after()
            if server_wait is not None:
                delay = max(delay, server_wait)
        return delay

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        *,
        close: bool = False,
        headers: dict | None = None,
        retries: int | None = None,
    ) -> HttpResponse:
        """Send one request and read its response (JSON body when given).

        ``headers`` adds extra request headers — e.g. ``{"X-Tenant": "gold"}``
        to exercise the per-tenant quota classes.  ``retries`` overrides the
        client-level retry budget for this request only.
        """
        budget = self._retries if retries is None else max(0, int(retries))
        attempt = 0
        reconnect = False
        while True:
            try:
                if reconnect:
                    await self._reconnect()
                    reconnect = False
                response = await self._issue(method, path, payload, close, headers)
            except (asyncio.TimeoutError, *_CONNECTION_ERRORS):
                # A timed-out or broken connection may hold a half-read
                # response; it must not be reused for the retry.
                reconnect = True
                if attempt >= budget:
                    raise
                await asyncio.sleep(self._retry_delay(attempt, None))
                attempt += 1
                continue
            if response.status in _RETRY_STATUSES and attempt < budget:
                await asyncio.sleep(self._retry_delay(attempt, response))
                attempt += 1
                continue
            return response

    async def _issue(
        self, method: str, path: str, payload, close: bool, headers: dict | None
    ) -> HttpResponse:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = [
            f"{method} {path} HTTP/1.1",
            "Host: localhost",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if body:
            head.append("Content-Type: application/json")
        if headers:
            head.extend(f"{name}: {value}" for name, value in headers.items())
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        if self._timeout is None:
            return await self._read_response()
        return await asyncio.wait_for(self._read_response(), timeout=self._timeout)

    async def _read_response(self) -> HttpResponse:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        parts = line.decode("latin-1").strip().split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {line!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise ConnectionError("connection closed inside response headers")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return HttpResponse(status, reason, headers, body)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
