"""A minimal asyncio HTTP/1.1 client for the serving layer (stdlib only).

Just enough HTTP for the closed-loop benchmark, the soak tests and the CI
smoke run: keep-alive connections, JSON request bodies, Content-Length
responses.  Not a general-purpose client — it speaks exactly the subset
:mod:`repro.service.server` emits, which keeps both ends small and tested
against each other.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["HttpResponse", "AsyncHttpClient"]


class HttpResponse:
    """One parsed response: status, lowercase headers, raw body."""

    __slots__ = ("status", "reason", "headers", "body")

    def __init__(self, status: int, reason: str, headers: dict, body: bytes) -> None:
        self.status = status
        self.reason = reason
        self.headers = headers
        self.body = body

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self):
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"HttpResponse(status={self.status}, bytes={len(self.body)})"


class AsyncHttpClient:
    """One keep-alive connection to an :class:`~repro.service.server.HttpServer`.

    Usage::

        client = await AsyncHttpClient.connect(host, port)
        response = await client.request("POST", "/query", {"pattern": "AB"})
        assert response.status == 200
        await client.close()

    A connection issues one request at a time (HTTP/1.1 without pipelining);
    open several clients for concurrency — that is exactly what the
    closed-loop benchmark does.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncHttpClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        payload=None,
        *,
        close: bool = False,
        headers: dict | None = None,
    ) -> HttpResponse:
        """Send one request and read its response (JSON body when given).

        ``headers`` adds extra request headers — e.g. ``{"X-Tenant": "gold"}``
        to exercise the per-tenant quota classes.
        """
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = [
            f"{method} {path} HTTP/1.1",
            "Host: localhost",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        if body:
            head.append("Content-Type: application/json")
        if headers:
            head.extend(f"{name}: {value}" for name, value in headers.items())
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()
        return await self._read_response()

    async def _read_response(self) -> HttpResponse:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        parts = line.decode("latin-1").strip().split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line {line!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise ConnectionError("connection closed inside response headers")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await self._reader.readexactly(length) if length else b""
        return HttpResponse(status, reason, headers, body)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
