"""Query pattern samplers (the experimental protocol of Section 7.1).

The paper samples query patterns uniformly at random from the z-estimation
of each weighted string: a pattern of length ``m`` is a property-respecting
window of one of the ``⌊z⌋`` strings, so it is guaranteed to have at least
one z-valid occurrence.  Negative and mutated samplers are also provided for
tests and robustness experiments.
"""

from __future__ import annotations

import numpy as np

from ..core.estimation import ZEstimation, build_z_estimation
from ..core.weighted_string import WeightedString
from ..errors import DatasetError

__all__ = [
    "paper_pattern_count",
    "sample_valid_patterns",
    "sample_random_patterns",
    "sample_zipf_workload",
    "mutate_pattern",
]


def paper_pattern_count(length: int, z: float, *, cap: int | None = None) -> int:
    """The paper's ``⌊nz/200⌋`` pattern count (optionally capped)."""
    count = max(1, int(length * z) // 200)
    if cap is not None:
        count = min(count, cap)
    return count


def sample_valid_patterns(
    source: WeightedString,
    z: float,
    m: int,
    count: int,
    *,
    estimation: ZEstimation | None = None,
    seed: int | None = None,
) -> list[list[int]]:
    """Sample ``count`` patterns of length ``m`` from the z-estimation.

    Every returned pattern is a property-respecting window of one of the
    estimation strings and therefore has at least one z-valid occurrence in
    the weighted string (the paper's query workload).
    """
    if m <= 0:
        raise DatasetError("pattern length must be positive")
    if count < 0:
        raise DatasetError("pattern count must be non-negative")
    if estimation is None:
        estimation = build_z_estimation(source, z)
    n = estimation.length
    if n < m:
        raise DatasetError(f"patterns of length {m} cannot fit a string of length {n}")
    rng = np.random.default_rng(seed)
    starts = np.arange(n - m + 1, dtype=np.int64)
    candidates: list[tuple[int, int]] = []
    for j in range(estimation.width):
        valid = estimation.ends[j][: n - m + 1] >= starts + m - 1
        for start in np.nonzero(valid)[0]:
            candidates.append((j, int(start)))
    if not candidates:
        raise DatasetError(
            f"the {z:g}-estimation has no valid window of length {m}; "
            "lower m or raise z"
        )
    picks = rng.integers(0, len(candidates), size=count)
    patterns = []
    for pick in picks:
        j, start = candidates[int(pick)]
        patterns.append([int(code) for code in estimation.strings[j, start : start + m]])
    return patterns


def sample_random_patterns(
    source: WeightedString,
    m: int,
    count: int,
    *,
    seed: int | None = None,
) -> list[list[int]]:
    """Uniformly random patterns (mostly without valid occurrences)."""
    if m <= 0:
        raise DatasetError("pattern length must be positive")
    rng = np.random.default_rng(seed)
    return [
        [int(code) for code in rng.integers(0, source.sigma, size=m)]
        for _ in range(count)
    ]


def sample_zipf_workload(
    patterns: list,
    count: int,
    *,
    s: float = 1.2,
    seed: int | None = None,
) -> list:
    """A skewed request stream over a pattern pool (serving-workload model).

    Draws ``count`` requests where the pattern of rank ``r`` (1-based, in
    pool order) is requested with probability proportional to ``1/r^s`` —
    the classic Zipf model of production query traffic, in which a few hot
    patterns dominate.  This is the workload of the ``servemix`` experiment
    and :mod:`benchmarks.bench_query_service`.
    """
    if not patterns:
        raise DatasetError("the pattern pool of a Zipf workload cannot be empty")
    if count < 0:
        raise DatasetError("request count must be non-negative")
    ranks = np.arange(1, len(patterns) + 1, dtype=np.float64)
    weights = ranks ** (-float(s))
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(patterns), size=count, p=weights)
    return [patterns[int(pick)] for pick in picks]


def mutate_pattern(
    pattern: list[int],
    sigma: int,
    mutations: int,
    *,
    seed: int | None = None,
) -> list[int]:
    """Substitute ``mutations`` random positions of a pattern (robustness tests)."""
    if mutations < 0:
        raise DatasetError("mutations must be non-negative")
    rng = np.random.default_rng(seed)
    mutated = list(pattern)
    if not mutated:
        return mutated
    for position in rng.choice(len(mutated), size=min(mutations, len(mutated)), replace=False):
        original = mutated[int(position)]
        choices = [code for code in range(sigma) if code != original]
        if choices:
            mutated[int(position)] = int(rng.choice(choices))
    return mutated
