"""Genomic dataset generators mirroring the paper's SARS / EFM / HUMAN data.

The paper builds its genomic weighted strings from a reference sequence plus
a table of single-nucleotide polymorphisms (SNPs) with allele frequencies
estimated over a population of samples (Table 2).  With no network access,
this module reproduces the *generative structure* of those datasets:

* a random DNA reference of the requested length;
* a Δ-fraction of positions is polymorphic; each polymorphic position gets
  an alternative allele whose frequency is drawn from a Beta distribution
  fitted to low minor-allele frequencies (most SNPs are rare, a few are
  common), discretised over the requested number of samples;
* the weighted string assigns, at each position, the relative allele
  frequencies as letter probabilities — exactly the construction described
  in Section 7.1.

The presets reproduce the *characteristics* of Table 2 (σ = 4, Δ, number of
samples); their default lengths are scaled down so that the pure-Python
pipeline runs in seconds, and can be raised through ``length``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.alphabet import DNA
from ..core.weighted_string import WeightedString
from ..errors import DatasetError

__all__ = [
    "SNP",
    "GenomicDataset",
    "generate_genomic_dataset",
    "sars_like",
    "efm_like",
    "human_like",
]


@dataclass(frozen=True)
class SNP:
    """One simulated single-nucleotide polymorphism."""

    position: int
    reference_code: int
    alternative_code: int
    alternative_frequency: float

    def as_row(self) -> dict:
        """Dictionary form used by the VCF-like writer."""
        return {
            "position": self.position,
            "reference": DNA.letter(self.reference_code),
            "alternative": DNA.letter(self.alternative_code),
            "frequency": self.alternative_frequency,
        }


@dataclass
class GenomicDataset:
    """A simulated population of genomes as a weighted string."""

    name: str
    weighted_string: WeightedString
    reference_codes: np.ndarray
    snps: list[SNP]
    samples: int

    @property
    def length(self) -> int:
        """Reference length ``n``."""
        return len(self.weighted_string)

    @property
    def delta(self) -> float:
        """Fraction of polymorphic positions (Table 2's Δ)."""
        return self.weighted_string.delta

    def describe(self) -> dict:
        """Table 2-style characteristics of the dataset."""
        return {
            "name": self.name,
            "samples": self.samples,
            "length": self.length,
            "sigma": self.weighted_string.sigma,
            "delta_percent": 100.0 * self.delta,
            "snps": len(self.snps),
        }


def generate_genomic_dataset(
    name: str,
    length: int,
    samples: int,
    delta: float,
    *,
    seed: int | None = None,
    beta_shape: tuple[float, float] = (0.4, 4.0),
) -> GenomicDataset:
    """Generate a synthetic population of genomes as a weighted string.

    Parameters
    ----------
    name:
        Display name of the dataset (used by the registry and reports).
    length:
        Reference length ``n``.
    samples:
        Number of individuals the allele frequencies are estimated from;
        frequencies are discretised to multiples of ``1/samples`` like real
        allele counts.
    delta:
        Fraction of polymorphic positions (Table 2's Δ, e.g. ``0.036``).
    beta_shape:
        Shape parameters of the Beta distribution of minor-allele
        frequencies; the default is skewed towards rare variants.
    """
    if length < 0:
        raise DatasetError("length must be non-negative")
    if samples <= 0:
        raise DatasetError("samples must be positive")
    if not 0.0 <= delta <= 1.0:
        raise DatasetError("delta must be in [0, 1]")
    rng = np.random.default_rng(seed)
    reference = rng.integers(0, 4, size=length)
    matrix = np.zeros((length, 4), dtype=np.float64)
    matrix[np.arange(length), reference] = 1.0
    snp_count = int(round(delta * length))
    snp_positions = (
        rng.choice(length, size=snp_count, replace=False) if snp_count else np.empty(0, int)
    )
    snps: list[SNP] = []
    alpha, beta = beta_shape
    for position in np.sort(snp_positions):
        reference_code = int(reference[position])
        alternative_code = int(rng.choice([c for c in range(4) if c != reference_code]))
        frequency = float(rng.beta(alpha, beta))
        # Discretise to an allele count over the population, at least one copy.
        count = max(1, int(round(frequency * samples)))
        count = min(count, samples - 1) if samples > 1 else 1
        frequency = count / samples
        matrix[position, reference_code] = 1.0 - frequency
        matrix[position, alternative_code] = frequency
        snps.append(SNP(int(position), reference_code, alternative_code, frequency))
    weighted = WeightedString(matrix, DNA)
    return GenomicDataset(name, weighted, np.asarray(reference, dtype=np.int64), snps, samples)


def sars_like(length: int = 29_903, *, seed: int | None = 11) -> GenomicDataset:
    """A SARS-CoV-2-like dataset: 29,903 bp, 1,181 samples, Δ = 3.6 % (Table 2)."""
    return generate_genomic_dataset("SARS", length, samples=1_181, delta=0.036, seed=seed)


def efm_like(length: int = 200_000, *, seed: int | None = 13) -> GenomicDataset:
    """An E. faecium-like dataset: Δ = 6 %, 1,432 samples (paper length 2.96 Mbp).

    The default length is scaled down ~15× so the pure-Python pipeline stays
    laptop-scale; pass ``length=2_955_294`` to match the paper exactly.
    """
    return generate_genomic_dataset("EFM", length, samples=1_432, delta=0.06, seed=seed)


def human_like(length: int = 300_000, *, seed: int | None = 17) -> GenomicDataset:
    """A human-chr22-like dataset: Δ = 3.2 %, 2,504 samples (paper length 35.2 Mbp).

    The default length is scaled down ~117×; pass ``length=35_194_566`` to
    match the paper exactly (slow in pure Python).
    """
    return generate_genomic_dataset("HUMAN", length, samples=2_504, delta=0.032, seed=seed)
