"""Dataset generators and the named registry used by the benchmarks."""

from .genomes import (
    SNP,
    GenomicDataset,
    efm_like,
    generate_genomic_dataset,
    human_like,
    sars_like,
)
from .patterns import (
    mutate_pattern,
    paper_pattern_count,
    sample_random_patterns,
    sample_valid_patterns,
)
from .registry import DATASETS, DatasetSpec, dataset_characteristics, load_dataset
from .rssi import reduce_alphabet, rssi_family, rssi_like, scale_length
from .synthetic import (
    dirichlet_weighted_string,
    random_weighted_string,
    sparse_uncertainty_string,
)

__all__ = [
    "SNP",
    "GenomicDataset",
    "generate_genomic_dataset",
    "sars_like",
    "efm_like",
    "human_like",
    "rssi_like",
    "rssi_family",
    "scale_length",
    "reduce_alphabet",
    "random_weighted_string",
    "dirichlet_weighted_string",
    "sparse_uncertainty_string",
    "sample_valid_patterns",
    "sample_random_patterns",
    "mutate_pattern",
    "paper_pattern_count",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "dataset_characteristics",
]
