"""Named dataset registry with Table 2-style characteristics.

The benchmark harness and the examples refer to datasets by name
(``"SARS"``, ``"EFM"``, ``"HUMAN"``, ``"RSSI"``); the registry centralises
their construction, their default thresholds (the paper's default z per
dataset) and their scaled default sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.weighted_string import WeightedString
from ..errors import DatasetError
from .genomes import efm_like, human_like, sars_like
from .rssi import rssi_like

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_characteristics"]


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset of the experimental evaluation."""

    name: str
    loader: Callable[..., WeightedString]
    default_z: float
    paper_length: int
    default_length: int
    description: str

    def load(self, length: int | None = None, *, seed: int | None = None) -> WeightedString:
        """Materialise the dataset at the requested (or default) length."""
        kwargs = {}
        if length is not None:
            kwargs["length"] = length
        if seed is not None:
            kwargs["seed"] = seed
        return self.loader(**kwargs)


def _sars(length: int = 29_903, seed: int | None = 11) -> WeightedString:
    return sars_like(length, seed=seed).weighted_string


def _efm(length: int = 60_000, seed: int | None = 13) -> WeightedString:
    return efm_like(length, seed=seed).weighted_string


def _human(length: int = 80_000, seed: int | None = 17) -> WeightedString:
    return human_like(length, seed=seed).weighted_string


def _rssi(length: int = 20_000, seed: int | None = 23) -> WeightedString:
    return rssi_like(length, seed=seed)


#: The four datasets of Table 2; default z values follow Section 7.1
#: ("The default z for SARS, EFM, HUMAN, RSSI ... was 1024, 128, 8, 16").
DATASETS: dict[str, DatasetSpec] = {
    "SARS": DatasetSpec(
        name="SARS",
        loader=_sars,
        default_z=1024,
        paper_length=29_903,
        default_length=29_903,
        description="SARS-CoV-2-like genome with SNP allele frequencies (1,181 samples)",
    ),
    "EFM": DatasetSpec(
        name="EFM",
        loader=_efm,
        default_z=128,
        paper_length=2_955_294,
        default_length=60_000,
        description="E. faecium-like chromosome with SNP allele frequencies (1,432 samples)",
    ),
    "HUMAN": DatasetSpec(
        name="HUMAN",
        loader=_human,
        default_z=8,
        paper_length=35_194_566,
        default_length=80_000,
        description="Human-chr22-like sequence with 1000-Genomes-style SNPs (2,504 samples)",
    ),
    "RSSI": DatasetSpec(
        name="RSSI",
        loader=_rssi,
        default_z=16,
        paper_length=6_053_462,
        default_length=20_000,
        description="IEEE 802.15.4 RSSI channel-ratio weighted string (sigma = 91)",
    ),
}


def load_dataset(name: str, length: int | None = None, *, seed: int | None = None) -> WeightedString:
    """Load a named dataset (optionally overriding its length/seed)."""
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from None
    return spec.load(length, seed=seed)


def dataset_characteristics(
    name: str, length: int | None = None, *, seed: int | None = None
) -> dict:
    """Table 2-style characteristics of one dataset at the chosen scale."""
    spec = DATASETS[name.upper()]
    weighted = spec.load(length, seed=seed)
    return {
        "name": spec.name,
        "length": len(weighted),
        "paper_length": spec.paper_length,
        "sigma": weighted.sigma,
        "delta_percent": 100.0 * weighted.delta,
        "default_z": spec.default_z,
        "description": spec.description,
    }
