"""Generic synthetic weighted strings (uniform, Dirichlet and sparse models).

These generators are the building blocks of the dataset presets in
:mod:`repro.datasets.genomes` and :mod:`repro.datasets.rssi`, and are useful
on their own for tests and micro-benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..core.alphabet import Alphabet
from ..core.weighted_string import WeightedString
from ..errors import DatasetError

__all__ = [
    "random_weighted_string",
    "dirichlet_weighted_string",
    "sparse_uncertainty_string",
]


def _resolve_alphabet(sigma: int, alphabet: Alphabet | None) -> Alphabet:
    if alphabet is not None:
        if alphabet.size != sigma:
            raise DatasetError(
                f"alphabet has {alphabet.size} letters but sigma={sigma} was requested"
            )
        return alphabet
    if sigma <= 26:
        return Alphabet([chr(ord("A") + code) for code in range(sigma)])
    return Alphabet.integer(sigma)


def random_weighted_string(
    length: int,
    sigma: int = 4,
    *,
    alphabet: Alphabet | None = None,
    seed: int | None = None,
) -> WeightedString:
    """A weighted string whose distributions are uniform over random supports.

    Every position picks a random non-empty subset of the alphabet and
    spreads the probability uniformly over it; the result has Δ well below
    100 % only when ``sigma`` is small.
    """
    if length < 0:
        raise DatasetError("length must be non-negative")
    rng = np.random.default_rng(seed)
    alphabet = _resolve_alphabet(sigma, alphabet)
    matrix = np.zeros((length, sigma), dtype=np.float64)
    support_sizes = rng.integers(1, sigma + 1, size=length)
    for position in range(length):
        support = rng.choice(sigma, size=int(support_sizes[position]), replace=False)
        matrix[position, support] = 1.0 / len(support)
    return WeightedString(matrix, alphabet)


def dirichlet_weighted_string(
    length: int,
    sigma: int = 4,
    *,
    concentration: float = 0.5,
    alphabet: Alphabet | None = None,
    seed: int | None = None,
) -> WeightedString:
    """A weighted string with Dirichlet-distributed positions (Δ = 100 %).

    Small ``concentration`` values produce peaked distributions (one letter
    dominates, as in sequencing data); large values produce flat ones.
    """
    if length < 0:
        raise DatasetError("length must be non-negative")
    if concentration <= 0:
        raise DatasetError("concentration must be positive")
    rng = np.random.default_rng(seed)
    alphabet = _resolve_alphabet(sigma, alphabet)
    matrix = rng.dirichlet([concentration] * sigma, size=length)
    return WeightedString(np.asarray(matrix, dtype=np.float64), alphabet, normalize=True)


def sparse_uncertainty_string(
    length: int,
    sigma: int = 4,
    *,
    delta: float = 0.05,
    second_allele_weight: float = 0.3,
    alphabet: Alphabet | None = None,
    seed: int | None = None,
) -> WeightedString:
    """A weighted string where only a Δ-fraction of positions is uncertain.

    Deterministic positions carry a single letter with probability 1;
    uncertain positions split the mass between a major and a minor letter —
    the structure of genomic allele-frequency data (Table 2's small Δ).
    """
    if not 0.0 <= delta <= 1.0:
        raise DatasetError("delta must be in [0, 1]")
    if not 0.0 < second_allele_weight < 1.0:
        raise DatasetError("second_allele_weight must be in (0, 1)")
    rng = np.random.default_rng(seed)
    alphabet = _resolve_alphabet(sigma, alphabet)
    matrix = np.zeros((length, sigma), dtype=np.float64)
    major = rng.integers(0, sigma, size=length)
    matrix[np.arange(length), major] = 1.0
    uncertain = rng.random(length) < delta
    for position in np.nonzero(uncertain)[0]:
        minor_choices = [code for code in range(sigma) if code != major[position]]
        minor = int(rng.choice(minor_choices))
        weight = float(rng.uniform(0.05, second_allele_weight))
        matrix[position, major[position]] = 1.0 - weight
        matrix[position, minor] = weight
    return WeightedString(matrix, alphabet)
