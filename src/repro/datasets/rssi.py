"""RSSI sensor dataset generators (the paper's CRAWDAD-derived weighted string).

The paper's RSSI dataset assigns, at each time step ``i``, to every signal
strength value ``α`` the fraction of IEEE 802.15.4 channels that reported
``α`` at time ``i`` (σ = 91, Δ = 100 %).  Without the CRAWDAD trace we
simulate the same structure: a slowly drifting true signal per time step,
with per-channel readings scattered around it, aggregated into a relative
frequency distribution over the discretised RSSI values.

The derived family ``RSSI_{n,σ}`` of the paper is reproduced verbatim:
larger ``n`` values are obtained by appending the string to itself, and
smaller alphabets by reducing every value modulo the target σ (Section 7.1).
"""

from __future__ import annotations

import numpy as np

from ..core.alphabet import Alphabet
from ..core.weighted_string import WeightedString
from ..errors import DatasetError

__all__ = ["rssi_like", "scale_length", "reduce_alphabet", "rssi_family"]

#: The paper's RSSI alphabet size.
RSSI_SIGMA = 91
#: Number of IEEE 802.15.4 channels contributing readings per time step.
RSSI_CHANNELS = 16


def rssi_like(
    length: int = 20_000,
    sigma: int = RSSI_SIGMA,
    *,
    channels: int = RSSI_CHANNELS,
    drift: float = 1.5,
    noise: float = 4.0,
    stable_fraction: float = 0.85,
    seed: int | None = 23,
) -> WeightedString:
    """A synthetic RSSI weighted string (σ = 91, Δ ≈ 100 %).

    ``channels`` readings are simulated per time step around a slowly
    drifting mean; the per-position distribution is the relative frequency
    of each discretised value among the channels, exactly like the paper's
    channel-ratio construction.  Most time steps are *stable*: all but one
    channel report the dominant value (as in quiet periods of the real
    trace), which is what gives the data long high-probability factors; the
    remaining steps scatter the readings with the given ``noise``.
    """
    if length < 0:
        raise DatasetError("length must be non-negative")
    if sigma <= 1:
        raise DatasetError("sigma must be at least 2")
    if not 0.0 <= stable_fraction <= 1.0:
        raise DatasetError("stable_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    alphabet = Alphabet.integer(sigma)
    matrix = np.zeros((length, sigma), dtype=np.float64)
    level = sigma / 2.0
    for position in range(length):
        level += rng.normal(0.0, drift)
        level = float(np.clip(level, 0.0, sigma - 1))
        dominant = int(np.clip(round(level), 0, sigma - 1))
        if rng.random() < stable_fraction:
            # Quiet period: one stray channel, the rest agree on the dominant value.
            stray = int(np.clip(dominant + rng.choice([-2, -1, 1, 2]), 0, sigma - 1))
            readings = np.full(channels, dominant, dtype=np.int64)
            readings[int(rng.integers(0, channels))] = stray
        else:
            readings = np.clip(
                np.rint(rng.normal(level, noise, size=channels)), 0, sigma - 1
            ).astype(np.int64)
        values, counts = np.unique(readings, return_counts=True)
        matrix[position, values] = counts / channels
    return WeightedString(matrix, alphabet)


def scale_length(source: WeightedString, factor: int) -> WeightedString:
    """Append the weighted string to itself ``factor`` times (the RSSI_{n,σ} rule)."""
    if factor <= 0:
        raise DatasetError("factor must be positive")
    matrix = np.tile(source.matrix, (factor, 1))
    return WeightedString(matrix, source.alphabet)


def reduce_alphabet(source: WeightedString, sigma: int) -> WeightedString:
    """Replace every value ``v`` by ``v mod sigma`` (the RSSI_{n,σ} rule).

    Probabilities of values that collapse onto the same residue are summed.
    """
    if sigma <= 1:
        raise DatasetError("sigma must be at least 2")
    old_sigma = source.sigma
    matrix = np.zeros((len(source), sigma), dtype=np.float64)
    for value in range(old_sigma):
        matrix[:, value % sigma] += source.matrix[:, value]
    return WeightedString(matrix, Alphabet.integer(sigma), normalize=True)


def rssi_family(
    base: WeightedString | None = None,
    *,
    length_factor: int = 1,
    sigma: int | None = None,
    base_length: int = 20_000,
    seed: int | None = 23,
) -> WeightedString:
    """The paper's RSSI_{n,σ} derived datasets.

    ``length_factor`` ∈ {2, 4, 6, 8} multiplies the length by self-append;
    ``sigma`` ∈ {16, 32, 64} reduces the alphabet by value mod σ.
    """
    if base is None:
        base = rssi_like(base_length, seed=seed)
    result = base
    if sigma is not None and sigma != result.sigma:
        result = reduce_alphabet(result, sigma)
    if length_factor > 1:
        result = scale_length(result, length_factor)
    return result
