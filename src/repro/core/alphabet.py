"""Alphabets: finite, ordered sets of letters with integer codes.

Everything inside the library works with *codes* (small non-negative
integers); the :class:`Alphabet` is the single place where codes are mapped
back and forth to human-readable symbols.  The order of the letters also
fixes the lexicographic order used by suffix arrays, tries and the
lexicographic minimizer scheme, exactly as in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import AlphabetError

__all__ = ["Alphabet", "DNA", "PROTEIN"]


class Alphabet:
    """An ordered alphabet ``Σ`` with ``σ = len(alphabet)`` letters.

    Parameters
    ----------
    letters:
        The symbols of the alphabet, in the order that defines the
        lexicographic comparison of codes.  Symbols must be distinct,
        hashable and are usually single characters.

    Examples
    --------
    >>> dna = Alphabet("ACGT")
    >>> dna.code("G")
    2
    >>> dna.letter(0)
    'A'
    >>> dna.encode("GATT")
    [2, 0, 3, 3]
    >>> dna.decode([2, 0, 3, 3])
    'GATT'
    """

    __slots__ = ("_letters", "_codes")

    def __init__(self, letters: Iterable[str]) -> None:
        letters = list(letters)
        if not letters:
            raise AlphabetError("an alphabet needs at least one letter")
        codes = {}
        for code, letter in enumerate(letters):
            if letter in codes:
                raise AlphabetError(f"duplicate letter {letter!r} in alphabet")
            codes[letter] = code
        self._letters = tuple(letters)
        self._codes = codes

    # -- size / membership -------------------------------------------------
    def __len__(self) -> int:
        return len(self._letters)

    @property
    def size(self) -> int:
        """``σ``, the number of letters."""
        return len(self._letters)

    def __contains__(self, letter: object) -> bool:
        return letter in self._codes

    def __iter__(self):
        return iter(self._letters)

    @property
    def letters(self) -> tuple:
        """The letters in code order."""
        return self._letters

    # -- conversions --------------------------------------------------------
    def code(self, letter: str) -> int:
        """Return the integer code of ``letter``."""
        try:
            return self._codes[letter]
        except KeyError:
            raise AlphabetError(
                f"letter {letter!r} is not in alphabet {self._letters!r}"
            ) from None

    def letter(self, code: int) -> str:
        """Return the letter whose code is ``code``."""
        if not 0 <= code < len(self._letters):
            raise AlphabetError(
                f"code {code} out of range for alphabet of size {self.size}"
            )
        return self._letters[code]

    def encode(self, text: Sequence[str]) -> list[int]:
        """Encode a string (or sequence of letters) into a list of codes."""
        return [self.code(letter) for letter in text]

    def decode(self, codes: Iterable[int]) -> str:
        """Decode a sequence of codes into a string.

        Only works for single-character letters (joins the symbols).
        """
        return "".join(self.letter(code) for code in codes)

    # -- equality / representation ------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._letters == other._letters

    def __hash__(self) -> int:
        return hash(self._letters)

    def __repr__(self) -> str:
        shown = "".join(str(letter) for letter in self._letters[:16])
        if len(self._letters) > 16:
            shown += "..."
        return f"Alphabet({shown!r}, size={self.size})"

    # -- constructors --------------------------------------------------------
    @classmethod
    def integer(cls, size: int) -> "Alphabet":
        """An alphabet of ``size`` integer-valued symbols ``'0'..'size-1'``.

        Used for sensor datasets (e.g. the RSSI data with ``σ = 91``), where
        letters are discretised measurements rather than characters.  Symbols
        are the decimal string representations of the codes.
        """
        if size <= 0:
            raise AlphabetError("integer alphabet size must be positive")
        return cls([str(value) for value in range(size)])

    @classmethod
    def from_text(cls, text: Iterable[str]) -> "Alphabet":
        """Build the alphabet of all distinct letters occurring in ``text``.

        Letters are ordered by their natural (sorted) order, so that the
        induced lexicographic order matches string comparison on the input.
        """
        return cls(sorted(set(text)))


#: The DNA alphabet used by the genomic datasets of the paper (σ = 4).
DNA = Alphabet("ACGT")

#: The 20-letter amino-acid alphabet (useful for protein position weight
#: matrices, a classic application of weighted strings).
PROTEIN = Alphabet("ACDEFGHIKLMNPQRSTVWY")
