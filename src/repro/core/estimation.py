"""z-estimations of weighted strings (Theorem 2).

A *z-estimation* of a weighted string ``X`` of length ``n`` is an indexed
family ``S = (S_j, π_j)`` of ``⌊z⌋`` standard strings of length ``n`` with
properties ``π_j`` such that, for **every** string ``P`` and position ``i``::

    Count_S(P, i)  =  ⌊ z · P(X[i .. i+|P|-1] = P) ⌋

where ``Count_S(P, i)`` is the number of strings of the family in which ``P``
occurs at ``i`` respecting the property.  The estimation is the substrate of
every index in the paper: the weighted suffix tree/array index its property
suffixes directly, and the minimizer-based indexes sample it.

Construction algorithm
----------------------
The paper cites Barton et al. for an ``O(nz)``-time construction; we re-derive
one from the definition (the resulting family is generally different from
theirs — z-estimations are not unique — but satisfies the same defining
property, which is all any index relies on).

Tokens ``0 .. ⌊z⌋-1`` (the future strings) are processed left to right.  After
position ``e`` the construction maintains the invariant

    for every start ``i ≤ e`` and every string ``P`` on ``[i, e]``:
    exactly ``⌊z·P(X[i..e]=P)⌋`` tokens carry ``P`` at ``i`` *and* are still
    "alive from" ``i`` (their property will cover ``[i, e]``).

Because a token that is alive from ``i`` is also alive from every later start,
the groups of tokens that agree on ``[i, e]`` form a laminar family, which the
builder stores as a tree of :class:`_Node` objects (group = node subtree).
At each position the tree is traversed bottom-up; every group must contain
exactly ``⌊w(i)·p_e(α)⌋`` tokens that take letter ``α`` and stay alive from
``i``, where ``w(i) = z·P(X[i..e-1]=P)`` is the group's weight at level ``i``.
Sub-additivity of the floor function guarantees that the quotas of a group
never exceed what its sub-groups have already committed plus the tokens that
are free inside the group, so a greedy bottom-up assignment always succeeds;
the proof is spelled out in ``DESIGN.md`` §5.1 and exercised by the
Hypothesis test-suite against a brute-force count oracle.

The builder's cost is ``O(n + U·z)`` tree work plus the unavoidable
``Θ(nz)`` output, where ``U`` is the number of uncertain positions —
positions whose distribution is concentrated on a single letter are handled
by an O(1) fast path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConstructionError
from .numerics import RELATIVE_TOLERANCE, validate_threshold
from .properties import (
    GroupTreeArrays,
    PropertyArray,
    flatten_group_tree,
    restore_group_tree,
)
from .weighted_string import WeightedString

__all__ = [
    "ZEstimation",
    "EstimationCheckpoint",
    "build_z_estimation",
    "resume_z_estimation",
    "ESTIMATION_METHODS",
    "DEFAULT_CHECKPOINT_EVERY",
]

#: Default checkpoint granularity ``K``: builder state is snapshotted before
#: processing every ``K``-th position.  Each checkpoint costs ``O(⌊z⌋)``
#: memory (the alive-from vector plus the flattened group tree), so the whole
#: trail stays a vanishing fraction of the ``Θ(n⌊z⌋)`` family it annotates.
#: Tests shrink it (module-level, read at call time) to exercise boundary
#: behaviour on small strings.
DEFAULT_CHECKPOINT_EVERY = 256


def _weight_floor(value: float) -> int:
    """Floor of a token weight with the library-wide rounding tolerance."""
    if value <= 0.0:
        return 0
    return int(math.floor(value + RELATIVE_TOLERANCE * max(1.0, value)))


@dataclass
class EstimationCheckpoint:
    """Builder state captured immediately before processing ``position``.

    Together with the (unchanged) prefix of the materialised family this is
    everything the left-to-right construction needs to continue: the
    per-token alive-from levels and the laminar group tree, flattened to
    :class:`~repro.core.properties.GroupTreeArrays` with the root's coarsest
    segment normalised to end at ``position`` (the reference and vectorised
    builders grow it at different times, the state is the same).  Snapshots
    of identical states are bit-identical, which is what :meth:`matches`
    tests — the resume path's early-convergence check.
    """

    position: int
    alive_from: np.ndarray
    tree: GroupTreeArrays

    def matches(self, other: "EstimationCheckpoint") -> bool:
        """Bit-exact state equality (float segment weights included)."""
        return (
            int(self.position) == int(other.position)
            and np.array_equal(self.alive_from, other.alive_from)
            and self.tree.equals(other.tree)
        )

    def nbytes(self) -> int:
        return int(self.alive_from.nbytes) + self.tree.nbytes()


class ZEstimation:
    """The materialised family ``(S_j, π_j)_{j=1..⌊z⌋}`` of a weighted string.

    Attributes
    ----------
    strings:
        ``(⌊z⌋ × n)`` array of letter codes; row ``j`` is ``S_j``.
    ends:
        ``(⌊z⌋ × n)`` array of inclusive property ends; row ``j`` is ``π_j``.
    z:
        The weight threshold parameter.
    checkpoints:
        Builder-state snapshots (:class:`EstimationCheckpoint`) taken every
        ``K`` positions during construction, ordered by position.  Point
        updates resume the left-to-right construction from the last
        checkpoint at-or-before the first changed position instead of
        replaying from 0 (:func:`resume_z_estimation`).  Possibly empty —
        estimations loaded from old stores carry none and fall back to a
        full replay.
    """

    __slots__ = ("strings", "ends", "z", "_alphabet", "checkpoints")

    def __init__(
        self,
        strings: np.ndarray,
        ends: np.ndarray,
        z: float,
        alphabet,
        checkpoints: list | None = None,
    ) -> None:
        self.strings = strings
        self.ends = ends
        self.z = float(z)
        self._alphabet = alphabet
        self.checkpoints = list(checkpoints) if checkpoints else []

    # -- basic shape -----------------------------------------------------------
    @property
    def width(self) -> int:
        """``⌊z⌋`` — the number of strings in the family."""
        return int(self.strings.shape[0])

    @property
    def length(self) -> int:
        """``n`` — the length of each string."""
        return int(self.strings.shape[1])

    @property
    def alphabet(self):
        """The alphabet shared with the source weighted string."""
        return self._alphabet

    def __len__(self) -> int:
        return self.width

    def string(self, j: int) -> np.ndarray:
        """The code array of ``S_j``."""
        return self.strings[j]

    def text(self, j: int) -> str:
        """``S_j`` decoded through the alphabet."""
        return self._alphabet.decode(int(code) for code in self.strings[j])

    def property_array(self, j: int) -> PropertyArray:
        """``π_j`` as a :class:`PropertyArray`."""
        return PropertyArray(self.ends[j])

    # -- the defining Count property -------------------------------------------
    def covers(self, j: int, start: int, length: int) -> bool:
        """Whether the window ``[start, start+length)`` respects ``π_j``."""
        if length <= 0:
            return True
        return int(self.ends[j, start]) >= start + length - 1

    def count(self, pattern, position: int) -> int:
        """``Count_S(P, i)``: property-respecting occurrences at one position."""
        pattern = np.asarray(pattern, dtype=self.strings.dtype)
        m = len(pattern)
        if m == 0:
            return self.width
        if position < 0 or position + m > self.length:
            return 0
        window = self.strings[:, position : position + m]
        matches = np.all(window == pattern[None, :], axis=1)
        respected = self.ends[:, position] >= position + m - 1
        return int(np.count_nonzero(matches & respected))

    def occurrences(self, pattern) -> list[int]:
        """Positions where the pattern occurs (respecting properties) in ≥ 1 string."""
        pattern = np.asarray(pattern, dtype=self.strings.dtype)
        m = len(pattern)
        positions = []
        for start in range(self.length - m + 1):
            if self.count(pattern, start) >= 1:
                positions.append(start)
        return positions

    # -- content used by the indexes --------------------------------------------
    def valid_lengths(self) -> np.ndarray:
        """``(⌊z⌋ × n)`` array of per-start valid window lengths."""
        positions = np.arange(self.length, dtype=np.int64)[None, :]
        return self.ends - positions + 1

    def property_suffix_count(self) -> int:
        """Number of non-empty property suffixes (the WST/WSA leaf count)."""
        return int(np.count_nonzero(self.valid_lengths() > 0))

    def total_valid_length(self) -> int:
        """Sum of all valid window lengths — the Θ(nz) size driver of WST."""
        lengths = self.valid_lengths()
        return int(lengths[lengths > 0].sum())

    def nbytes(self) -> int:
        """Memory footprint of the materialised family (codes + property ends)."""
        return int(self.strings.nbytes + self.ends.nbytes)

    def __repr__(self) -> str:
        return (
            f"ZEstimation(width={self.width}, length={self.length}, z={self.z:g})"
        )


# --------------------------------------------------------------------------- #
# builder                                                                      #
# --------------------------------------------------------------------------- #
@dataclass
class _Node:
    """A group of the laminar family maintained by the builder.

    ``segments`` is a list of ``(lo, hi, weight)`` triples ordered from the
    coarsest (largest levels) to the finest, partitioning the node's level
    range into maximal runs of constant weight; ``members`` holds
    ``(anchor_level, token)`` pairs for tokens anchored inside the node;
    ``children`` are the finer groups (their level ranges end one below
    this node's deepest segment).
    """

    segments: list = field(default_factory=list)
    members: list = field(default_factory=list)
    children: list = field(default_factory=list)


class _EstimationBuilder:
    """Single-use builder implementing the algorithm described in the module docstring."""

    def __init__(
        self,
        source: WeightedString,
        z: float,
        checkpoint_every: int | None = None,
    ) -> None:
        self.source = source
        self.z = validate_threshold(z)
        self.width = int(math.floor(self.z + RELATIVE_TOLERANCE))
        self.length = len(source)
        self.heavy = source.heavy_codes()
        # Snapshot cadence K (None: the module default at call time; 0: off).
        if checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        self.checkpoint_every = max(0, int(checkpoint_every))
        self.checkpoints: list[EstimationCheckpoint] = []
        # Per-token alive-from position.
        self.alive_from = np.zeros(self.width, dtype=np.int64)
        # Property ends, filled progressively.
        self.ends = np.empty((self.width, self.length), dtype=np.int64)
        # Letter columns: an int when all tokens share the letter, else an array.
        self.columns: list = []
        # Laminar group tree; the root's coarsest level is the current position.
        # Initially every token is anchored at level 0 (alive from the start).
        self.root = _Node(
            segments=[(0, 0, self.z)],
            members=[(0, token) for token in range(self.width)],
        )
        # Scratch arrays reused across positions.
        self._letters = np.zeros(self.width, dtype=np.int64)
        self._depths = np.zeros(self.width, dtype=np.int64)
        self._selected_nodes: list = [None] * self.width

    # -- checkpoints --------------------------------------------------------------
    def _snapshot(self, position: int) -> EstimationCheckpoint:
        """Capture the builder state *before* processing ``position``."""
        return EstimationCheckpoint(
            position=int(position),
            alive_from=self.alive_from.copy(),
            tree=flatten_group_tree(self.root, root_hi=int(position)),
        )

    # -- public ------------------------------------------------------------------
    def build(self) -> ZEstimation:
        if self.width == 0:
            raise ConstructionError("z must be at least 1 to build a z-estimation")
        every = self.checkpoint_every
        for position in range(self.length):
            if every and position and position % every == 0:
                self.checkpoints.append(self._snapshot(position))
            row = np.asarray(self.source.distribution(position), dtype=np.float64)
            total = row.sum()
            if total <= 0.0:
                raise ConstructionError(f"position {position} has zero total probability")
            row = row / total
            certain_code = self._certain_letter(row)
            if certain_code is not None:
                self._certain_step(position, certain_code)
            else:
                self._uncertain_step(position, row)
        # Close the properties of tokens that are still alive.
        for token in range(self.width):
            start = int(self.alive_from[token])
            if start < self.length:
                self.ends[token, start:] = self.length - 1
        strings = self._materialise_strings()
        return ZEstimation(
            strings, self.ends, self.z, self.source.alphabet, self.checkpoints
        )

    # -- per-position steps --------------------------------------------------------
    @staticmethod
    def _certain_letter(row: np.ndarray) -> int | None:
        """The single letter carrying all the probability mass, if any."""
        positive = np.nonzero(row > 0.0)[0]
        if len(positive) == 1:
            return int(positive[0])
        return None

    def _certain_step(self, position: int, code: int) -> None:
        """O(1) fast path: every token keeps its groups and takes ``code``."""
        self.columns.append(code)
        lo, hi, weight = self.root.segments[0]
        self.root.segments[0] = (lo, position + 1, weight)

    def _uncertain_step(self, position: int, row: np.ndarray) -> None:
        # Plain-Python floats: scalar arithmetic on list entries is several
        # times faster than indexing numpy scalars and bit-identical (both
        # are IEEE-754 doubles).
        row_values = row.tolist()
        positive = [code for code, value in enumerate(row_values) if value > 0.0]
        floor = math.floor
        tolerance = RELATIVE_TOLERANCE
        letters = self._letters
        depths = self._depths
        letters[:] = int(np.argmax(row))
        depths[:] = position + 1  # default: dead at this position
        selected_nodes = self._selected_nodes

        def process(node: _Node) -> tuple[dict[int, int], list[int]]:
            """Assign letters/survival inside ``node``; return per-letter counts and free tokens."""
            committed: dict[int, int] = {}
            pool: list[int] = []
            for child in node.children:
                child_committed, child_pool = process(child)
                for code, amount in child_committed.items():
                    committed[code] = committed.get(code, 0) + amount
                pool.extend(child_pool)
            members = sorted(node.members)
            member_index = 0
            for lo, hi, weight in reversed(node.segments):
                while member_index < len(members) and members[member_index][0] <= hi:
                    pool.append(members[member_index][1])
                    member_index += 1
                for code in positive:
                    value = weight * row_values[code]
                    # Inlined _weight_floor (the innermost arithmetic).
                    quota = (
                        0
                        if value <= 0.0
                        else int(floor(value + tolerance * (value if value > 1.0 else 1.0)))
                    )
                    need = quota - committed.get(code, 0)
                    if need <= 0:
                        continue
                    if need > len(pool):
                        raise ConstructionError(
                            "z-estimation invariant violated at position "
                            f"{position}: need {need} tokens, have {len(pool)}"
                        )
                    for _ in range(need):
                        token = pool.pop()
                        letters[token] = code
                        depths[token] = lo
                        selected_nodes[token] = node
                    committed[code] = quota
            if member_index != len(members):
                raise ConstructionError(
                    "z-estimation invariant violated: member anchored below "
                    f"the node's segments at position {position}"
                )
            return committed, pool

        process(self.root)
        self.columns.append(letters.copy())

        # Finalise property ends for every token that lost some start levels.
        for token in range(self.width):
            old_start = int(self.alive_from[token])
            new_start = int(depths[token])
            if new_start > old_start:
                self.ends[token, old_start:new_start] = position - 1
                self.alive_from[token] = new_start

        self._rebuild(position, row, letters, depths, selected_nodes)
        for token in range(self.width):
            selected_nodes[token] = None

    # -- tree maintenance ------------------------------------------------------------
    def _rebuild(
        self,
        position: int,
        row: np.ndarray,
        letters: np.ndarray,
        depths: np.ndarray,
        selected_nodes: list,
    ) -> None:
        """Refine the group tree by the letters chosen at ``position``."""
        survivors_at: dict[int, dict[int, list]] = {}
        for token in range(self.width):
            if depths[token] <= position:
                node = selected_nodes[token]
                per_letter = survivors_at.setdefault(id(node), {})
                per_letter.setdefault(int(letters[token]), []).append(
                    (int(depths[token]), token)
                )

        row_values = row.tolist()

        def convert(node: _Node) -> dict[int, _Node]:
            child_results = [convert(child) for child in node.children]
            own = survivors_at.get(id(node), {})
            codes = set(own)
            for child_result in child_results:
                codes.update(child_result)
            result: dict[int, _Node] = {}
            for code in codes:
                scale = row_values[code]
                segments = []
                for lo, hi, weight in node.segments:
                    scaled = weight * scale
                    if scaled >= 1.0 - RELATIVE_TOLERANCE:
                        segments.append((lo, hi, scaled))
                if not segments:
                    # The whole subtree weight dropped below 1; no token can be
                    # alive here (the quotas were 0), so nothing to keep.
                    continue
                new_node = _Node(segments=segments, members=list(own.get(code, [])))
                for child_result in child_results:
                    child = child_result.get(code)
                    if child is not None:
                        new_node.children.append(child)
                self._normalise(new_node)
                result[code] = new_node
            return result

        converted = convert(self.root)
        dead_members = [
            (position + 1, token)
            for token in range(self.width)
            if depths[token] > position
        ]
        new_root = _Node(
            segments=[(position + 1, position + 1, self.z)],
            members=dead_members,
            children=list(converted.values()),
        )
        self._normalise(new_root)
        self.root = new_root

    @staticmethod
    def _normalise(node: _Node) -> None:
        """Merge single-child chains and adjacent equal-weight segments."""
        while len(node.children) == 1:
            child = node.children[0]
            # Merge the seam segments when their weights coincide.
            if (
                node.segments
                and child.segments
                and abs(node.segments[-1][2] - child.segments[0][2]) <= 1e-12
            ):
                lo_child, _, weight = child.segments[0]
                lo_parent, hi_parent, _ = node.segments[-1]
                node.segments[-1] = (lo_child, hi_parent, weight)
                node.segments.extend(child.segments[1:])
            else:
                node.segments.extend(child.segments)
            node.members.extend(child.members)
            node.children = child.children

    # -- materialisation -----------------------------------------------------------
    def _materialise_strings(self) -> np.ndarray:
        strings = np.empty((self.width, self.length), dtype=np.int64)
        for position, column in enumerate(self.columns):
            strings[:, position] = column
        return strings


class _ArrayEstimationBuilder(_EstimationBuilder):
    """Vectorised builder: identical output, structure-of-arrays hot path.

    The reference builder dispatches position by position — a handful of
    numpy calls per position even when the position is certain, which makes
    the certain fast path O(n) *Python* work.  This builder classifies every
    position up front with three whole-matrix operations (row sums, positive
    counts, argmax), materialises all certain columns of every ``S_j`` with
    one broadcast assignment, and only then walks the (typically sparse)
    uncertain positions through the inherited group-tree machinery.  The
    uncertain steps execute the exact same code as the reference builder on
    the exact same normalised rows, so the resulting family is bit-identical;
    the construction-parity tests in ``tests/test_estimation.py`` pin this.
    """

    def build(self) -> ZEstimation:
        if self.width == 0:
            raise ConstructionError("z must be at least 1 to build a z-estimation")
        n = self.length
        matrix = self.source.matrix
        strings = np.empty((self.width, n), dtype=np.int64)
        if n:
            sums = matrix.sum(axis=1)
            bad = sums <= 0.0
            if bad.any():
                position = int(np.argmax(bad))
                raise ConstructionError(
                    f"position {position} has zero total probability"
                )
            certain = np.count_nonzero(matrix > 0.0, axis=1) == 1
            # For a certain row the single positive letter is the argmax.
            strings[:, certain] = np.argmax(matrix[certain], axis=1)[None, :]
            uncertain_positions = np.nonzero(~certain)[0]
        else:
            uncertain_positions = np.empty(0, dtype=np.int64)
        # Next checkpoint boundary; certain runs never change builder state,
        # so the snapshots of all boundaries inside one run are captured
        # lazily before the next uncertain step (normalised to the boundary
        # position, exactly the state the reference builder has there).
        every = self.checkpoint_every
        next_checkpoint = every if every else n + 1
        for position in uncertain_positions:
            position = int(position)
            while next_checkpoint <= position:
                self.checkpoints.append(self._snapshot(next_checkpoint))
                next_checkpoint += every
            # Fold the preceding run of certain positions into the root's
            # coarsest segment in one step (the reference builder extends it
            # one certain position at a time).
            lo, _, weight = self.root.segments[0]
            self.root.segments[0] = (lo, position, weight)
            row = matrix[position]
            total = row.sum()
            row = row / total
            self._uncertain_step(position, row)
            strings[:, position] = self.columns[-1]
            self.columns.clear()
        while next_checkpoint < n:
            self.checkpoints.append(self._snapshot(next_checkpoint))
            next_checkpoint += every
        # Close the properties of tokens that are still alive.
        if n:
            alive = np.arange(n, dtype=np.int64)[None, :] >= self.alive_from[:, None]
            self.ends[alive] = n - 1
        return ZEstimation(
            strings, self.ends, self.z, self.source.alphabet, self.checkpoints
        )


#: Selectable construction paths: ``"vectorized"`` is the array-backed fast
#: path (the default), ``"reference"`` the per-position builder it must stay
#: bit-identical to (kept for parity tests and old-vs-new benchmarks).
ESTIMATION_METHODS = ("vectorized", "reference")

_BUILDERS = {
    "vectorized": _ArrayEstimationBuilder,
    "reference": _EstimationBuilder,
}


def build_z_estimation(
    source: WeightedString,
    z: float,
    *,
    method: str = "vectorized",
    checkpoint_every: int | None = None,
) -> ZEstimation:
    """Build a z-estimation of ``source`` for the threshold ``1/z`` (Theorem 2).

    The returned family satisfies the exact Count property stated in the
    module docstring; in particular a pattern has a z-valid occurrence at
    ``i`` in ``source`` if and only if it occurs at ``i``, respecting the
    property, in at least one string of the family.  ``method`` selects one
    of :data:`ESTIMATION_METHODS`; both produce bit-identical families.

    ``checkpoint_every`` sets the builder-state snapshot cadence ``K``
    (default: :data:`DEFAULT_CHECKPOINT_EVERY`; 0 disables checkpoints).
    Checkpoints never change the family — they only let later point updates
    resume construction through :func:`resume_z_estimation`.
    """
    try:
        builder = _BUILDERS[method]
    except KeyError:
        known = ", ".join(ESTIMATION_METHODS)
        raise ConstructionError(
            f"unknown estimation method {method!r}; known methods: {known}"
        ) from None
    return builder(source, z, checkpoint_every).build()


def resume_z_estimation(
    old: ZEstimation,
    source: WeightedString,
    z: float,
    positions,
) -> tuple[ZEstimation, dict]:
    """Re-derive the z-estimation after point updates at ``positions``.

    ``source`` must already carry the new rows; ``old`` is the estimation of
    the pre-update string.  The construction is resumed from the last
    checkpoint at-or-before the first changed position: the (unchanged)
    string prefix and already-finalised property ends are copied from
    ``old``, and the left-to-right scan replays forward from the checkpoint.
    At every checkpoint boundary past the last changed position the replayed
    builder state is compared bit-exactly against ``old``'s snapshot; on the
    first match the remaining suffix (strings, open property ends and the
    later checkpoints) is spliced from ``old`` wholesale — the update's
    ripple has provably died out, everything downstream is identical.

    Returns ``(estimation, info)`` with ``info`` describing the replay
    (``{"estimation_replay", "replayed_from", "converged_at", ...}``).  The
    result is always bit-identical to ``build_z_estimation(source, z)`` with
    the same cadence; when ``old`` carries no usable checkpoint (old stores,
    an update in the first window, cadence 0) it *is* that full build.
    """
    changed = sorted({int(p) for p in positions})
    n = len(source)
    width = int(math.floor(validate_threshold(z) + RELATIVE_TOLERANCE))
    checkpoints = list(getattr(old, "checkpoints", ()) or ())
    usable = (
        changed
        and checkpoints
        and old.z == float(z)
        and old.length == n
        and old.width == width
        and all(0 <= p < n for p in changed)
    )
    start = None
    if usable:
        candidates = [c for c in checkpoints if c.position <= changed[0]]
        start = candidates[-1] if candidates else None
    if start is None:
        full = build_z_estimation(source, z)
        return full, {"estimation_replay": "full"}
    minimum, maximum = changed[0], changed[-1]
    # Checkpoint positions are multiples of the capture cadence.
    every = int(checkpoints[0].position)
    by_position = {int(c.position): c for c in checkpoints}

    builder = _ArrayEstimationBuilder(source, z, 0)
    builder.alive_from = start.alive_from.copy()
    builder.root = restore_group_tree(start.tree, _Node)
    resume_at = int(start.position)

    strings = np.empty((width, n), dtype=np.int64)
    strings[:, :resume_at] = old.strings[:, :resume_at]
    ends = builder.ends
    columns = np.arange(n, dtype=np.int64)[None, :]
    finalised = columns < builder.alive_from[:, None]
    ends[finalised] = old.ends[finalised]

    matrix = source.matrix
    tail = matrix[resume_at:]
    sums = tail.sum(axis=1)
    bad = sums <= 0.0
    if bad.any():
        position = resume_at + int(np.argmax(bad))
        raise ConstructionError(f"position {position} has zero total probability")
    certain = np.count_nonzero(tail > 0.0, axis=1) == 1
    strings[:, resume_at:][:, certain] = np.argmax(tail[certain], axis=1)[None, :]
    uncertain_positions = np.nonzero(~certain)[0] + resume_at

    kept = [c for c in checkpoints if c.position <= resume_at]
    converged_at = None
    next_checkpoint = resume_at + every

    def check_boundary(boundary: int) -> bool:
        """Snapshot one boundary; True when the replay converged there."""
        snapshot = builder._snapshot(boundary)
        if boundary > maximum:
            reference = by_position.get(boundary)
            if reference is not None and snapshot.matches(reference):
                return True
        kept.append(snapshot)
        return False

    for position in uncertain_positions:
        position = int(position)
        while next_checkpoint <= position:
            if check_boundary(next_checkpoint):
                converged_at = next_checkpoint
                break
            next_checkpoint += every
        if converged_at is not None:
            break
        lo, _, weight = builder.root.segments[0]
        builder.root.segments[0] = (lo, position, weight)
        row = matrix[position]
        row = row / row.sum()
        builder._uncertain_step(position, row)
        strings[:, position] = builder.columns[-1]
        builder.columns.clear()
    if converged_at is None:
        while next_checkpoint < n:
            if check_boundary(next_checkpoint):
                converged_at = next_checkpoint
                break
            next_checkpoint += every

    if converged_at is not None:
        # Identical state at the boundary + identical suffix rows: everything
        # the builder would produce from here on matches ``old`` bit for bit.
        strings[:, converged_at:] = old.strings[:, converged_at:]
        open_levels = columns >= by_position[converged_at].alive_from[:, None]
        ends[open_levels] = old.ends[open_levels]
        kept.extend(c for c in checkpoints if c.position >= converged_at)
    else:
        alive = columns >= builder.alive_from[:, None]
        ends[alive] = n - 1
    estimation = ZEstimation(strings, ends, z, source.alphabet, kept)
    info = {
        "estimation_replay": "checkpoint",
        "replayed_from": resume_at,
        "converged_at": converged_at,
        "replayed_positions": (converged_at if converged_at is not None else n)
        - resume_at,
    }
    return estimation, info
