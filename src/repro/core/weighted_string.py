"""The character-level uncertainty model: weighted (uncertain) strings.

A weighted string ``X`` of length ``n`` over an alphabet ``Σ`` is a sequence
of ``n`` probability distributions over ``Σ`` (Section 2 of the paper).  The
class below stores the distributions as an ``(n × σ)`` ``numpy`` matrix and
provides the primitive operations every other component builds on: random
access to probabilities, occurrence probabilities of factors, solidity
checks, heavy letters, slicing and reversal.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..errors import WeightedStringError
from .alphabet import Alphabet
from .numerics import (
    is_solid_probability,
    solid_count,
    solid_probability_mask,
    validate_threshold,
)

__all__ = ["WeightedString"]

#: Tolerance for "each row must sum to 1".
_ROW_SUM_TOLERANCE = 1e-6


class WeightedString:
    """A weighted (uncertain) string: ``n`` distributions over ``Σ``.

    Parameters
    ----------
    probabilities:
        Array of shape ``(n, σ)``; ``probabilities[i, c]`` is the probability
        of the letter with code ``c`` occurring at position ``i``.  Rows must
        be non-negative and sum to 1 (within a small tolerance).
    alphabet:
        The alphabet giving meaning to the ``σ`` columns.
    normalize:
        If true, rows are rescaled to sum exactly to 1 instead of being
        rejected when their sum is off by more than the tolerance.

    Notes
    -----
    Positions are 0-based throughout the library (the paper uses 1-based
    positions).  A factor spanning paper positions ``[i..j]`` corresponds to
    the half-open Python range ``[i-1, j)``.
    """

    __slots__ = ("_probs", "_alphabet", "_log_probs", "_version")

    def __init__(
        self,
        probabilities: np.ndarray,
        alphabet: Alphabet,
        *,
        normalize: bool = False,
    ) -> None:
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.ndim != 2:
            raise WeightedStringError(
                f"probability matrix must be 2-dimensional, got shape {probs.shape}"
            )
        if probs.shape[1] != alphabet.size:
            raise WeightedStringError(
                f"matrix has {probs.shape[1]} columns but alphabet has "
                f"{alphabet.size} letters"
            )
        if not np.isfinite(probs).all():
            raise WeightedStringError(
                "probabilities must be finite (no NaN or infinity)"
            )
        if np.any(probs < 0.0):
            raise WeightedStringError("probabilities must be non-negative")
        if probs.shape[0]:
            sums = probs.sum(axis=1)
            if normalize:
                bad = sums <= 0.0
                if np.any(bad):
                    raise WeightedStringError(
                        "cannot normalize rows whose probabilities sum to 0"
                    )
                probs = probs / sums[:, None]
            elif np.any(np.abs(sums - 1.0) > _ROW_SUM_TOLERANCE):
                worst = int(np.argmax(np.abs(sums - 1.0)))
                raise WeightedStringError(
                    f"row {worst} sums to {sums[worst]:.6f}, expected 1.0 "
                    "(pass normalize=True to rescale)"
                )
        probs = np.ascontiguousarray(probs)
        probs.setflags(write=False)
        self._probs = probs
        self._alphabet = alphabet
        self._log_probs = None  # lazily filled log-probability cache
        self._version = 0  # bumped by every applied update batch

    # ------------------------------------------------------------------ #
    # constructors                                                        #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dicts(
        cls,
        distributions: Iterable[Mapping[str, float]],
        alphabet: Alphabet | None = None,
        *,
        normalize: bool = False,
    ) -> "WeightedString":
        """Build a weighted string from per-position ``{letter: probability}``.

        Letters absent from a position's mapping get probability 0.  If no
        alphabet is given, it is inferred from the union of keys (sorted).
        """
        rows = [dict(row) for row in distributions]
        if alphabet is None:
            letters = sorted({letter for row in rows for letter in row})
            if not letters:
                raise WeightedStringError(
                    "cannot infer an alphabet from empty distributions"
                )
            alphabet = Alphabet(letters)
        matrix = np.zeros((len(rows), alphabet.size), dtype=np.float64)
        for i, row in enumerate(rows):
            for letter, probability in row.items():
                matrix[i, alphabet.code(letter)] = probability
        return cls(matrix, alphabet, normalize=normalize)

    @classmethod
    def from_string(
        cls, text: Sequence[str], alphabet: Alphabet | None = None
    ) -> "WeightedString":
        """Build a *certain* weighted string (every position has probability 1).

        Useful to treat a standard string as the degenerate case of an
        uncertain string, e.g. in tests and examples.
        """
        if alphabet is None:
            alphabet = Alphabet.from_text(text)
        codes = alphabet.encode(text)
        matrix = np.zeros((len(codes), alphabet.size), dtype=np.float64)
        matrix[np.arange(len(codes)), codes] = 1.0
        return cls(matrix, alphabet)

    # ------------------------------------------------------------------ #
    # basic accessors                                                     #
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._probs.shape[0]

    @property
    def length(self) -> int:
        """``n``, the number of positions."""
        return self._probs.shape[0]

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet of the weighted string."""
        return self._alphabet

    @property
    def sigma(self) -> int:
        """``σ``, the alphabet size."""
        return self._alphabet.size

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``(n × σ)`` probability matrix."""
        return self._probs

    @property
    def log_matrix(self) -> np.ndarray:
        """The ``(n × σ)`` natural-log probability matrix (``-inf`` at zeros).

        Computed once and cached; this is the substrate of every batched
        probability computation (occurrence probabilities of whole candidate
        sets are sums of rows of this matrix).
        """
        if self._log_probs is None:
            with np.errstate(divide="ignore"):
                logs = np.log(self._probs)
            logs.setflags(write=False)
            self._log_probs = logs
        return self._log_probs

    def probability(self, position: int, code: int) -> float:
        """``p_position(code)``: probability of a letter code at a position."""
        return float(self._probs[position, code])

    def distribution(self, position: int) -> np.ndarray:
        """The probability vector of one position (read-only view)."""
        return self._probs[position]

    def letters_at(self, position: int, min_probability: float = 0.0) -> list[int]:
        """Codes whose probability at ``position`` exceeds ``min_probability``.

        With the default threshold this is the set of letters that *occur*
        at the position in the paper's sense (probability > 0).
        """
        row = self._probs[position]
        return [int(code) for code in np.nonzero(row > min_probability)[0]]

    def uncertain_positions(self) -> np.ndarray:
        """Positions where more than one letter has positive probability.

        The fraction of such positions is the ``Δ`` statistic reported in
        Table 2 of the paper.
        """
        return np.nonzero((self._probs > 0.0).sum(axis=1) > 1)[0]

    @property
    def delta(self) -> float:
        """``Δ``: the fraction of uncertain positions (Table 2)."""
        if not len(self):
            return 0.0
        return float(len(self.uncertain_positions())) / float(len(self))

    # ------------------------------------------------------------------ #
    # factor probabilities and solidity                                   #
    # ------------------------------------------------------------------ #
    def occurrence_probability(self, pattern: Sequence[int], position: int) -> float:
        """Probability that ``pattern`` (a code sequence) occurs at ``position``.

        This is ``P(X[i .. i+m-1] = P)`` from the paper; 0 if the pattern
        would overhang the end of the string.
        """
        m = len(pattern)
        if position < 0 or position + m > len(self):
            return 0.0
        probability = 1.0
        probs = self._probs
        for offset, code in enumerate(pattern):
            probability *= probs[position + offset, code]
            if probability == 0.0:
                return 0.0
        return probability

    def is_solid(self, pattern: Sequence[int], position: int, z: float) -> bool:
        """Whether ``pattern`` has a z-solid (z-valid) occurrence at ``position``."""
        z = validate_threshold(z)
        return is_solid_probability(self.occurrence_probability(pattern, position), z)

    def solid_count(self, pattern: Sequence[int], position: int, z: float) -> int:
        """``⌊z · P(X[position..] = pattern)⌋`` — the Theorem 2 count."""
        z = validate_threshold(z)
        return solid_count(self.occurrence_probability(pattern, position), z)

    def occurrence_log_probabilities(
        self, pattern: Sequence[int], positions: Sequence[int]
    ) -> np.ndarray:
        """``ln P(X[i .. i+m-1] = pattern)`` for a whole array of starts.

        Vectorised companion of :meth:`occurrence_probability`: the
        ``(B × m)`` relevant entries of :attr:`log_matrix` are gathered with
        one fancy-indexing operation and summed per row.  Out-of-range starts
        and impossible factors yield ``-inf``.
        """
        codes = np.asarray(pattern, dtype=np.int64)
        starts = np.asarray(positions, dtype=np.int64)
        m = len(codes)
        out = np.full(len(starts), -np.inf, dtype=np.float64)
        if m == 0:
            out[(starts >= 0) & (starts <= len(self))] = 0.0
            return out
        in_range = (starts >= 0) & (starts + m <= len(self))
        if not in_range.any():
            return out
        valid_starts = starts[in_range]
        gathered = self.log_matrix[
            valid_starts[:, None] + np.arange(m, dtype=np.int64)[None, :],
            codes[None, :],
        ]
        out[in_range] = gathered.sum(axis=1)
        return out

    def occurrence_probabilities(
        self, pattern: Sequence[int], positions: Sequence[int]
    ) -> np.ndarray:
        """Occurrence probabilities of ``pattern`` at an array of starts."""
        return np.exp(self.occurrence_log_probabilities(pattern, positions))

    def occurrences(self, pattern: Sequence[int], z: float) -> list[int]:
        """All z-valid occurrence positions of ``pattern`` (brute force).

        This is the reference oracle ``Occ_{1/z}(P, X)``; the indexes in
        :mod:`repro.indexes` must return exactly this set.  Computed over all
        starts at once through the log-probability cache.
        """
        z = validate_threshold(z)
        m = len(pattern)
        if m == 0:
            return list(range(len(self) + 1))
        if m > len(self):
            return []
        starts = np.arange(len(self) - m + 1, dtype=np.int64)
        probabilities = self.occurrence_probabilities(pattern, starts)
        solid = solid_probability_mask(probabilities, z)
        return [int(start) for start in starts[solid]]

    def maximal_solid_length(self, position: int, letters: Sequence[int], z: float) -> int:
        """Longest prefix of ``letters`` that is solid when read from ``position``.

        Helper for property arrays: returns the largest ``L`` such that
        ``letters[:L]`` is z-solid at ``position`` (0 if even the first
        letter is not solid there).
        """
        z = validate_threshold(z)
        probability = 1.0
        length = 0
        for offset, code in enumerate(letters):
            if position + offset >= len(self):
                break
            probability *= self._probs[position + offset, code]
            if not is_solid_probability(probability, z):
                break
            length = offset + 1
        return length

    # ------------------------------------------------------------------ #
    # heavy letters                                                       #
    # ------------------------------------------------------------------ #
    def heavy_codes(self) -> np.ndarray:
        """The heavy string of ``X`` as an array of codes (Definition 2).

        Ties are broken towards the smallest code, which is an arbitrary but
        deterministic choice (the paper allows any tie-break).
        """
        return np.argmax(self._probs, axis=1).astype(np.int64)

    def heavy_probabilities(self) -> np.ndarray:
        """The probability of the heavy letter at each position."""
        return self._probs.max(axis=1)

    # ------------------------------------------------------------------ #
    # point updates                                                       #
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Number of update batches applied so far (0 for a pristine string)."""
        return self._version

    def coerce_distribution(self, distribution, *, normalize: bool = True) -> np.ndarray:
        """One position's new distribution as a validated ``σ``-vector.

        ``distribution`` is either a ``{letter: probability}`` mapping or a
        length-``σ`` probability vector.  Rows are re-normalized to sum to 1
        by default (``normalize=False`` enforces the constructor tolerance
        instead).
        """
        if isinstance(distribution, Mapping):
            row = np.zeros(self.sigma, dtype=np.float64)
            for letter, probability in distribution.items():
                row[self._alphabet.code(letter)] = float(probability)
        else:
            row = np.asarray(distribution, dtype=np.float64)
            if row.shape != (self.sigma,):
                raise WeightedStringError(
                    f"a distribution must have {self.sigma} entries, "
                    f"got shape {row.shape}"
                )
            row = row.copy()
        # NaN compares False against everything, so it would pass both the
        # negativity and the zero-sum guard and normalize into a NaN row.
        if not np.isfinite(row).all():
            raise WeightedStringError(
                "a distribution's probabilities must be finite (no NaN or infinity)"
            )
        if np.any(row < 0.0):
            raise WeightedStringError("probabilities must be non-negative")
        total = row.sum()
        if total <= 0.0:
            raise WeightedStringError(
                "a distribution's probabilities cannot all be zero"
            )
        if normalize:
            return row / total
        if abs(total - 1.0) > _ROW_SUM_TOLERANCE:
            raise WeightedStringError(
                f"distribution sums to {total:.6f}, expected 1.0 "
                "(pass normalize=True to rescale)"
            )
        return row

    def coerce_updates(self, updates, *, normalize: bool = True) -> list[tuple[int, np.ndarray]]:
        """Validate a batch of ``(position, distribution)`` point updates.

        Returns ``(position, row)`` pairs with rows coerced through
        :meth:`coerce_distribution`; later entries for the same position win
        (the batch is applied left to right).  Shared by
        :meth:`apply_updates` and the serving layer, which needs the
        validated positions *before* mutating anything.
        """
        pairs: list[tuple[int, np.ndarray]] = []
        for entry in updates:
            try:
                position, distribution = entry
            except (TypeError, ValueError):
                raise WeightedStringError(
                    "each update must be a (position, distribution) pair"
                ) from None
            position = int(position)
            if not 0 <= position < len(self):
                raise WeightedStringError(
                    f"update position {position} outside string of length {len(self)}"
                )
            pairs.append(
                (position, self.coerce_distribution(distribution, normalize=normalize))
            )
        return pairs

    def _writable_rows(self, array: np.ndarray) -> np.ndarray:
        """A privately owned, temporarily writable version of ``array``.

        The matrix is mutated in place when this object owns its memory, so
        views taken of it (shard sources) stay coherent; memory-mapped or
        borrowed matrices (store-loaded indexes, slices of another string)
        are first materialised as a private copy — mutating the backing file
        or a sibling string would corrupt state this object does not own.
        """
        if isinstance(array, np.memmap) or not array.flags.owndata:
            array = np.array(array)
        array.setflags(write=True)
        return array

    def apply_updates(self, updates, *, normalize: bool = True) -> list[int]:
        """Apply point updates in place; returns the sorted distinct positions.

        Each update replaces one position's distribution (re-normalized by
        default).  The probability matrix and the log-probability cache are
        patched in place, so indexes holding views of :attr:`matrix` observe
        the new rows; their *derived* structures become stale and must be
        refreshed through ``UncertainStringIndex.apply_updates`` (which calls
        this and then repairs itself).  Updates are absolute, hence
        idempotent: re-applying the same batch is a no-op, which lets several
        indexes sharing one source object each apply the same update
        sequence safely.
        """
        pairs = self.coerce_updates(updates, normalize=normalize)
        if not pairs:
            return []
        probs = self._writable_rows(self._probs)
        for position, row in pairs:
            probs[position] = row
        probs.setflags(write=False)
        self._probs = probs
        positions = sorted({position for position, _ in pairs})
        if self._log_probs is not None:
            logs = self._writable_rows(self._log_probs)
            with np.errstate(divide="ignore"):
                for position in positions:
                    logs[position] = np.log(probs[position])
            logs.setflags(write=False)
            self._log_probs = logs
        self._version += 1
        return positions

    def update_position(self, position: int, distribution, *, normalize: bool = True) -> int:
        """Replace one position's distribution in place (see :meth:`apply_updates`)."""
        return self.apply_updates([(position, distribution)], normalize=normalize)[0]

    def apply_range_update(self, start: int, rows, *, normalize: bool = True) -> list[int]:
        """Replace one contiguous span of distributions (see :meth:`apply_updates`).

        ``rows[i]`` becomes the new distribution of position ``start + i``.
        Equivalent to a batch of point updates at consecutive positions, but
        states the contiguity explicitly — downstream repair treats the span
        as a single replay window.
        """
        rows = list(rows)
        if not rows:
            return []
        return self.apply_updates(
            [(start + offset, row) for offset, row in enumerate(rows)],
            normalize=normalize,
        )

    # ------------------------------------------------------------------ #
    # transformations                                                     #
    # ------------------------------------------------------------------ #
    def reverse(self) -> "WeightedString":
        """The reverse weighted string (distributions in reverse order)."""
        return WeightedString(self._probs[::-1].copy(), self._alphabet)

    def slice(self, start: int, stop: int) -> "WeightedString":
        """The weighted substring on positions ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self):
            raise WeightedStringError(
                f"invalid slice [{start}, {stop}) for length {len(self)}"
            )
        return WeightedString(self._probs[start:stop].copy(), self._alphabet)

    def __getitem__(self, item):
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self))
            if step != 1:
                raise WeightedStringError("only contiguous slices are supported")
            return self.slice(start, stop)
        return self.distribution(item)

    def concat(self, other: "WeightedString") -> "WeightedString":
        """Concatenate two weighted strings over the same alphabet."""
        if other.alphabet != self._alphabet:
            raise WeightedStringError("cannot concatenate over different alphabets")
        return WeightedString(
            np.vstack([self._probs, other.matrix]), self._alphabet
        )

    def to_dicts(self, *, drop_zero: bool = True) -> list[dict[str, float]]:
        """Export as per-position ``{letter: probability}`` dictionaries."""
        rows = []
        for i in range(len(self)):
            row = {}
            for code in range(self.sigma):
                probability = float(self._probs[i, code])
                if probability > 0.0 or not drop_zero:
                    row[self._alphabet.letter(code)] = probability
            rows.append(row)
        return rows

    # ------------------------------------------------------------------ #
    # dunder helpers                                                      #
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedString):
            return NotImplemented
        return self._alphabet == other._alphabet and np.array_equal(
            self._probs, other._probs
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely useful, but defined
        return hash((self._alphabet, self._probs.tobytes()))

    def __repr__(self) -> str:
        return (
            f"WeightedString(length={len(self)}, sigma={self.sigma}, "
            f"delta={self.delta:.3f})"
        )

    def entropy(self) -> float:
        """Average per-position Shannon entropy (bits) — a dataset statistic."""
        probs = self._probs
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = np.where(probs > 0.0, -probs * np.log2(probs), 0.0)
        if not len(self):
            return 0.0
        return float(terms.sum(axis=1).mean())

    def expected_size_bytes(self) -> int:
        """Bytes needed to store the matrix densely (8 bytes per entry)."""
        return int(self._probs.size * 8)

    def sample_string(self, rng: np.random.Generator | None = None) -> list[int]:
        """Draw one plain string from the position-wise distributions.

        Positions are sampled independently, matching the probabilistic
        semantics of the character-level uncertainty model.
        """
        rng = rng or np.random.default_rng()
        cumulative = np.cumsum(self._probs, axis=1)
        draws = rng.random(len(self))
        return [int(np.searchsorted(cumulative[i], draws[i])) for i in range(len(self))]

    def log_probability(self, pattern: Sequence[int], position: int) -> float:
        """Natural-log occurrence probability (``-inf`` for impossible factors)."""
        probability = self.occurrence_probability(pattern, position)
        if probability <= 0.0:
            return float("-inf")
        return math.log(probability)
