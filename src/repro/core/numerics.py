"""Numeric conventions shared by the whole library.

The paper's definitions compare products of probabilities against the
threshold ``1/z`` and take floors of ``z · probability``.  With IEEE-754
floats, a product that is mathematically exactly ``1/z`` can land a few
ulps below it, which would silently drop valid occurrences.  To keep every
component of the library (solidity checks, z-estimations, index
construction, verification, brute-force oracles) consistent with each
other, all of them go through the helpers in this module, which apply one
shared relative tolerance.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import InvalidThresholdError

__all__ = [
    "RELATIVE_TOLERANCE",
    "validate_threshold",
    "solid_count",
    "is_solid_probability",
    "solid_probability_mask",
]

#: Relative tolerance used when comparing ``z * probability`` with integers.
#: ``1e-9`` is far above accumulated rounding error for the factor lengths
#: that are meaningful under any practical ``z`` (a solid factor has at most
#: ``log2 z`` low-probability positions, Lemma 3) and far below ``1`` so it
#: never changes the value of a floor except to undo rounding noise.
RELATIVE_TOLERANCE = 1e-9


def validate_threshold(z: float) -> float:
    """Validate the threshold parameter ``z`` (so that ``1/z ∈ (0, 1]``).

    Returns ``z`` as a float.  ``z`` may be fractional (the paper only
    requires ``1/z ∈ (0, 1]``); the number of strings in a z-estimation is
    ``⌊z⌋``.
    """
    z = float(z)
    if not math.isfinite(z) or z < 1.0:
        raise InvalidThresholdError(
            f"z must be a finite value >= 1 (got {z!r}); the threshold is 1/z"
        )
    return z


def solid_count(probability: float, z: float) -> int:
    """Return ``⌊z · probability⌋`` with rounding-noise protection.

    This is the quantity the z-estimation must reproduce exactly
    (Theorem 2) and equals the number of strings of the estimation in which
    the factor occurs respecting the property.
    """
    if probability <= 0.0:
        return 0
    scaled = z * probability
    return int(math.floor(scaled + RELATIVE_TOLERANCE * max(1.0, scaled)))


def is_solid_probability(probability: float, z: float) -> bool:
    """Whether a factor with this occurrence probability is *z-solid*.

    Equivalent to ``probability >= 1/z`` and, by construction, to
    ``solid_count(probability, z) >= 1``.
    """
    return solid_count(probability, z) >= 1


def solid_probability_mask(probabilities: np.ndarray, z: float) -> np.ndarray:
    """Vectorised :func:`is_solid_probability` over an array of probabilities.

    Applies exactly the same relative-tolerance rule as the scalar helper
    (``⌊z·p + tol·max(1, z·p)⌋ ≥ 1`` ⇔ ``z·p + tol·max(1, z·p) ≥ 1``), so a
    batch verification and a per-candidate loop always agree.
    """
    scaled = z * np.asarray(probabilities, dtype=np.float64)
    return scaled + RELATIVE_TOLERANCE * np.maximum(1.0, scaled) >= 1.0
