"""String properties Π and property-respecting occurrences (Section 2).

A *property* of a string ``S`` of length ``n`` is a hereditary collection of
intervals of ``[0, n)``.  As in the paper we represent it by an array
``π[0..n-1]`` where ``π[i]`` is the (inclusive) end of the longest interval
starting at ``i`` (or ``i - 1`` when ``i`` is in no interval).  A pattern
``P`` occurs at ``i`` *respecting* the property iff it occurs there as a
plain substring and ``i + |P| - 1 <= π[i]``.

The z-estimation (``core.estimation``) produces one ``(S_j, π_j)`` pair per
string; the weighted indexes consume them through this module.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import WeightedStringError

__all__ = ["PropertyArray", "property_occurrences"]


class PropertyArray:
    """The array representation ``π`` of a hereditary interval property.

    Parameters
    ----------
    ends:
        ``ends[i]`` is the inclusive end of the longest valid interval
        starting at ``i``; ``i - 1`` means position ``i`` is covered by no
        interval.  The array must be monotone non-decreasing and satisfy
        ``i - 1 <= ends[i] < n``.
    """

    __slots__ = ("_ends",)

    def __init__(self, ends: Sequence[int]) -> None:
        array = np.asarray(ends, dtype=np.int64)
        if array.ndim != 1:
            raise WeightedStringError("property array must be one-dimensional")
        n = len(array)
        positions = np.arange(n, dtype=np.int64)
        if np.any(array < positions - 1) or np.any(array >= n):
            raise WeightedStringError(
                "property ends must satisfy i - 1 <= pi[i] < n for every i"
            )
        if n > 1 and np.any(np.diff(array) < 0):
            raise WeightedStringError("property ends must be non-decreasing")
        array = np.ascontiguousarray(array)
        array.setflags(write=False)
        self._ends = array

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "PropertyArray":
        """Build from per-position *valid lengths* (``π[i] = i + length - 1``).

        Lengths describe, for each start, how many positions (possibly 0)
        belong to the longest valid interval starting there.  The resulting
        array is made hereditary/monotone by construction checks.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        positions = np.arange(len(lengths), dtype=np.int64)
        return cls(positions + lengths - 1)

    @classmethod
    def full(cls, n: int) -> "PropertyArray":
        """The trivial property covering the whole string (π[i] = n - 1)."""
        return cls(np.full(n, n - 1, dtype=np.int64))

    @classmethod
    def empty(cls, n: int) -> "PropertyArray":
        """The empty property (no position is covered)."""
        return cls(np.arange(n, dtype=np.int64) - 1)

    # -- accessors -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ends)

    @property
    def ends(self) -> np.ndarray:
        """The read-only ``π`` array (inclusive interval ends)."""
        return self._ends

    def end(self, position: int) -> int:
        """``π[position]`` — inclusive end of the longest interval at ``position``."""
        return int(self._ends[position])

    def valid_length(self, position: int) -> int:
        """Length of the longest valid interval starting at ``position``."""
        return int(self._ends[position]) - position + 1

    def valid_lengths(self) -> np.ndarray:
        """Vector of valid lengths for all positions."""
        return self._ends - np.arange(len(self._ends), dtype=np.int64) + 1

    def covers(self, start: int, stop: int) -> bool:
        """Whether the window ``[start, stop)`` lies inside a valid interval."""
        if stop <= start:
            return True
        if not 0 <= start < len(self._ends):
            return False
        return stop - 1 <= int(self._ends[start])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyArray):
            return NotImplemented
        return np.array_equal(self._ends, other._ends)

    def __repr__(self) -> str:
        return f"PropertyArray(length={len(self)}, ends={self._ends.tolist()!r})"

    def total_covered_length(self) -> int:
        """Sum of valid lengths — proportional to WST/WSA index size."""
        return int(self.valid_lengths().sum())


def property_occurrences(
    pattern: Sequence[int], text: Sequence[int], prop: PropertyArray
) -> list[int]:
    """``Occ_π(P, S)``: occurrences of ``pattern`` in ``text`` respecting ``prop``.

    Brute-force reference implementation used as a test oracle and by the
    small-input code paths; the indexes provide the fast equivalents.
    """
    m = len(pattern)
    if m == 0:
        return list(range(len(text) + 1))
    pattern = list(pattern)
    text = list(text)
    positions = []
    for start in range(len(text) - m + 1):
        if text[start : start + m] == pattern and prop.covers(start, start + m):
            positions.append(start)
    return positions
