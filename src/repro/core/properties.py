"""String properties Π and property-respecting occurrences (Section 2).

A *property* of a string ``S`` of length ``n`` is a hereditary collection of
intervals of ``[0, n)``.  As in the paper we represent it by an array
``π[0..n-1]`` where ``π[i]`` is the (inclusive) end of the longest interval
starting at ``i`` (or ``i - 1`` when ``i`` is in no interval).  A pattern
``P`` occurs at ``i`` *respecting* the property iff it occurs there as a
plain substring and ``i + |P| - 1 <= π[i]``.

The z-estimation (``core.estimation``) produces one ``(S_j, π_j)`` pair per
string; the weighted indexes consume them through this module.  The
estimation *builder* maintains a laminar family of token groups over the
open (not-yet-finalised) property levels; :class:`GroupTreeArrays` is the
flat-array encoding of that family — a preorder parent array plus CSR
segment/member blocks, the same shape as the compacted-trie CSR arrays —
used to snapshot builder state into store-persistable checkpoints.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import WeightedStringError

__all__ = [
    "PropertyArray",
    "property_occurrences",
    "GroupTreeArrays",
    "flatten_group_tree",
    "restore_group_tree",
]


class PropertyArray:
    """The array representation ``π`` of a hereditary interval property.

    Parameters
    ----------
    ends:
        ``ends[i]`` is the inclusive end of the longest valid interval
        starting at ``i``; ``i - 1`` means position ``i`` is covered by no
        interval.  The array must be monotone non-decreasing and satisfy
        ``i - 1 <= ends[i] < n``.
    """

    __slots__ = ("_ends",)

    def __init__(self, ends: Sequence[int]) -> None:
        array = np.asarray(ends, dtype=np.int64)
        if array.ndim != 1:
            raise WeightedStringError("property array must be one-dimensional")
        n = len(array)
        positions = np.arange(n, dtype=np.int64)
        if np.any(array < positions - 1) or np.any(array >= n):
            raise WeightedStringError(
                "property ends must satisfy i - 1 <= pi[i] < n for every i"
            )
        if n > 1 and np.any(np.diff(array) < 0):
            raise WeightedStringError("property ends must be non-decreasing")
        array = np.ascontiguousarray(array)
        array.setflags(write=False)
        self._ends = array

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "PropertyArray":
        """Build from per-position *valid lengths* (``π[i] = i + length - 1``).

        Lengths describe, for each start, how many positions (possibly 0)
        belong to the longest valid interval starting there.  The resulting
        array is made hereditary/monotone by construction checks.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        positions = np.arange(len(lengths), dtype=np.int64)
        return cls(positions + lengths - 1)

    @classmethod
    def full(cls, n: int) -> "PropertyArray":
        """The trivial property covering the whole string (π[i] = n - 1)."""
        return cls(np.full(n, n - 1, dtype=np.int64))

    @classmethod
    def empty(cls, n: int) -> "PropertyArray":
        """The empty property (no position is covered)."""
        return cls(np.arange(n, dtype=np.int64) - 1)

    # -- accessors -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ends)

    @property
    def ends(self) -> np.ndarray:
        """The read-only ``π`` array (inclusive interval ends)."""
        return self._ends

    def end(self, position: int) -> int:
        """``π[position]`` — inclusive end of the longest interval at ``position``."""
        return int(self._ends[position])

    def valid_length(self, position: int) -> int:
        """Length of the longest valid interval starting at ``position``."""
        return int(self._ends[position]) - position + 1

    def valid_lengths(self) -> np.ndarray:
        """Vector of valid lengths for all positions."""
        return self._ends - np.arange(len(self._ends), dtype=np.int64) + 1

    def covers(self, start: int, stop: int) -> bool:
        """Whether the window ``[start, stop)`` lies inside a valid interval."""
        if stop <= start:
            return True
        if not 0 <= start < len(self._ends):
            return False
        return stop - 1 <= int(self._ends[start])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyArray):
            return NotImplemented
        return np.array_equal(self._ends, other._ends)

    def __repr__(self) -> str:
        return f"PropertyArray(length={len(self)}, ends={self._ends.tolist()!r})"

    def total_covered_length(self) -> int:
        """Sum of valid lengths — proportional to WST/WSA index size."""
        return int(self.valid_lengths().sum())


def property_occurrences(
    pattern: Sequence[int], text: Sequence[int], prop: PropertyArray
) -> list[int]:
    """``Occ_π(P, S)``: occurrences of ``pattern`` in ``text`` respecting ``prop``.

    Brute-force reference implementation used as a test oracle and by the
    small-input code paths; the indexes provide the fast equivalents.
    """
    m = len(pattern)
    if m == 0:
        return list(range(len(text) + 1))
    pattern = list(pattern)
    text = list(text)
    positions = []
    for start in range(len(text) - m + 1):
        if text[start : start + m] == pattern and prop.covers(start, start + m):
            positions.append(start)
    return positions


# --------------------------------------------------------------------------- #
# flat-array encoding of the builder's laminar group tree                       #
# --------------------------------------------------------------------------- #
@dataclass
class GroupTreeArrays:
    """The laminar group family of the estimation builder as flat arrays.

    Nodes are numbered in preorder with sibling order preserved (the
    builder's greedy token-pool assignment pops tokens contributed by
    earlier children last, so sibling order is semantically load-bearing);
    ``parent[0] == -1``.  ``seg_start``/``mem_start`` are CSR offsets: node
    ``v`` owns segments ``seg_start[v]:seg_start[v+1]`` (each a
    ``(lo, hi, weight)`` level run, coarsest first, in the node's list
    order) and members ``mem_start[v]:mem_start[v+1]`` (``(level, token)``
    pairs, stored canonically sorted — the builder only ever consumes
    ``sorted(node.members)``).  Two snapshots of bit-identical builder
    states therefore encode to bit-identical arrays, which is what the
    resume path's convergence test compares.
    """

    parent: np.ndarray  # int64[count], preorder, parent[0] == -1
    seg_start: np.ndarray  # int64[count + 1]
    seg_lo: np.ndarray  # int64[segments]
    seg_hi: np.ndarray  # int64[segments]
    seg_weight: np.ndarray  # float64[segments]
    mem_start: np.ndarray  # int64[count + 1]
    mem_level: np.ndarray  # int64[members]
    mem_token: np.ndarray  # int64[members]

    @property
    def node_count(self) -> int:
        return int(len(self.parent))

    def equals(self, other: "GroupTreeArrays") -> bool:
        """Bit-exact equality (segment weights included — no tolerance)."""
        return (
            np.array_equal(self.parent, other.parent)
            and np.array_equal(self.seg_start, other.seg_start)
            and np.array_equal(self.seg_lo, other.seg_lo)
            and np.array_equal(self.seg_hi, other.seg_hi)
            and np.array_equal(self.seg_weight, other.seg_weight)
            and np.array_equal(self.mem_start, other.mem_start)
            and np.array_equal(self.mem_level, other.mem_level)
            and np.array_equal(self.mem_token, other.mem_token)
        )

    def nbytes(self) -> int:
        return int(
            sum(
                array.nbytes
                for array in (
                    self.parent,
                    self.seg_start,
                    self.seg_lo,
                    self.seg_hi,
                    self.seg_weight,
                    self.mem_start,
                    self.mem_level,
                    self.mem_token,
                )
            )
        )


def flatten_group_tree(root, *, root_hi: int | None = None) -> GroupTreeArrays:
    """Encode a builder group tree (``_Node`` objects) into flat arrays.

    ``root`` is duck-typed on ``segments`` / ``members`` / ``children``.
    ``root_hi`` overrides the inclusive upper level of the root's coarsest
    segment: the reference builder extends it one certain position at a
    time while the vectorised builder folds whole certain runs in lazily,
    so snapshots normalise it to the snapshot position to stay comparable.
    """
    order = []
    parents: list[int] = []
    stack = [(root, -1)]
    while stack:
        node, parent_index = stack.pop()
        index = len(order)
        order.append(node)
        parents.append(parent_index)
        for child in reversed(node.children):
            stack.append((child, index))
    seg_start = [0]
    mem_start = [0]
    seg_lo: list[int] = []
    seg_hi: list[int] = []
    seg_weight: list[float] = []
    mem_level: list[int] = []
    mem_token: list[int] = []
    for node in order:
        for lo, hi, weight in node.segments:
            seg_lo.append(int(lo))
            seg_hi.append(int(hi))
            seg_weight.append(float(weight))
        seg_start.append(len(seg_lo))
        for level, token in sorted(node.members):
            mem_level.append(int(level))
            mem_token.append(int(token))
        mem_start.append(len(mem_level))
    arrays = GroupTreeArrays(
        parent=np.asarray(parents, dtype=np.int64),
        seg_start=np.asarray(seg_start, dtype=np.int64),
        seg_lo=np.asarray(seg_lo, dtype=np.int64),
        seg_hi=np.asarray(seg_hi, dtype=np.int64),
        seg_weight=np.asarray(seg_weight, dtype=np.float64),
        mem_start=np.asarray(mem_start, dtype=np.int64),
        mem_level=np.asarray(mem_level, dtype=np.int64),
        mem_token=np.asarray(mem_token, dtype=np.int64),
    )
    if root_hi is not None and len(arrays.seg_hi):
        arrays.seg_hi[0] = int(root_hi)
    return arrays


def restore_group_tree(tree: GroupTreeArrays, node_factory):
    """Rebuild the live node tree from its flat encoding.

    ``node_factory(segments, members, children)`` constructs one node
    (matching the estimation builder's ``_Node`` signature).  Children are
    appended in preorder index order, which preserves the original sibling
    order.  Segment/member entries come back as plain Python scalars so
    resumed arithmetic matches the live builder's bit for bit.
    """
    seg_start = tree.seg_start.tolist()
    mem_start = tree.mem_start.tolist()
    seg_lo = tree.seg_lo.tolist()
    seg_hi = tree.seg_hi.tolist()
    seg_weight = tree.seg_weight.tolist()
    mem_level = tree.mem_level.tolist()
    mem_token = tree.mem_token.tolist()
    parents = tree.parent.tolist()
    nodes = []
    for index in range(tree.node_count):
        segments = [
            (seg_lo[s], seg_hi[s], seg_weight[s])
            for s in range(seg_start[index], seg_start[index + 1])
        ]
        members = [
            (mem_level[s], mem_token[s])
            for s in range(mem_start[index], mem_start[index + 1])
        ]
        node = node_factory(segments=segments, members=members, children=[])
        nodes.append(node)
        parent = parents[index]
        if parent >= 0:
            nodes[parent].children.append(node)
    return nodes[0] if nodes else node_factory(segments=[], members=[], children=[])
