"""Solid (z-valid) factors of a weighted string.

A factor ``U`` is *z-solid* at position ``i`` when its occurrence probability
there is at least ``1/z``.  This module provides explicit enumerators for
solid factors — right-maximal ones, maximal ones, and all of them — used by

* the brute-force oracles the test-suite compares every index against,
* the dataset statistics (e.g. counting solid windows of a given length),
* the pattern samplers that mimic the paper's experimental protocol.

The enumerators are DFS-based and run in time proportional to the number of
enumerated factors (which is ``O(n·z·L)`` in the worst case); the production
indexes never call them on large inputs — they exist to define ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .numerics import is_solid_probability, validate_threshold
from .weighted_string import WeightedString

__all__ = [
    "SolidFactor",
    "iter_solid_factors_at",
    "iter_solid_factors",
    "right_maximal_solid_factors_at",
    "maximal_solid_factors",
    "count_solid_windows",
    "longest_solid_factor_length",
]


@dataclass(frozen=True)
class SolidFactor:
    """A solid factor occurrence: ``codes`` read from ``start`` with ``probability``."""

    start: int
    codes: tuple[int, ...]
    probability: float

    @property
    def end(self) -> int:
        """Exclusive end position of the occurrence."""
        return self.start + len(self.codes)

    def __len__(self) -> int:
        return len(self.codes)


def iter_solid_factors_at(
    source: WeightedString,
    start: int,
    z: float,
    *,
    max_length: int | None = None,
) -> Iterator[SolidFactor]:
    """Yield every solid factor starting at ``start`` (DFS, shortest first on each branch)."""
    z = validate_threshold(z)
    limit = len(source) - start
    if max_length is not None:
        limit = min(limit, max_length)
    sigma = source.sigma

    def dfs(offset: int, probability: float, prefix: list[int]) -> Iterator[SolidFactor]:
        if offset >= limit:
            return
        position = start + offset
        for code in range(sigma):
            extended = probability * source.probability(position, code)
            if extended <= 0.0 or not is_solid_probability(extended, z):
                continue
            prefix.append(code)
            yield SolidFactor(start, tuple(prefix), extended)
            yield from dfs(offset + 1, extended, prefix)
            prefix.pop()

    yield from dfs(0, 1.0, [])


def iter_solid_factors(
    source: WeightedString, z: float, *, max_length: int | None = None
) -> Iterator[SolidFactor]:
    """Yield every solid factor of the weighted string (all starting positions)."""
    for start in range(len(source)):
        yield from iter_solid_factors_at(source, start, z, max_length=max_length)


def right_maximal_solid_factors_at(
    source: WeightedString, start: int, z: float
) -> list[SolidFactor]:
    """Solid factors at ``start`` that cannot be extended by any letter to the right."""
    z = validate_threshold(z)
    sigma = source.sigma
    results: list[SolidFactor] = []

    def extensible(offset: int, probability: float) -> bool:
        position = start + offset
        if position >= len(source):
            return False
        for code in range(sigma):
            if is_solid_probability(probability * source.probability(position, code), z):
                return True
        return False

    def dfs(offset: int, probability: float, prefix: list[int]) -> None:
        position = start + offset
        extended_any = False
        if position < len(source):
            for code in range(sigma):
                extended = probability * source.probability(position, code)
                if is_solid_probability(extended, z):
                    extended_any = True
                    prefix.append(code)
                    dfs(offset + 1, extended, prefix)
                    prefix.pop()
        if not extended_any and prefix:
            results.append(SolidFactor(start, tuple(prefix), probability))

    dfs(0, 1.0, [])
    return results


def maximal_solid_factors(source: WeightedString, z: float) -> list[SolidFactor]:
    """All maximal solid factors: not extensible to the right *or* to the left.

    A right-maximal factor at ``start`` is also left-maximal when there is no
    letter ``α`` such that ``α·U`` is solid at ``start - 1``.
    """
    z = validate_threshold(z)
    factors: list[SolidFactor] = []
    for start in range(len(source)):
        for factor in right_maximal_solid_factors_at(source, start, z):
            if start == 0:
                factors.append(factor)
                continue
            left_extensible = False
            for code in range(source.sigma):
                probability = source.probability(start - 1, code) * factor.probability
                if is_solid_probability(probability, z):
                    left_extensible = True
                    break
            if not left_extensible:
                factors.append(factor)
    return factors


def count_solid_windows(source: WeightedString, length: int, z: float) -> int:
    """Number of (position, string) pairs that are solid windows of a given length.

    Equals the number of length-``length`` factors counted with multiplicity
    over starting positions; useful for dataset statistics and for sizing
    pattern samples like the paper does.
    """
    z = validate_threshold(z)
    total = 0
    for start in range(len(source) - length + 1):
        for factor in iter_solid_factors_at(source, start, z, max_length=length):
            if len(factor) == length:
                total += 1
    return total


def longest_solid_factor_length(source: WeightedString, z: float) -> int:
    """Length of the longest solid factor anywhere in the weighted string."""
    z = validate_threshold(z)
    best = 0
    for start in range(len(source)):
        for factor in right_maximal_solid_factors_at(source, start, z):
            best = max(best, len(factor))
    return best
