"""Core data model: weighted strings, heavy strings, properties, z-estimations.

This subpackage contains the paper's data model (Section 2) and the
z-estimation transformation (Theorem 2) that every index builds on.
"""

from .alphabet import DNA, PROTEIN, Alphabet
from .estimation import ZEstimation, build_z_estimation
from .heavy import HeavyString, apply_mismatches, max_mismatches
from .numerics import is_solid_probability, solid_count, validate_threshold
from .properties import PropertyArray, property_occurrences
from .solid import (
    SolidFactor,
    count_solid_windows,
    iter_solid_factors,
    iter_solid_factors_at,
    longest_solid_factor_length,
    maximal_solid_factors,
    right_maximal_solid_factors_at,
)
from .weighted_string import WeightedString

__all__ = [
    "Alphabet",
    "DNA",
    "PROTEIN",
    "WeightedString",
    "HeavyString",
    "max_mismatches",
    "apply_mismatches",
    "PropertyArray",
    "property_occurrences",
    "ZEstimation",
    "build_z_estimation",
    "SolidFactor",
    "iter_solid_factors",
    "iter_solid_factors_at",
    "right_maximal_solid_factors_at",
    "maximal_solid_factors",
    "count_solid_windows",
    "longest_solid_factor_length",
    "is_solid_probability",
    "solid_count",
    "validate_threshold",
]
