"""Heavy strings and heavy prefix products (Definition 2, Lemma 3).

The heavy string ``H_X`` contains at each position the most probable letter.
Lemma 3 bounds the Hamming distance between any z-solid factor and the
corresponding heavy-string fragment by ``log2 z``, which is what makes the
Corollary-4 edge encoding (heavy interval + at most ``log2 z`` mismatches)
possible.  This module provides:

* :class:`HeavyString` — the heavy letters, their probabilities and
  log-domain prefix sums, giving O(1) products of heavy probabilities over
  arbitrary ranges (the ``PPH`` array of Algorithm 2);
* helpers to materialise a factor described as "heavy string plus a list of
  mismatches" and to verify Lemma 3.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from .numerics import is_solid_probability, validate_threshold
from .weighted_string import WeightedString

__all__ = ["HeavyString", "max_mismatches", "apply_mismatches"]


def max_mismatches(z: float) -> int:
    """``⌊log2 z⌋`` — Lemma 3's bound on mismatches of a solid factor vs ``H_X``."""
    z = validate_threshold(z)
    return int(math.floor(math.log2(z) + 1e-12))


class HeavyString:
    """The heavy string of a weighted string, with O(1) range products.

    Parameters
    ----------
    source:
        The weighted string ``X``.

    Notes
    -----
    Probability products over heavy ranges are computed from prefix sums of
    logarithms, so a single query costs O(1) and there is no underflow for
    long ranges.  Positions with heavy probability 0 cannot occur for a
    well-formed weighted string (rows sum to 1), so logs are always finite.
    """

    __slots__ = ("_codes", "_probabilities", "_logs", "_log_prefix", "_alphabet", "_length")

    def __init__(self, source: WeightedString) -> None:
        self._codes = source.heavy_codes()
        self._probabilities = source.heavy_probabilities()
        self._logs = np.log(np.maximum(self._probabilities, np.finfo(np.float64).tiny))
        self._log_prefix = np.concatenate([[0.0], np.cumsum(self._logs)])
        self._alphabet = source.alphabet
        self._length = len(source)

    # -- content -------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def codes(self) -> np.ndarray:
        """Heavy letter codes, one per position."""
        return self._codes

    @property
    def probabilities(self) -> np.ndarray:
        """Probability of the heavy letter at each position."""
        return self._probabilities

    def code(self, position: int) -> int:
        """Heavy letter code at ``position``."""
        return int(self._codes[position])

    def letter(self, position: int) -> str:
        """Heavy letter symbol at ``position``."""
        return self._alphabet.letter(self.code(position))

    def text(self) -> str:
        """The heavy string as text (``H_X``)."""
        return self._alphabet.decode(int(code) for code in self._codes)

    @property
    def log_probabilities(self) -> np.ndarray:
        """Natural logs of the heavy probabilities, one per position."""
        return self._logs

    # -- probabilities over ranges --------------------------------------------
    def log_range_product(self, start: int, stop: int) -> float:
        """Natural log of the product of heavy probabilities over ``[start, stop)``."""
        if start >= stop:
            return 0.0
        return float(self._log_prefix[stop] - self._log_prefix[start])

    def log_range_products(self, starts, stops) -> np.ndarray:
        """Vectorised :meth:`log_range_product` over arrays of ranges.

        The log-prefix cache turns a whole batch of heavy-range products into
        one subtraction; empty ranges (``start >= stop``) contribute 0.
        """
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        clamped = np.maximum(stops, starts)
        return self._log_prefix[clamped] - self._log_prefix[starts]

    def range_product(self, start: int, stop: int) -> float:
        """Product of heavy probabilities over ``[start, stop)`` (the PPH ratio)."""
        return math.exp(self.log_range_product(start, stop))

    def solid_heavy_run(self, start: int, z: float) -> int:
        """Longest ``L`` such that the heavy factor ``H[start .. start+L)`` is solid.

        Used by the space-efficient construction to know how far a factor can
        be extended "for free" along the heavy string.
        """
        z = validate_threshold(z)
        budget = -math.log(z) - 1e-12
        # Find the largest stop with log_prefix[stop] - log_prefix[start] >= budget.
        target = self._log_prefix[start] + budget
        # log_prefix is non-increasing? No: logs are <= 0, so prefix is non-increasing.
        # We need the last index stop >= start with log_prefix[stop] >= target.
        lo, hi = start, self._length
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._log_prefix[mid] >= target - 1e-15:
                lo = mid
            else:
                hi = mid - 1
        return lo - start

    # -- point updates ---------------------------------------------------------
    def updated_copy(self, source: WeightedString, positions) -> "HeavyString":
        """A heavy string reflecting ``source`` after point updates at ``positions``.

        Bit-identical to ``HeavyString(source)`` but computed by patching
        this (pre-update) heavy string: only the updated rows are re-argmaxed
        and only the log-prefix tail from the first touched position is
        re-accumulated.  Exactness of the tail relies on the prefix sums
        being a left-to-right accumulation: re-summing from the first
        changed index replays the identical addition order.
        """
        positions = sorted({int(position) for position in positions})
        clone = HeavyString.__new__(HeavyString)
        clone._alphabet = self._alphabet
        clone._length = self._length
        if not positions:
            clone._codes = self._codes
            clone._probabilities = self._probabilities
            clone._logs = self._logs
            clone._log_prefix = self._log_prefix
            return clone
        codes = self._codes.copy()
        probabilities = self._probabilities.copy()
        logs = self._logs.copy()
        tiny = np.finfo(np.float64).tiny
        for position in positions:
            row = source.distribution(position)
            codes[position] = int(np.argmax(row))
            probabilities[position] = row.max()
            logs[position] = np.log(max(probabilities[position], tiny))
        first = positions[0]
        log_prefix = self._log_prefix.copy()
        # np.cumsum is a sequential accumulation, so seeding it with the
        # prefix value at ``first`` replays the fresh build's addition order
        # exactly (a detached ``prefix[first] + cumsum(tail)`` would not).
        log_prefix[first:] = np.cumsum(
            np.concatenate([log_prefix[first : first + 1], logs[first:]])
        )
        clone._codes = codes
        clone._probabilities = probabilities
        clone._logs = logs
        clone._log_prefix = log_prefix
        return clone

    # -- factors expressed relative to the heavy string ------------------------
    def factor_codes(
        self, start: int, length: int, mismatches: Sequence[tuple[int, int]] = ()
    ) -> list[int]:
        """Materialise a factor = heavy fragment with substitutions applied.

        ``mismatches`` is a sequence of ``(absolute_position, code)`` pairs,
        exactly the Corollary-4 edge information.
        """
        codes = [int(code) for code in self._codes[start : start + length]]
        for position, code in mismatches:
            offset = position - start
            if 0 <= offset < length:
                codes[offset] = int(code)
        return codes

    def verify_lemma3(
        self, source: WeightedString, pattern: Sequence[int], position: int, z: float
    ) -> bool:
        """Check Lemma 3 for one factor: solid ⇒ ≤ log2 z mismatches with ``H_X``.

        Returns True when the implication holds (it always should); exposed
        mainly for tests and for documentation value.
        """
        z = validate_threshold(z)
        probability = source.occurrence_probability(pattern, position)
        if not is_solid_probability(probability, z):
            return True
        window = self._codes[position : position + len(pattern)]
        mismatches = int(np.count_nonzero(np.asarray(pattern) != window))
        return mismatches <= max_mismatches(z)


def apply_mismatches(
    heavy: HeavyString, start: int, stop: int, mismatches: Sequence[tuple[int, int]]
) -> list[int]:
    """Stand-alone variant of :meth:`HeavyString.factor_codes` on ``[start, stop)``."""
    return heavy.factor_codes(start, stop - start, mismatches)
