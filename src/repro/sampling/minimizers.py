"""(ℓ, k)-minimizer schemes (Section 2, Definition 1, Lemma 1).

A minimizer scheme selects, inside every length-ℓ window of a string, the
starting position of the leftmost occurrence of the smallest length-k
substring, according to a fixed order on k-mers.  Two orders are provided:

* ``"lexicographic"`` — plain lexicographic order of k-mers (Example 2);
* ``"random"`` — the order of the k-mers' splitmix64-mixed integer codes,
  which plays the role of the Karp–Rabin-fingerprint order used by the
  paper's implementation and makes the density behave like the random-order
  analysis behind Lemma 1.

The same scheme object is shared by every construction path of the library
(the explicit z-estimation construction, the space-efficient DFS
construction and the query-time leftmost-minimizer computation), so they all
sample exactly the same positions.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..errors import ReproError
from ..strings.karp_rabin import mix64, mix64_array

__all__ = ["MinimizerScheme", "default_k", "sliding_window_argmin"]


def sliding_window_argmin(values: np.ndarray, width: int) -> np.ndarray:
    """Leftmost argmin of every length-``width`` window of ``values``.

    Returns an array ``a`` of length ``len(values) - width + 1`` where
    ``a[i]`` is the smallest index attaining ``min(values[i : i + width])``.
    Runs in O(n) with pure array operations: values are cut into blocks of
    ``width`` entries, running argminima are accumulated towards the right
    (block prefixes) and towards the left (block suffixes), and every window
    is the union of one block suffix and one block prefix.
    """
    values = np.asarray(values)
    n = len(values)
    if width <= 0:
        raise ReproError("window width must be positive")
    if n < width:
        return np.empty(0, dtype=np.int64)
    if width == 1:
        return np.arange(n, dtype=np.int64)
    if np.issubdtype(values.dtype, np.integer):
        sentinel = np.iinfo(values.dtype).max
    else:
        sentinel = np.inf
    blocks = -(-n // width)
    padded = np.full(blocks * width, sentinel, dtype=values.dtype)
    padded[:n] = values
    grid = padded.reshape(blocks, width)
    index_grid = np.arange(blocks * width, dtype=np.int64).reshape(blocks, width)

    # Prefix scan: leftmost index of the running minimum of each block prefix.
    # A strictly smaller value starts a new argmin; ties keep the older
    # (smaller) index, so accumulating the maximum of "event" indices yields
    # the most recent strict improvement.
    prefix_min = np.minimum.accumulate(grid, axis=1)
    improved = np.empty(grid.shape, dtype=bool)
    improved[:, 0] = True
    improved[:, 1:] = grid[:, 1:] < prefix_min[:, :-1]
    prefix_argmin = np.maximum.accumulate(np.where(improved, index_grid, 0), axis=1)

    # Suffix scan (on reversed blocks): an equal value at an earlier original
    # index also improves the leftmost argmin, hence "<=", and the most
    # recent improvement carries the smallest original index.
    reversed_grid = grid[:, ::-1]
    suffix_min = np.minimum.accumulate(reversed_grid, axis=1)
    improved[:, 0] = True
    improved[:, 1:] = reversed_grid[:, 1:] <= suffix_min[:, :-1]
    far = np.iinfo(np.int64).max
    suffix_argmin = np.minimum.accumulate(
        np.where(improved, index_grid[:, ::-1], far), axis=1
    )[:, ::-1]
    suffix_min = suffix_min[:, ::-1]

    starts = np.arange(n - width + 1, dtype=np.int64)
    ends = starts + width - 1
    left_value = suffix_min[starts // width, starts % width]
    left_index = suffix_argmin[starts // width, starts % width]
    right_value = prefix_min[ends // width, ends % width]
    right_index = prefix_argmin[ends // width, ends % width]
    # The block suffix covers the earlier part of the window, so on ties it
    # holds the leftmost occurrence of the window minimum.
    return np.where(left_value <= right_value, left_index, right_index)


def default_k(ell: int, sigma: int) -> int:
    """The default k-mer length for a window length ℓ and alphabet size σ.

    Lemma 1 requires ``k ≥ log_σ ℓ + c`` for the expected density to be
    ``O(1/ℓ)``; we use ``⌈log_σ ℓ⌉ + 2`` capped to ℓ and to what fits in a
    64-bit integer code.
    """
    if ell <= 0:
        raise ReproError("the window length ell must be positive")
    sigma = max(2, sigma)
    k = int(math.ceil(math.log(max(ell, 2), sigma))) + 2
    k = max(2, min(k, ell))
    # Keep sigma**k comfortably inside 63 bits so integer codes are exact.
    while sigma ** k >= (1 << 62) and k > 1:
        k -= 1
    return k


class MinimizerScheme:
    """An (ℓ, k)-minimizer scheme over an integer alphabet.

    Parameters
    ----------
    ell:
        Window length (the paper's ℓ — also the minimum query length).
    sigma:
        Alphabet size (codes must lie in ``[0, sigma)``).
    k:
        k-mer length; defaults to :func:`default_k`.
    order:
        ``"random"`` (default, Karp–Rabin-style) or ``"lexicographic"``.
    """

    __slots__ = ("ell", "sigma", "k", "order")

    def __init__(
        self,
        ell: int,
        sigma: int,
        k: int | None = None,
        order: str = "random",
    ) -> None:
        if ell <= 0:
            raise ReproError("ell must be positive")
        if sigma <= 0:
            raise ReproError("sigma must be positive")
        if order not in {"random", "lexicographic"}:
            raise ReproError(f"unknown minimizer order {order!r}")
        self.ell = int(ell)
        self.sigma = int(sigma)
        self.k = int(k) if k is not None else default_k(ell, sigma)
        if not 1 <= self.k <= self.ell:
            raise ReproError("k must satisfy 1 <= k <= ell")
        self.order = order

    # -- k-mer codes and their order -------------------------------------------------
    @property
    def window_kmers(self) -> int:
        """Number of k-mer starting offsets inside one window (ℓ - k + 1)."""
        return self.ell - self.k + 1

    def kmer_codes(self, codes: Sequence[int]) -> np.ndarray:
        """Integer codes of all k-mers of ``codes`` (length ``n - k + 1``).

        Accepts one string (1D) or a batch of equal-length strings (2D, one
        row per string); k-mers are always read along the last axis.
        """
        codes = np.asarray(codes, dtype=np.int64)
        n = codes.shape[-1]
        if n < self.k:
            return np.empty(codes.shape[:-1] + (0,), dtype=np.int64)
        result = np.zeros(codes.shape[:-1] + (n - self.k + 1,), dtype=np.int64)
        for offset in range(self.k):
            result = result * self.sigma + codes[..., offset : n - self.k + 1 + offset]
        return result

    def order_values(self, kmer_codes: np.ndarray) -> np.ndarray:
        """The comparison keys of k-mer codes under the scheme's order."""
        if self.order == "lexicographic":
            return np.asarray(kmer_codes, dtype=np.uint64)
        return mix64_array(np.asarray(kmer_codes, dtype=np.uint64))

    def order_value(self, kmer_code: int) -> int:
        """Scalar version of :meth:`order_values` (used by the DFS construction)."""
        if self.order == "lexicographic":
            return int(kmer_code)
        return mix64(int(kmer_code))

    # -- single windows (queries) ---------------------------------------------------
    def window_minimizer(self, window: Sequence[int]) -> int:
        """Offset (0-based) of the minimizer inside one length-ℓ window.

        This is the function ``f`` of the paper: the leftmost occurrence of
        the smallest k-mer of the window.  The window may be longer than ℓ;
        only its first ℓ letters are considered (the paper's
        ``f(P[1..ℓ])``).
        """
        window = np.asarray(window[: self.ell], dtype=np.int64)
        if len(window) < self.ell:
            raise ReproError(
                f"window of length {len(window)} is shorter than ell={self.ell}"
            )
        kmers = self.kmer_codes(window)
        values = self.order_values(kmers)
        return int(np.argmin(values))

    def leftmost_pattern_minimizer(self, pattern: Sequence[int]) -> int:
        """Minimizer offset of the first window of a pattern of length ≥ ℓ."""
        if len(pattern) < self.ell:
            raise ReproError(
                f"pattern of length {len(pattern)} is shorter than ell={self.ell}"
            )
        return self.window_minimizer(pattern)

    def leftmost_pattern_minimizers(self, patterns: Sequence[Sequence[int]]) -> np.ndarray:
        """Vectorised :meth:`leftmost_pattern_minimizer` over a pattern batch.

        Only the first ℓ letters of each pattern matter, so the batch is
        packed into a ``(B × ℓ)`` matrix and all minimizer offsets are
        computed with a single argmin.
        """
        if len(patterns) == 0:
            return np.empty(0, dtype=np.int64)
        windows = np.empty((len(patterns), self.ell), dtype=np.int64)
        for row, pattern in enumerate(patterns):
            if len(pattern) < self.ell:
                raise ReproError(
                    f"pattern of length {len(pattern)} is shorter than ell={self.ell}"
                )
            windows[row] = np.asarray(pattern[: self.ell], dtype=np.int64)
        values = self.order_values(self.kmer_codes(windows))
        return np.argmin(values, axis=1).astype(np.int64)

    # -- whole strings ------------------------------------------------------------------
    def minimizer_positions(
        self,
        codes: Sequence[int],
        valid_window: Sequence[bool] | None = None,
    ) -> list[int]:
        """Selected (minimizer) positions over all windows of ``codes``.

        ``valid_window[i]`` restricts the computation to windows starting at
        ``i`` for which it is true — this is how minimizers "respecting the
        property" of a z-estimation string are computed: a window is only
        considered when it lies inside the property of its start.
        Returns the sorted list of distinct selected positions.
        """
        codes = np.asarray(codes, dtype=np.int64)
        n = len(codes)
        if n < self.ell:
            return []
        values = self.order_values(self.kmer_codes(codes))
        window_count = n - self.ell + 1
        # Leftmost argmin of every window of ℓ - k + 1 consecutive k-mers;
        # window i covers k-mer starts [i, i + ℓ - k], i.e. text window
        # [i, i + ℓ).
        window_minima = sliding_window_argmin(values, self.window_kmers)
        window_minima = window_minima[:window_count]
        if valid_window is not None:
            mask = np.asarray(valid_window, dtype=bool)[:window_count]
            window_minima = window_minima[mask]
        return [int(position) for position in np.unique(window_minima)]

    def density(self, codes: Sequence[int]) -> float:
        """Specific density of the scheme on ``codes`` (Definition 1)."""
        codes = np.asarray(codes, dtype=np.int64)
        if len(codes) == 0:
            return 0.0
        return len(self.minimizer_positions(codes)) / len(codes)

    def expected_density_bound(self) -> float:
        """The O(1/ℓ)-style bound of Lemma 1 (2 / (ℓ - k + 2)) for reference."""
        return 2.0 / (self.ell - self.k + 2)

    def __repr__(self) -> str:
        return (
            f"MinimizerScheme(ell={self.ell}, k={self.k}, sigma={self.sigma}, "
            f"order={self.order!r})"
        )
