"""Sampling substrate: (ℓ, k)-minimizer schemes."""

from .minimizers import MinimizerScheme, default_k

__all__ = ["MinimizerScheme", "default_k"]
