"""A minimal VCF-like SNP table format and the reference+SNP → weighted string step.

The paper combines a reference genome with a set of SNPs and their allele
frequencies (Section 7.1).  We support a small tab-separated format with the
columns ``POS  REF  ALT  AF`` (1-based position, reference allele,
alternative allele, alternative allele frequency), which is the part of VCF
the construction actually needs, plus the function that assembles the
weighted string from a reference sequence and such a table.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.weighted_string import WeightedString
from ..errors import SerializationError

__all__ = ["read_snp_table", "write_snp_table", "weighted_string_from_reference_and_snps"]


def read_snp_table(path) -> list[dict]:
    """Read a ``POS REF ALT AF`` tab-separated SNP table (1-based positions)."""
    path = Path(path)
    rows: list[dict] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split("\t") if "\t" in line else line.split()
                if len(fields) < 4:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 4 columns (POS REF ALT AF)"
                    )
                try:
                    rows.append(
                        {
                            "position": int(fields[0]),
                            "reference": fields[1].upper(),
                            "alternative": fields[2].upper(),
                            "frequency": float(fields[3]),
                        }
                    )
                except ValueError as exc:
                    raise SerializationError(
                        f"{path}:{line_number}: malformed SNP row: {exc}"
                    ) from exc
    except OSError as exc:
        raise SerializationError(f"cannot read SNP table {path}: {exc}") from exc
    return rows


def write_snp_table(path, rows: list[dict]) -> None:
    """Write SNP rows (as produced by the genome generator) to a table file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("#POS\tREF\tALT\tAF\n")
        for row in rows:
            handle.write(
                f"{row['position']}\t{row['reference']}\t{row['alternative']}\t"
                f"{row['frequency']:.6f}\n"
            )


def weighted_string_from_reference_and_snps(
    reference: str,
    snps: list[dict],
    *,
    alphabet: Alphabet | None = None,
    one_based: bool = True,
) -> WeightedString:
    """Build a weighted string from a reference sequence and SNP frequencies.

    Every non-polymorphic position carries the reference letter with
    probability 1; a SNP row moves ``frequency`` of the mass to the
    alternative allele — the construction described in Section 7.1.
    """
    reference = reference.upper()
    if alphabet is None:
        letters = sorted(set(reference) | {row["alternative"] for row in snps})
        alphabet = Alphabet(letters)
    codes = alphabet.encode(reference)
    matrix = np.zeros((len(codes), alphabet.size), dtype=np.float64)
    matrix[np.arange(len(codes)), codes] = 1.0
    offset = 1 if one_based else 0
    for row in snps:
        position = row["position"] - offset
        if not 0 <= position < len(codes):
            raise SerializationError(
                f"SNP position {row['position']} outside the reference of length {len(codes)}"
            )
        frequency = float(row["frequency"])
        if not 0.0 <= frequency <= 1.0:
            raise SerializationError(f"allele frequency {frequency} outside [0, 1]")
        reference_code = alphabet.code(row["reference"])
        alternative_code = alphabet.code(row["alternative"])
        if codes[position] != reference_code:
            raise SerializationError(
                f"SNP at position {row['position']} disagrees with the reference letter"
            )
        matrix[position, reference_code] = 1.0 - frequency
        matrix[position, alternative_code] += frequency
    return WeightedString(matrix, alphabet)
