"""JSON serialisation of weighted strings and z-estimations.

Indexes themselves are cheap to rebuild from a weighted string, so the
persistent artefacts of a workflow are the weighted string (and, when one
wants to freeze the sampling, its z-estimation); both round-trip through
JSON here.  The format favours readability over compactness — large inputs
should be regenerated or stored as PWM files instead.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.estimation import ZEstimation
from ..core.weighted_string import WeightedString
from ..errors import SerializationError

__all__ = [
    "save_weighted_string",
    "load_weighted_string",
    "save_estimation",
    "load_estimation",
]

_FORMAT_VERSION = 1
_SUPPORTED_VERSIONS = (1,)


def save_weighted_string(path, weighted: WeightedString) -> None:
    """Write a weighted string to a JSON file."""
    payload = {
        "format": "repro.weighted_string",
        "version": _FORMAT_VERSION,
        "alphabet": list(weighted.alphabet.letters),
        "probabilities": weighted.matrix.tolist(),
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_weighted_string(path) -> WeightedString:
    """Read a weighted string from a JSON file written by :func:`save_weighted_string`.

    Probabilities round-trip at full float64 precision: JSON floats are
    written with ``repr`` (shortest exact representation) and the loaded
    matrix is *not* re-normalised — rescaling rows would perturb the stored
    values by one ulp and break bit-identical reloads.
    """
    payload = _load_payload(path, "repro.weighted_string")
    alphabet = Alphabet(payload["alphabet"])
    matrix = np.asarray(payload["probabilities"], dtype=np.float64)
    if matrix.size == 0:
        matrix = matrix.reshape(0, alphabet.size)
    return WeightedString(matrix, alphabet)


def save_estimation(path, estimation: ZEstimation) -> None:
    """Write a z-estimation to a JSON file."""
    payload = {
        "format": "repro.z_estimation",
        "version": _FORMAT_VERSION,
        "z": estimation.z,
        "alphabet": list(estimation.alphabet.letters),
        "strings": estimation.strings.tolist(),
        "ends": estimation.ends.tolist(),
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_estimation(path) -> ZEstimation:
    """Read a z-estimation from a JSON file written by :func:`save_estimation`."""
    payload = _load_payload(path, "repro.z_estimation")
    strings = np.asarray(payload["strings"], dtype=np.int64)
    ends = np.asarray(payload["ends"], dtype=np.int64)
    if strings.shape != ends.shape:
        raise SerializationError("strings and property arrays have mismatched shapes")
    return ZEstimation(strings, ends, float(payload["z"]), Alphabet(payload["alphabet"]))


def _load_payload(path, expected_format: str) -> dict:
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SerializationError(f"{path} does not contain a JSON object")
    if payload.get("format") != expected_format:
        raise SerializationError(
            f"{path} has format {payload.get('format')!r}, expected {expected_format!r}"
        )
    if payload.get("version") not in _SUPPORTED_VERSIONS:
        supported = ", ".join(str(version) for version in _SUPPORTED_VERSIONS)
        raise SerializationError(
            f"{path} has unsupported version {payload.get('version')!r} "
            f"(supported: {supported})"
        )
    return payload
