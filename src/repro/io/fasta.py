"""Minimal FASTA reading/writing.

The genomic weighted strings of the paper are built from a FASTA reference
plus a SNP table; this module provides the FASTA half of that pipeline so
that users can feed their own references into
:func:`repro.io.vcf.weighted_string_from_reference_and_snps`.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import SerializationError

__all__ = ["read_fasta", "write_fasta"]


def read_fasta(path) -> dict[str, str]:
    """Read a FASTA file into an ``{identifier: sequence}`` dictionary."""
    path = Path(path)
    sequences: dict[str, str] = {}
    current_id: str | None = None
    chunks: list[str] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for raw_line in handle:
                line = raw_line.strip()
                if not line:
                    continue
                if line.startswith(">"):
                    if current_id is not None:
                        sequences[current_id] = "".join(chunks)
                    current_id = line[1:].split()[0] if len(line) > 1 else ""
                    chunks = []
                else:
                    if current_id is None:
                        raise SerializationError(
                            f"{path}: sequence data before the first FASTA header"
                        )
                    chunks.append(line.upper())
    except OSError as exc:
        raise SerializationError(f"cannot read FASTA file {path}: {exc}") from exc
    if current_id is not None:
        sequences[current_id] = "".join(chunks)
    if not sequences:
        raise SerializationError(f"{path}: no FASTA records found")
    return sequences


def write_fasta(path, sequences: dict[str, str], *, width: int = 70) -> None:
    """Write an ``{identifier: sequence}`` dictionary as a FASTA file."""
    path = Path(path)
    if width <= 0:
        raise SerializationError("line width must be positive")
    with path.open("w", encoding="utf-8") as handle:
        for identifier, sequence in sequences.items():
            handle.write(f">{identifier}\n")
            for start in range(0, len(sequence), width):
                handle.write(sequence[start : start + width] + "\n")
