"""File formats: FASTA, SNP tables, PWMs, JSON artefacts, the binary index store."""

from .fasta import read_fasta, write_fasta
from .pwm import read_pwm, write_pwm
from .serialization import (
    load_estimation,
    load_weighted_string,
    save_estimation,
    save_weighted_string,
)
from .store import (
    SHARDED_STORE_FORMAT,
    SHARDED_STORE_VERSION,
    STORE_FORMAT,
    STORE_VERSION,
    load_index,
    load_sharded_store,
    refresh_sharded_store,
    save_index,
    save_sharded_store,
)
from .vcf import (
    read_snp_table,
    weighted_string_from_reference_and_snps,
    write_snp_table,
)

__all__ = [
    "read_fasta",
    "write_fasta",
    "read_snp_table",
    "write_snp_table",
    "weighted_string_from_reference_and_snps",
    "read_pwm",
    "write_pwm",
    "save_weighted_string",
    "load_weighted_string",
    "save_estimation",
    "load_estimation",
    "save_index",
    "load_index",
    "save_sharded_store",
    "load_sharded_store",
    "refresh_sharded_store",
    "STORE_FORMAT",
    "STORE_VERSION",
    "SHARDED_STORE_FORMAT",
    "SHARDED_STORE_VERSION",
]
