"""Position-weight-matrix text format for weighted strings.

Weighted strings are known as position weight matrices in bioinformatics
(Section 1.1); this module reads and writes the standard ``σ × n`` matrix
layout used by the paper's Example 1: one row per letter, one column per
position, whitespace-separated probabilities.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.weighted_string import WeightedString
from ..errors import SerializationError

__all__ = ["read_pwm", "write_pwm"]


def read_pwm(path) -> WeightedString:
    """Read a weighted string from a PWM text file.

    The format is one line per letter: the letter symbol followed by ``n``
    probabilities.  Lines starting with ``#`` are comments.
    """
    path = Path(path)
    letters: list[str] = []
    rows: list[list[float]] = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, raw_line in enumerate(handle, start=1):
                line = raw_line.strip()
                if not line or line.startswith("#"):
                    continue
                fields = line.split()
                if len(fields) < 2:
                    raise SerializationError(
                        f"{path}:{line_number}: expected a letter and probabilities"
                    )
                letters.append(fields[0])
                try:
                    rows.append([float(value) for value in fields[1:]])
                except ValueError as exc:
                    raise SerializationError(
                        f"{path}:{line_number}: malformed probability: {exc}"
                    ) from exc
    except OSError as exc:
        raise SerializationError(f"cannot read PWM file {path}: {exc}") from exc
    if not rows:
        raise SerializationError(f"{path}: empty position weight matrix")
    lengths = {len(row) for row in rows}
    if len(lengths) != 1:
        raise SerializationError(f"{path}: rows have inconsistent lengths {sorted(lengths)}")
    matrix = np.asarray(rows, dtype=np.float64).T  # rows are letters -> transpose
    return WeightedString(matrix, Alphabet(letters), normalize=True)


def write_pwm(path, weighted: WeightedString, *, precision: int = 6) -> None:
    """Write a weighted string as a PWM text file (σ rows × n columns)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# position weight matrix: sigma={weighted.sigma} n={len(weighted)}\n")
        for code, letter in enumerate(weighted.alphabet.letters):
            values = " ".join(
                f"{weighted.matrix[position, code]:.{precision}f}"
                for position in range(len(weighted))
            )
            handle.write(f"{letter} {values}\n")
