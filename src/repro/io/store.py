"""The binary index store: save built indexes, memory-map them back.

Index construction is the expensive part of every workflow (z-estimation,
suffix sorting, minimizer sampling); the store persists the *constructed*
artefacts so a saved index answers queries after a cheap reload instead of a
rebuild.  One file holds one index — monolithic or sharded — in a simple
container:

======  ====================================================================
bytes   content
======  ====================================================================
0–7     magic ``b"RPROIDX\\n"``
8–15    little-endian ``uint64``: byte length of the JSON header
16–     JSON header: ``format`` / ``version`` fields, the index metadata and
        an array manifest ``{name: {dtype, shape, offset}}``
...     64-byte-aligned raw array blobs (C order, native dtypes)
======  ====================================================================

Arrays are loaded with :func:`numpy.memmap` by default, so the probability
matrix and the leaf/suffix arrays stay on disk until touched; pass
``mmap=False`` to read everything into RAM.  The heavy construction stages
are never re-run on load — only small query-acceleration caches (compacted
tries, range-maximum tables, 2D grids) are re-derived from the persisted
arrays.  Unknown magic numbers, formats or versions raise
:class:`~repro.errors.SerializationError` with the supported versions listed.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import SerializationError
from ..sampling.minimizers import MinimizerScheme
from ..version import __version__

__all__ = ["save_index", "load_index", "STORE_FORMAT", "STORE_VERSION"]

_MAGIC = b"RPROIDX\n"
_ALIGNMENT = 64

STORE_FORMAT = "repro.index_store"
STORE_VERSION = 1
_SUPPORTED_VERSIONS = (1,)


# --------------------------------------------------------------------------- #
# container reading / writing                                                  #
# --------------------------------------------------------------------------- #
def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _write_container(path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    manifest = {}
    offset = 0
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        manifest[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        blobs.append((offset, array))
        offset += array.nbytes
    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "writer": __version__,
        "meta": meta,
        "arrays": manifest,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    data_start = _align(len(_MAGIC) + 8 + len(header_bytes))
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes)))
        handle.write(header_bytes)
        for blob_offset, array in blobs:
            handle.seek(data_start + blob_offset)
            handle.write(array.tobytes())


class _Container:
    """A parsed store file: the header plus lazy array access."""

    def __init__(self, path, mmap: bool) -> None:
        self.path = Path(path)
        self.mmap = mmap
        try:
            with open(self.path, "rb") as handle:
                magic = handle.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise SerializationError(
                        f"{self.path} is not a repro index store (bad magic)"
                    )
                (header_length,) = struct.unpack("<Q", handle.read(8))
                header = json.loads(handle.read(header_length).decode("utf-8"))
        except OSError as exc:
            raise SerializationError(f"cannot read {self.path}: {exc}") from exc
        except (json.JSONDecodeError, struct.error, UnicodeDecodeError) as exc:
            raise SerializationError(
                f"{self.path} has a corrupt index-store header: {exc}"
            ) from exc
        if header.get("format") != STORE_FORMAT:
            raise SerializationError(
                f"{self.path} has format {header.get('format')!r}, "
                f"expected {STORE_FORMAT!r}"
            )
        if header.get("version") not in _SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in _SUPPORTED_VERSIONS)
            raise SerializationError(
                f"{self.path} has unsupported index-store version "
                f"{header.get('version')!r} (supported: {supported})"
            )
        self.meta = header["meta"]
        self._manifest = header["arrays"]
        self._data_start = _align(len(_MAGIC) + 8 + header_length)

    def array(self, name: str) -> np.ndarray:
        try:
            spec = self._manifest[name]
        except KeyError:
            raise SerializationError(
                f"{self.path} is missing the stored array {name!r}"
            ) from None
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        offset = self._data_start + spec["offset"]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count == 0:  # zero-byte blobs cannot be memory-mapped
            return np.empty(shape, dtype=dtype)
        if self.mmap:
            return np.memmap(self.path, dtype=dtype, mode="r", offset=offset, shape=shape)
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            flat = np.fromfile(handle, dtype=dtype, count=count)
        return flat.reshape(shape)


# --------------------------------------------------------------------------- #
# leaf collections                                                             #
# --------------------------------------------------------------------------- #
def _pack_collection(arrays: dict, prefix: str, collection) -> None:
    leaves = list(collection)
    arrays[f"{prefix}.anchor"] = np.array([l.anchor for l in leaves], dtype=np.int64)
    arrays[f"{prefix}.length"] = np.array([l.length for l in leaves], dtype=np.int64)
    arrays[f"{prefix}.position"] = np.array([l.position for l in leaves], dtype=np.int64)
    arrays[f"{prefix}.source"] = np.array([l.source for l in leaves], dtype=np.int64)
    starts = np.zeros(len(leaves) + 1, dtype=np.int64)
    offsets: list[int] = []
    codes: list[int] = []
    for row, leaf in enumerate(leaves):
        for offset, code in leaf.mismatches:
            offsets.append(offset)
            codes.append(code)
        starts[row + 1] = len(offsets)
    arrays[f"{prefix}.mm_start"] = starts
    arrays[f"{prefix}.mm_offset"] = np.array(offsets, dtype=np.int64)
    arrays[f"{prefix}.mm_code"] = np.array(codes, dtype=np.int64)


def _unpack_collection(container: _Container, prefix: str, reference, lcps=None):
    from ..indexes.minimizer_core import FactorLeaf, LeafCollection

    anchor = container.array(f"{prefix}.anchor")
    length = container.array(f"{prefix}.length")
    position = container.array(f"{prefix}.position")
    source_ids = container.array(f"{prefix}.source")
    starts = container.array(f"{prefix}.mm_start")
    offsets = container.array(f"{prefix}.mm_offset")
    codes = container.array(f"{prefix}.mm_code")
    leaves = []
    for row in range(len(anchor)):
        lo, hi = int(starts[row]), int(starts[row + 1])
        mismatches = tuple(
            (int(offsets[index]), int(codes[index])) for index in range(lo, hi)
        )
        leaves.append(
            FactorLeaf(
                anchor=int(anchor[row]),
                length=int(length[row]),
                mismatches=mismatches,
                position=int(position[row]),
                source=int(source_ids[row]),
            )
        )
    return LeafCollection(leaves, reference, presorted=True, trie_lcps=lcps)


# --------------------------------------------------------------------------- #
# per-family packing                                                           #
# --------------------------------------------------------------------------- #
def _stats_meta(stats) -> dict:
    return {
        "name": stats.name,
        "index_size_bytes": stats.index_size_bytes,
        "construction_space_bytes": stats.construction_space_bytes,
        "construction_seconds": stats.construction_seconds,
        "counters": stats.counters,
    }


def _stats_from_meta(meta: dict):
    from ..indexes.space import IndexStats

    counters = dict(meta.get("counters", {}))
    counters["loaded_from_store"] = True
    return IndexStats(
        name=meta.get("name", ""),
        index_size_bytes=int(meta.get("index_size_bytes", 0)),
        construction_space_bytes=int(meta.get("construction_space_bytes", 0)),
        construction_seconds=float(meta.get("construction_seconds", 0.0)),
        counters=counters,
    )


def _pack_body(index, arrays: dict, prefix: str) -> dict:
    """Pack one index's artefacts (everything but its source matrix)."""
    from ..indexes.mwst import MinimizerIndexBase
    from ..indexes.sharded import ShardedIndex
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree

    if isinstance(index, ShardedIndex):
        shard_metas = []
        for number, (shard, shard_index) in enumerate(
            zip(index.shards, index.shard_indexes)
        ):
            body = _pack_body(shard_index, arrays, f"{prefix}s{number}.")
            body["plan"] = [shard.start, shard.core_end, shard.end]
            shard_metas.append(body)
        return {
            "family": "sharded",
            "kind": index.kind,
            "max_pattern_len": index.maximum_pattern_length,
            "shards": shard_metas,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, MinimizerIndexBase):
        data = index.data
        _pack_collection(arrays, f"{prefix}fwd", data.forward)
        _pack_collection(arrays, f"{prefix}bwd", data.backward)
        if index.use_trie:
            arrays[f"{prefix}fwd.lcp"] = data.forward.adjacent_lcps()
            arrays[f"{prefix}bwd.lcp"] = data.backward.adjacent_lcps()
        if data.pairs is not None:
            arrays[f"{prefix}pairs"] = np.array(data.pairs, dtype=np.int64).reshape(
                len(data.pairs), 2
            )
        scheme = data.scheme
        return {
            "family": "minimizer",
            "kind": index.name,
            "ell": data.ell,
            "construction": data.construction,
            "counters": data.counters,
            "scheme": {
                "ell": scheme.ell,
                "sigma": scheme.sigma,
                "k": scheme.k,
                "order": scheme.order,
            },
            "has_pairs": data.pairs is not None,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, (WeightedSuffixArray, WeightedSuffixTree)):
        structure = index.structure
        arrays[f"{prefix}ps.text"] = structure.text
        arrays[f"{prefix}ps.sa"] = structure.sa
        if structure.lcp is not None:
            arrays[f"{prefix}ps.lcp"] = structure.lcp
        arrays[f"{prefix}ps.rank_positions"] = structure.rank_positions
        arrays[f"{prefix}ps.rank_valid_lengths"] = structure.rank_valid_lengths
        return {
            "family": "wst" if isinstance(index, WeightedSuffixTree) else "wsa",
            "kind": index.name,
            "estimation_width": structure.estimation_width,
            "estimation_length": structure.estimation_length,
            "stats": _stats_meta(index.stats),
        }
    raise SerializationError(
        f"indexes of type {type(index).__name__} cannot be stored yet"
    )


def _unpack_body(container: _Container, meta: dict, prefix: str, source, z: float):
    family = meta.get("family")
    if family == "sharded":
        return _unpack_sharded(container, meta, prefix, source, z)
    if family == "minimizer":
        return _unpack_minimizer(container, meta, prefix, source, z)
    if family in {"wst", "wsa"}:
        return _unpack_baseline(container, meta, prefix, source, z)
    raise SerializationError(f"unknown stored index family {family!r}")


def _unpack_minimizer(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.minimizer_core import MinimizerIndexData
    from ..indexes.registry import get_spec

    cls = get_spec(meta["kind"]).cls
    scheme_meta = meta["scheme"]
    scheme = MinimizerScheme(
        scheme_meta["ell"], scheme_meta["sigma"], scheme_meta["k"], scheme_meta["order"]
    )
    heavy = HeavyString(source)
    forward_lcps = backward_lcps = None
    if cls.use_trie:
        forward_lcps = container.array(f"{prefix}fwd.lcp")
        backward_lcps = container.array(f"{prefix}bwd.lcp")
    forward = _unpack_collection(container, f"{prefix}fwd", heavy.codes, forward_lcps)
    backward = _unpack_collection(
        container, f"{prefix}bwd", heavy.codes[::-1].copy(), backward_lcps
    )
    pairs = None
    if meta.get("has_pairs"):
        pairs_array = container.array(f"{prefix}pairs")
        pairs = [(int(x), int(y)) for x, y in pairs_array]
    data = MinimizerIndexData(
        source=source,
        z=z,
        ell=int(meta["ell"]),
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction=meta.get("construction", "estimation"),
        counters=dict(meta.get("counters", {})),
    )
    grid = None
    if cls.use_grid:
        from ..geometry.grid import Grid2D

        if pairs is None:
            raise SerializationError(
                f"stored {meta['kind']} index is missing its grid pairing"
            )
        grid = Grid2D(pairs)
    return cls(source, z, data, _stats_from_meta(meta["stats"]), grid)


def _unpack_baseline(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.property_structures import PropertySuffixStructure
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree, _SuffixLetterAccessor
    from ..strings.trie import CompactedTrie

    with_lcp = meta["family"] == "wst"
    lcp = container.array(f"{prefix}ps.lcp") if with_lcp else None
    structure = PropertySuffixStructure.from_arrays(
        container.array(f"{prefix}ps.text"),
        container.array(f"{prefix}ps.sa"),
        lcp,
        container.array(f"{prefix}ps.rank_positions"),
        container.array(f"{prefix}ps.rank_valid_lengths"),
        int(meta["estimation_width"]),
        int(meta["estimation_length"]),
    )
    stats = _stats_from_meta(meta["stats"])
    if meta["family"] == "wsa":
        return WeightedSuffixArray(source, z, structure, stats)
    lengths = len(structure.text) - structure.sa
    trie = CompactedTrie(
        lengths, structure.lcp, _SuffixLetterAccessor(structure.text, structure.sa)
    )
    return WeightedSuffixTree(source, z, structure, trie, stats)


def _unpack_sharded(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.sharded import Shard, ShardedIndex

    shards = []
    indexes = []
    for number, shard_meta in enumerate(meta["shards"]):
        start, core_end, end = (int(value) for value in shard_meta["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        shard_source = WeightedString(source.matrix[start:end], source.alphabet)
        indexes.append(
            _unpack_body(container, shard_meta, f"{prefix}s{number}.", shard_source, z)
        )
    return ShardedIndex(
        source,
        z,
        shards,
        indexes,
        meta["kind"],
        int(meta["max_pattern_len"]),
        _stats_from_meta(meta["stats"]),
    )


# --------------------------------------------------------------------------- #
# public API                                                                   #
# --------------------------------------------------------------------------- #
def save_index(path, index) -> None:
    """Write a built index (monolithic or sharded) to a store file."""
    arrays: dict[str, np.ndarray] = {}
    body = _pack_body(index, arrays, "")
    arrays["source"] = index.source.matrix
    meta = {
        "z": index.z,
        "alphabet": list(index.source.alphabet.letters),
        "body": body,
    }
    _write_container(path, meta, arrays)


def load_index(path, *, mmap: bool = True):
    """Reload a stored index; queries work immediately, nothing is rebuilt.

    With ``mmap=True`` (the default) the stored arrays — including the
    probability matrix — are memory-mapped read-only and paged in on first
    use; ``mmap=False`` reads them into RAM instead.
    """
    container = _Container(path, mmap)
    meta = container.meta
    alphabet = Alphabet(meta["alphabet"])
    source = WeightedString(container.array("source"), alphabet)
    return _unpack_body(container, meta["body"], "", source, float(meta["z"]))
