"""The binary index store: save built indexes, memory-map them back.

Index construction is the expensive part of every workflow (z-estimation,
suffix sorting, minimizer sampling); the store persists the *constructed*
artefacts so a saved index answers queries after a cheap reload instead of a
rebuild.  One file holds one index — monolithic or sharded — in a simple
container:

======  ====================================================================
bytes   content
======  ====================================================================
0–7     magic ``b"RPROIDX\\n"``
8–15    little-endian ``uint64``: byte length of the JSON header
16–     JSON header: ``format`` / ``version`` fields, the index metadata and
        an array manifest ``{name: {dtype, shape, offset}}``
...     64-byte-aligned raw array blobs (C order, native dtypes)
======  ====================================================================

Arrays are loaded with :func:`numpy.memmap` by default, so the probability
matrix and the leaf/suffix arrays stay on disk until touched; pass
``mmap=False`` to read everything into RAM.  Nothing expensive is re-run on
load: the CSR compacted-trie arrays and the range-tree grid levels are
persisted alongside the leaf/suffix arrays and rehydrated directly, so only
the tiny range-maximum table of the baselines is derived from loaded data.
Stores written before the trie/grid arrays existed still load — the extra
arrays are presence-gated on the manifest, and missing ones fall back to the
old re-derivation path.  Unknown magic numbers, formats or versions raise
:class:`~repro.errors.SerializationError` with the supported versions listed.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import SerializationError
from ..sampling.minimizers import MinimizerScheme
from ..version import __version__

__all__ = [
    "save_index",
    "load_index",
    "stored_arrays",
    "save_sharded_store",
    "load_sharded_store",
    "refresh_sharded_store",
    "reload_sharded_store",
    "append_update_log",
    "read_update_log",
    "compact_store",
    "STORE_FORMAT",
    "STORE_VERSION",
    "SHARDED_STORE_FORMAT",
    "SHARDED_STORE_VERSION",
    "UPDATE_LOG_NAME",
]

_MAGIC = b"RPROIDX\n"
_ALIGNMENT = 64

STORE_FORMAT = "repro.index_store"
STORE_VERSION = 1
_SUPPORTED_VERSIONS = (1,)

SHARDED_STORE_FORMAT = "repro.sharded_store"
SHARDED_STORE_VERSION = 1
_SHARDED_SUPPORTED_VERSIONS = (1,)
_MANIFEST_NAME = "manifest.json"
UPDATE_LOG_NAME = "update-log.jsonl"


# --------------------------------------------------------------------------- #
# container reading / writing                                                  #
# --------------------------------------------------------------------------- #
def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _write_container(path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    manifest = {}
    offset = 0
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        manifest[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        blobs.append((offset, array))
        offset += array.nbytes
    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "writer": __version__,
        "meta": meta,
        "arrays": manifest,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    data_start = _align(len(_MAGIC) + 8 + len(header_bytes))
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes)))
        handle.write(header_bytes)
        for blob_offset, array in blobs:
            handle.seek(data_start + blob_offset)
            handle.write(array.tobytes())


class _Container:
    """A parsed store file: the header plus lazy array access."""

    def __init__(self, path, mmap: bool) -> None:
        self.path = Path(path)
        self.mmap = mmap
        try:
            with open(self.path, "rb") as handle:
                magic = handle.read(len(_MAGIC))
                if magic != _MAGIC:
                    raise SerializationError(
                        f"{self.path} is not a repro index store (bad magic)"
                    )
                (header_length,) = struct.unpack("<Q", handle.read(8))
                header = json.loads(handle.read(header_length).decode("utf-8"))
        except OSError as exc:
            raise SerializationError(f"cannot read {self.path}: {exc}") from exc
        except (json.JSONDecodeError, struct.error, UnicodeDecodeError) as exc:
            raise SerializationError(
                f"{self.path} has a corrupt index-store header: {exc}"
            ) from exc
        if header.get("format") != STORE_FORMAT:
            raise SerializationError(
                f"{self.path} has format {header.get('format')!r}, "
                f"expected {STORE_FORMAT!r}"
            )
        if header.get("version") not in _SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in _SUPPORTED_VERSIONS)
            raise SerializationError(
                f"{self.path} has unsupported index-store version "
                f"{header.get('version')!r} (supported: {supported})"
            )
        self.meta = header["meta"]
        self._manifest = header["arrays"]
        self._data_start = _align(len(_MAGIC) + 8 + header_length)

    def has(self, name: str) -> bool:
        """Whether the store holds an array called ``name``.

        Optional artefacts (trie / grid arrays) are presence-gated on the
        manifest so stores written before they existed still load.
        """
        return name in self._manifest

    def array(self, name: str) -> np.ndarray:
        try:
            spec = self._manifest[name]
        except KeyError:
            raise SerializationError(
                f"{self.path} is missing the stored array {name!r}"
            ) from None
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        offset = self._data_start + spec["offset"]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count == 0:  # zero-byte blobs cannot be memory-mapped
            return np.empty(shape, dtype=dtype)
        if self.mmap:
            return np.memmap(self.path, dtype=dtype, mode="r", offset=offset, shape=shape)
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            flat = np.fromfile(handle, dtype=dtype, count=count)
        return flat.reshape(shape)


# --------------------------------------------------------------------------- #
# leaf collections                                                             #
# --------------------------------------------------------------------------- #
def _pack_collection(arrays: dict, prefix: str, collection) -> None:
    # The collection already IS parallel arrays: persist them as-is, no
    # per-leaf object round-trip.
    block = collection.arrays
    arrays[f"{prefix}.anchor"] = block.anchors
    arrays[f"{prefix}.length"] = block.lengths
    arrays[f"{prefix}.position"] = block.positions
    arrays[f"{prefix}.source"] = block.sources
    arrays[f"{prefix}.mm_start"] = block.mm_start
    arrays[f"{prefix}.mm_offset"] = block.mm_offset
    arrays[f"{prefix}.mm_code"] = block.mm_code


def _unpack_collection(container: _Container, prefix: str, reference, lcps=None):
    from ..indexes.minimizer_core import LeafArrays, LeafCollection

    block = LeafArrays(
        container.array(f"{prefix}.anchor"),
        container.array(f"{prefix}.length"),
        container.array(f"{prefix}.position"),
        container.array(f"{prefix}.source"),
        container.array(f"{prefix}.mm_start"),
        container.array(f"{prefix}.mm_offset"),
        container.array(f"{prefix}.mm_code"),
    )
    return LeafCollection(block, reference, presorted=True, trie_lcps=lcps)


# --------------------------------------------------------------------------- #
# estimation + checkpoint packing                                              #
# --------------------------------------------------------------------------- #
def _pack_estimation(arrays: dict, prefix: str, estimation) -> None:
    """Persist the z-estimation family plus its builder checkpoints.

    The family itself is two dense ``(⌊z⌋ × n)`` arrays.  Checkpoints are
    variable-size (one flattened group tree each), so they are packed as one
    CSR block over all checkpoints: per-node segment/member *counts* instead
    of per-checkpoint offset arrays, with ``node_start`` delimiting each
    checkpoint's node slice.  The per-checkpoint ``seg_start``/``mem_start``
    offsets are recomputed by cumulative sums on load.
    """
    arrays[f"{prefix}est.strings"] = estimation.strings
    arrays[f"{prefix}est.ends"] = estimation.ends
    checkpoints = estimation.checkpoints
    positions = np.asarray([c.position for c in checkpoints], dtype=np.int64)
    arrays[f"{prefix}est.cp.position"] = positions
    if not len(checkpoints):
        return
    trees = [c.tree for c in checkpoints]
    node_counts = np.asarray([t.node_count for t in trees], dtype=np.int64)
    zero = np.zeros(1, dtype=np.int64)
    arrays[f"{prefix}est.cp.alive"] = np.stack([c.alive_from for c in checkpoints])
    arrays[f"{prefix}est.cp.node_start"] = np.concatenate(
        [zero, np.cumsum(node_counts)]
    )
    arrays[f"{prefix}est.cp.parent"] = np.concatenate([t.parent for t in trees])
    arrays[f"{prefix}est.cp.seg_count"] = np.concatenate(
        [np.diff(t.seg_start) for t in trees]
    )
    arrays[f"{prefix}est.cp.mem_count"] = np.concatenate(
        [np.diff(t.mem_start) for t in trees]
    )
    arrays[f"{prefix}est.cp.seg_lo"] = np.concatenate([t.seg_lo for t in trees])
    arrays[f"{prefix}est.cp.seg_hi"] = np.concatenate([t.seg_hi for t in trees])
    arrays[f"{prefix}est.cp.seg_weight"] = np.concatenate(
        [t.seg_weight for t in trees]
    )
    arrays[f"{prefix}est.cp.mem_level"] = np.concatenate([t.mem_level for t in trees])
    arrays[f"{prefix}est.cp.mem_token"] = np.concatenate([t.mem_token for t in trees])


def _unpack_estimation(container: _Container, prefix: str, source, z: float):
    """Rehydrate the stored z-estimation (with checkpoints) or return None."""
    from ..core.estimation import EstimationCheckpoint, ZEstimation
    from ..core.properties import GroupTreeArrays

    if not container.has(f"{prefix}est.strings"):
        return None
    strings = container.array(f"{prefix}est.strings")
    ends = container.array(f"{prefix}est.ends")
    checkpoints = []
    if container.has(f"{prefix}est.cp.position"):
        positions = container.array(f"{prefix}est.cp.position")
        if len(positions):
            alive = container.array(f"{prefix}est.cp.alive")
            node_start = np.asarray(
                container.array(f"{prefix}est.cp.node_start"), dtype=np.int64
            )
            parent = container.array(f"{prefix}est.cp.parent")
            seg_count = np.asarray(
                container.array(f"{prefix}est.cp.seg_count"), dtype=np.int64
            )
            mem_count = np.asarray(
                container.array(f"{prefix}est.cp.mem_count"), dtype=np.int64
            )
            seg_data = tuple(
                container.array(f"{prefix}est.cp.{name}")
                for name in ("seg_lo", "seg_hi", "seg_weight")
            )
            mem_data = tuple(
                container.array(f"{prefix}est.cp.{name}")
                for name in ("mem_level", "mem_token")
            )
            zero = np.zeros(1, dtype=np.int64)
            seg_block = np.concatenate([zero, np.cumsum(seg_count)])
            mem_block = np.concatenate([zero, np.cumsum(mem_count)])
            for index, position in enumerate(positions.tolist()):
                lo, hi = int(node_start[index]), int(node_start[index + 1])
                tree = GroupTreeArrays(
                    parent=np.asarray(parent[lo:hi], dtype=np.int64),
                    seg_start=np.concatenate([zero, np.cumsum(seg_count[lo:hi])]),
                    seg_lo=np.asarray(
                        seg_data[0][seg_block[lo] : seg_block[hi]], dtype=np.int64
                    ),
                    seg_hi=np.asarray(
                        seg_data[1][seg_block[lo] : seg_block[hi]], dtype=np.int64
                    ),
                    seg_weight=np.asarray(
                        seg_data[2][seg_block[lo] : seg_block[hi]], dtype=np.float64
                    ),
                    mem_start=np.concatenate([zero, np.cumsum(mem_count[lo:hi])]),
                    mem_level=np.asarray(
                        mem_data[0][mem_block[lo] : mem_block[hi]], dtype=np.int64
                    ),
                    mem_token=np.asarray(
                        mem_data[1][mem_block[lo] : mem_block[hi]], dtype=np.int64
                    ),
                )
                checkpoints.append(
                    EstimationCheckpoint(
                        position=int(position),
                        alive_from=np.asarray(alive[index], dtype=np.int64),
                        tree=tree,
                    )
                )
    return ZEstimation(strings, ends, z, source.alphabet, checkpoints)


# --------------------------------------------------------------------------- #
# per-family packing                                                           #
# --------------------------------------------------------------------------- #
def _stats_meta(stats) -> dict:
    return {
        "name": stats.name,
        "index_size_bytes": stats.index_size_bytes,
        "construction_space_bytes": stats.construction_space_bytes,
        "construction_seconds": stats.construction_seconds,
        "counters": stats.counters,
    }


def _stats_from_meta(meta: dict):
    from ..indexes.space import IndexStats

    counters = dict(meta.get("counters", {}))
    counters["loaded_from_store"] = True
    return IndexStats(
        name=meta.get("name", ""),
        index_size_bytes=int(meta.get("index_size_bytes", 0)),
        construction_space_bytes=int(meta.get("construction_space_bytes", 0)),
        construction_seconds=float(meta.get("construction_seconds", 0.0)),
        counters=counters,
    )


def _pack_body(index, arrays: dict, prefix: str) -> dict:
    """Pack one index's artefacts (everything but its source matrix)."""
    from ..indexes.mwst import MinimizerIndexBase
    from ..indexes.sharded import ShardedIndex
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree

    if isinstance(index, ShardedIndex):
        shard_metas = []
        generations = index.generations
        for number, (shard, shard_index) in enumerate(
            zip(index.shards, index.shard_indexes)
        ):
            body = _pack_body(shard_index, arrays, f"{prefix}s{number}.")
            body["plan"] = [shard.start, shard.core_end, shard.end]
            body["generation"] = generations[number]
            shard_metas.append(body)
        return {
            "family": "sharded",
            "kind": index.kind,
            "max_pattern_len": index.maximum_pattern_length,
            "shards": shard_metas,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, MinimizerIndexBase):
        data = index.data
        _pack_collection(arrays, f"{prefix}fwd", data.forward)
        _pack_collection(arrays, f"{prefix}bwd", data.backward)
        if index.use_trie:
            arrays[f"{prefix}fwd.lcp"] = data.forward.adjacent_lcps()
            arrays[f"{prefix}bwd.lcp"] = data.backward.adjacent_lcps()
            for side, collection in (("fwd", data.forward), ("bwd", data.backward)):
                trie = collection.build_trie()
                if trie.implementation == "csr":
                    for name, array in trie.to_arrays().items():
                        arrays[f"{prefix}{side}.trie.{name}"] = array
        if data.pairs is not None:
            arrays[f"{prefix}pairs"] = np.array(data.pairs, dtype=np.int64).reshape(
                len(data.pairs), 2
            )
        if data.construction == "estimation" and data.estimation is not None:
            _pack_estimation(arrays, prefix, data.estimation)
        grid_meta = None
        if index.use_grid and index.grid is not None:
            grid = index.grid
            grid_meta = {
                "backend": grid.backend_name,
                "brute_force_limit": grid.brute_force_limit,
            }
            if grid.backend_name == "range_tree":
                for name, array in grid._backend.to_arrays().items():
                    arrays[f"{prefix}grid.{name}"] = array
        scheme = data.scheme
        return {
            "grid": grid_meta,
            "family": "minimizer",
            "kind": index.name,
            "ell": data.ell,
            "construction": data.construction,
            "counters": data.counters,
            "scheme": {
                "ell": scheme.ell,
                "sigma": scheme.sigma,
                "k": scheme.k,
                "order": scheme.order,
            },
            "has_pairs": data.pairs is not None,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, (WeightedSuffixArray, WeightedSuffixTree)):
        structure = index.structure
        arrays[f"{prefix}ps.text"] = structure.text
        arrays[f"{prefix}ps.sa"] = structure.sa
        if structure.lcp is not None:
            arrays[f"{prefix}ps.lcp"] = structure.lcp
        if isinstance(index, WeightedSuffixTree) and index._trie.implementation == "csr":
            for name, array in index._trie.to_arrays().items():
                arrays[f"{prefix}ps.trie.{name}"] = array
        arrays[f"{prefix}ps.rank_positions"] = structure.rank_positions
        arrays[f"{prefix}ps.rank_valid_lengths"] = structure.rank_valid_lengths
        return {
            "family": "wst" if isinstance(index, WeightedSuffixTree) else "wsa",
            "kind": index.name,
            "estimation_width": structure.estimation_width,
            "estimation_length": structure.estimation_length,
            "stats": _stats_meta(index.stats),
        }
    raise SerializationError(
        f"indexes of type {type(index).__name__} cannot be stored yet"
    )


def _unpack_body(container: _Container, meta: dict, prefix: str, source, z: float):
    family = meta.get("family")
    if family == "sharded":
        return _unpack_sharded(container, meta, prefix, source, z)
    if family == "minimizer":
        return _unpack_minimizer(container, meta, prefix, source, z)
    if family in {"wst", "wsa"}:
        return _unpack_baseline(container, meta, prefix, source, z)
    raise SerializationError(f"unknown stored index family {family!r}")


def _adopt_stored_tries(container: _Container, prefix: str, data) -> None:
    """Install persisted CSR tries on both leaf collections (if stored)."""
    from ..strings.trie import _CSR_ARRAY_NAMES, CompactedTrie

    for side, collection in (("fwd", data.forward), ("bwd", data.backward)):
        if not container.has(f"{prefix}{side}.trie.depth"):
            continue
        trie_arrays = {
            name: container.array(f"{prefix}{side}.trie.{name}")
            for name in _CSR_ARRAY_NAMES
        }
        collection.adopt_trie(
            CompactedTrie.from_arrays(
                trie_arrays,
                collection.lengths,
                collection.letter,
                bulk_letter=collection.letters_at,
            )
        )


def _unpack_minimizer(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.minimizer_core import MinimizerIndexData
    from ..indexes.registry import get_spec

    cls = get_spec(meta["kind"]).cls
    scheme_meta = meta["scheme"]
    scheme = MinimizerScheme(
        scheme_meta["ell"], scheme_meta["sigma"], scheme_meta["k"], scheme_meta["order"]
    )
    heavy = HeavyString(source)
    forward_lcps = backward_lcps = None
    if cls.use_trie:
        forward_lcps = container.array(f"{prefix}fwd.lcp")
        backward_lcps = container.array(f"{prefix}bwd.lcp")
    forward = _unpack_collection(container, f"{prefix}fwd", heavy.codes, forward_lcps)
    backward = _unpack_collection(
        container, f"{prefix}bwd", heavy.codes[::-1].copy(), backward_lcps
    )
    pairs = None
    if meta.get("has_pairs"):
        pairs_array = container.array(f"{prefix}pairs")
        pairs = [(int(x), int(y)) for x, y in pairs_array]
    data = MinimizerIndexData(
        source=source,
        z=z,
        ell=int(meta["ell"]),
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction=meta.get("construction", "estimation"),
        counters=dict(meta.get("counters", {})),
        # Presence-gated: stores written before estimation persistence load
        # with ``estimation=None`` and fall back to full-rebuild updates.
        estimation=_unpack_estimation(container, prefix, source, z),
    )
    if cls.use_trie:
        _adopt_stored_tries(container, prefix, data)
    grid = None
    if cls.use_grid:
        from ..geometry.grid import Grid2D

        if pairs is None:
            raise SerializationError(
                f"stored {meta['kind']} index is missing its grid pairing"
            )
        grid_meta = meta.get("grid") or {}
        limit = grid_meta.get("brute_force_limit")
        if container.has(f"{prefix}grid.points"):
            grid = Grid2D.from_arrays(
                container.array(f"{prefix}grid.points"),
                container.array(f"{prefix}grid.level_ys"),
                container.array(f"{prefix}grid.level_idx"),
                brute_force_limit=limit,
            )
        else:
            grid = Grid2D(pairs, brute_force_limit=limit)
    return cls(source, z, data, _stats_from_meta(meta["stats"]), grid)


def _unpack_baseline(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.property_structures import PropertySuffixStructure
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree, _SuffixLetterAccessor
    from ..strings.trie import _CSR_ARRAY_NAMES, CompactedTrie

    with_lcp = meta["family"] == "wst"
    lcp = container.array(f"{prefix}ps.lcp") if with_lcp else None
    structure = PropertySuffixStructure.from_arrays(
        container.array(f"{prefix}ps.text"),
        container.array(f"{prefix}ps.sa"),
        lcp,
        container.array(f"{prefix}ps.rank_positions"),
        container.array(f"{prefix}ps.rank_valid_lengths"),
        int(meta["estimation_width"]),
        int(meta["estimation_length"]),
    )
    stats = _stats_from_meta(meta["stats"])
    if meta["family"] == "wsa":
        return WeightedSuffixArray(source, z, structure, stats)
    lengths = len(structure.text) - structure.sa
    accessor = _SuffixLetterAccessor(structure.text, structure.sa)
    if container.has(f"{prefix}ps.trie.depth"):
        trie_arrays = {
            name: container.array(f"{prefix}ps.trie.{name}")
            for name in _CSR_ARRAY_NAMES
        }
        trie = CompactedTrie.from_arrays(
            trie_arrays, lengths, accessor, bulk_letter=accessor.bulk
        )
    else:
        trie = CompactedTrie(
            lengths, structure.lcp, accessor, bulk_letter=accessor.bulk
        )
    return WeightedSuffixTree(source, z, structure, trie, stats)


def _unpack_sharded(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.sharded import Shard, ShardedIndex

    shards = []
    indexes = []
    generations = []
    for number, shard_meta in enumerate(meta["shards"]):
        start, core_end, end = (int(value) for value in shard_meta["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generations.append(int(shard_meta.get("generation", 0)))
        shard_source = WeightedString(source.matrix[start:end], source.alphabet)
        indexes.append(
            _unpack_body(container, shard_meta, f"{prefix}s{number}.", shard_source, z)
        )
    return ShardedIndex(
        source,
        z,
        shards,
        indexes,
        meta["kind"],
        int(meta["max_pattern_len"]),
        _stats_from_meta(meta["stats"]),
        generations=generations,
    )


# --------------------------------------------------------------------------- #
# public API                                                                   #
# --------------------------------------------------------------------------- #
def save_index(path, index) -> None:
    """Write a built index (monolithic or sharded) to a store file."""
    arrays: dict[str, np.ndarray] = {}
    body = _pack_body(index, arrays, "")
    arrays["source"] = index.source.matrix
    meta = {
        "z": index.z,
        "alphabet": list(index.source.alphabet.letters),
        "body": body,
    }
    _write_container(path, meta, arrays)


def load_index(path, *, mmap: bool = True):
    """Reload a stored index; queries work immediately, nothing is rebuilt.

    With ``mmap=True`` (the default) the stored arrays — including the
    probability matrix — are memory-mapped read-only and paged in on first
    use; ``mmap=False`` reads them into RAM instead.
    """
    container = _Container(path, mmap)
    meta = container.meta
    alphabet = Alphabet(meta["alphabet"])
    source = WeightedString(container.array("source"), alphabet)
    return _unpack_body(container, meta["body"], "", source, float(meta["z"]))


def stored_arrays(index) -> dict[str, np.ndarray]:
    """The persisted arrays of a live index, as the live objects.

    Returns the same ``{name: array}`` mapping :func:`save_index` would write,
    but referencing the index's *current* array objects — so after a
    ``load_index(..., mmap=True)`` round trip every entry should chain through
    ``.base`` to a :class:`numpy.memmap`.  The ``pairs`` entry is one
    exception (re-materialized from Python tuples on both save and load) and
    the ``est.cp.*`` checkpoint blocks are the other (re-concatenated from
    the per-checkpoint objects on every pack), so neither is ever
    mmap-backed.  Used by tests to pin the multi-worker RSS
    story (forked workers must share the page cache, not copy the arrays).
    """
    arrays: dict[str, np.ndarray] = {}
    _pack_body(index, arrays, "")
    arrays["source"] = index.source.matrix
    return arrays


# --------------------------------------------------------------------------- #
# sharded directory store                                                      #
# --------------------------------------------------------------------------- #
def _shard_file_name(number: int, generation: int = 0) -> str:
    if generation:
        return f"shard-{number:04d}.g{generation}.idx"
    return f"shard-{number:04d}.idx"


def _sharded_manifest(index, files=None) -> dict:
    if files is None:
        files = [_shard_file_name(number) for number in range(len(index.shards))]
    return {
        "format": SHARDED_STORE_FORMAT,
        "version": SHARDED_STORE_VERSION,
        "writer": __version__,
        "z": index.z,
        "kind": index.kind,
        "alphabet": list(index.source.alphabet.letters),
        "max_pattern_len": index.maximum_pattern_length,
        "length": len(index.source),
        "shards": [
            {
                "plan": [shard.start, shard.core_end, shard.end],
                "generation": generation,
                "file": file,
            }
            for (shard, generation, file) in zip(
                index.shards, index.generations, files
            )
        ],
    }


def _read_manifest(directory: Path) -> dict:
    path = directory / _MANIFEST_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"{path} is not a valid manifest: {exc}") from exc
    if manifest.get("format") != SHARDED_STORE_FORMAT:
        raise SerializationError(
            f"{path} has format {manifest.get('format')!r}, "
            f"expected {SHARDED_STORE_FORMAT!r}"
        )
    if manifest.get("version") not in _SHARDED_SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in _SHARDED_SUPPORTED_VERSIONS)
        raise SerializationError(
            f"{path} has unsupported sharded-store version "
            f"{manifest.get('version')!r} (supported: {supported})"
        )
    return manifest


def _write_manifest(directory: Path, manifest: dict) -> None:
    with open(directory / _MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def save_sharded_store(directory, index) -> None:
    """Write a sharded index as a directory: one container file per shard.

    Each shard file is a regular single-index store (reloadable on its own),
    stamped in ``manifest.json`` with the shard plan and the shard's rebuild
    generation.  The per-file layout is what makes dirty-shard persistence
    possible: :func:`refresh_sharded_store` rewrites only shards whose
    generation moved, leaving clean shard files byte-identical on disk.
    """
    from ..indexes.sharded import ShardedIndex

    if not isinstance(index, ShardedIndex):
        raise SerializationError(
            "save_sharded_store persists ShardedIndex objects; use save_index "
            "for monolithic indexes"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for number, shard_index in enumerate(index.shard_indexes):
        save_index(directory / _shard_file_name(number), shard_index)
    _write_manifest(directory, _sharded_manifest(index))


def refresh_sharded_store(directory, index, *, generation_names: bool = False) -> dict:
    """Persist an updated sharded index, rewriting only dirty shard files.

    Compares the stored per-shard generation stamps against
    ``index.generations`` and rewrites exactly the shard files whose
    generation moved (plus the manifest).  Returns
    ``{"rewritten": [...], "skipped": count, "obsolete": [...]}``.  The shard
    plan must match the stored one — a re-sharded index needs a full
    :func:`save_sharded_store`.

    With ``generation_names=True`` a dirty shard is written to a *new*
    generation-stamped file (``shard-0002.g3.idx``) instead of truncating the
    old one in place.  That is what makes live multi-worker serving safe:
    processes still memory-mapping the previous file keep reading consistent
    bytes, and the superseded paths come back in ``"obsolete"`` so the caller
    can unlink them once every reader has re-mapped (POSIX keeps mappings of
    unlinked files valid until the last reference drops).
    """
    from ..indexes.sharded import ShardedIndex

    if not isinstance(index, ShardedIndex):
        raise SerializationError("refresh_sharded_store needs a ShardedIndex")
    directory = Path(directory)
    manifest = _read_manifest(directory)
    stored = manifest["shards"]
    plans = [[shard.start, shard.core_end, shard.end] for shard in index.shards]
    if [entry["plan"] for entry in stored] != plans:
        raise SerializationError(
            f"{directory} stores a different shard plan; save the re-sharded "
            "index with save_sharded_store instead"
        )
    # The refresh only rewrites dirty shard files, so everything the clean
    # files depend on must match the stored parameters — otherwise untouched
    # shards would silently answer under a different configuration.
    expected = _sharded_manifest(index)
    for field in ("z", "kind", "alphabet", "max_pattern_len", "length"):
        if manifest.get(field) != expected[field]:
            raise SerializationError(
                f"{directory} was saved with {field}={manifest.get(field)!r} "
                f"but the index has {field}={expected[field]!r}; save it with "
                "save_sharded_store instead of refreshing"
            )
    rewritten = []
    obsolete = []
    generations = index.generations
    files = [entry["file"] for entry in stored]
    for number, entry in enumerate(stored):
        if int(entry["generation"]) != generations[number]:
            name = entry["file"]
            if generation_names:
                name = _shard_file_name(number, generations[number])
            save_index(directory / name, index.shard_indexes[number])
            rewritten.append(number)
            if name != entry["file"]:
                obsolete.append(str(directory / entry["file"]))
            files[number] = name
    _write_manifest(directory, _sharded_manifest(index, files=files))
    return {
        "rewritten": rewritten,
        "skipped": len(stored) - len(rewritten),
        "obsolete": obsolete,
    }


def append_update_log(directory, entry: dict) -> None:
    """Append one JSON line to a directory store's ``update-log.jsonl``.

    The log records what update batches a long-lived store absorbed (CLI
    ``update`` runs, serving-layer refreshes) — enough to audit why shard
    files accumulated ``.g*`` generations.  :func:`compact_store` truncates
    it once those generations are folded back into canonical files.
    """
    path = Path(directory) / UPDATE_LOG_NAME
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def read_update_log(directory) -> list[dict]:
    """All entries of a directory store's update log (empty when absent)."""
    path = Path(directory) / UPDATE_LOG_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    entries = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{path} has a corrupt update-log line: {exc}"
            ) from exc
    return entries


def compact_store(directory) -> dict:
    """Fold a directory store back to its canonical, generation-free layout.

    Long-lived stores accumulate generation-stamped shard files
    (``shard-0002.g7.idx``) and update-log entries.  Compaction rewrites
    every *moved* shard under its canonical name (``shard-0002.idx``) with
    its generation stamp reset to 0, removes superseded shard files, and
    truncates the update log; shards already canonical at generation 0 are
    left byte-untouched.  Query results are byte-identical before and after
    — only the file layout changes.  Returns
    ``{"shards": count, "removed": [...], "log_entries_cleared": count}``.
    """
    directory = Path(directory)
    # Validate format/version before touching files.
    stored = _read_manifest(directory)["shards"]
    index = load_sharded_store(directory, mmap=False)
    canonical = [_shard_file_name(number) for number in range(len(index.shards))]
    for number, shard_index in enumerate(index.shard_indexes):
        entry = stored[number]
        if entry["file"] == canonical[number] and int(entry["generation"]) == 0:
            continue  # already canonical: keep the file byte-identical
        save_index(directory / canonical[number], shard_index)
    index._generations = [0] * len(index.shards)
    _write_manifest(directory, _sharded_manifest(index, files=canonical))
    keep = set(canonical) | {_MANIFEST_NAME}
    removed = []
    for path in sorted(directory.glob("shard-*.idx")):
        if path.name not in keep:
            path.unlink()
            removed.append(path.name)
    cleared = len(read_update_log(directory))
    log_path = directory / UPDATE_LOG_NAME
    if log_path.exists():
        log_path.unlink()
    return {
        "shards": len(canonical),
        "removed": removed,
        "log_entries_cleared": cleared,
    }


def _assemble_sharded(manifest: dict, shards, indexes, generations):
    """Build the parent :class:`ShardedIndex` from loaded shard indexes."""
    from ..indexes.sharded import ShardedIndex
    from ..indexes.space import IndexStats

    alphabet = Alphabet(manifest["alphabet"])
    cores = [
        index.source.matrix[: shard.core_end - shard.start]
        for shard, index in zip(shards, indexes)
    ]
    matrix = np.vstack(cores) if cores else np.empty((0, alphabet.size))
    source = WeightedString(matrix, alphabet)
    stats = IndexStats(
        name=f"SHARDED[{manifest['kind']}]",
        index_size_bytes=sum(index.stats.index_size_bytes for index in indexes),
        counters={
            "shards": len(shards),
            "kind": manifest["kind"],
            "overlap": int(manifest["max_pattern_len"]) - 1,
            "loaded_from_store": True,
            "generations": list(generations),
        },
    )
    return ShardedIndex(
        source,
        float(manifest["z"]),
        shards,
        indexes,
        manifest["kind"],
        int(manifest["max_pattern_len"]),
        stats,
        generations=generations,
    )


def load_sharded_store(directory, *, mmap: bool = True):
    """Reload a sharded index from a directory store.

    Shard files load exactly like single-index stores (memory-mapped by
    default); the parent probability matrix is reassembled from the shards'
    core slices, so the directory holds no duplicate full-string copy.
    """
    from ..indexes.sharded import Shard

    directory = Path(directory)
    manifest = _read_manifest(directory)
    shards = []
    indexes = []
    generations = []
    for entry in manifest["shards"]:
        start, core_end, end = (int(value) for value in entry["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generations.append(int(entry["generation"]))
        indexes.append(load_index(directory / entry["file"], mmap=mmap))
    return _assemble_sharded(manifest, shards, indexes, generations)


def reload_sharded_store(directory, previous, *, mmap: bool = True):
    """Re-read a directory store, re-mapping only shards whose generation moved.

    ``previous`` is the :class:`ShardedIndex` currently serving (typically the
    result of an earlier :func:`load_sharded_store`).  Shards whose plan *and*
    generation stamp match the manifest keep their already-loaded shard index
    object (and its live memory maps); only moved shards are re-opened from
    their (generation-stamped) files.  Returns ``(index, reloaded_numbers)``.

    The parent probability matrix is reassembled from the shard cores, so the
    swap is a plain object replacement — readers holding the previous index
    keep a fully consistent view until they drop it.
    """
    from ..indexes.sharded import Shard

    directory = Path(directory)
    manifest = _read_manifest(directory)
    previous_plans = [
        [shard.start, shard.core_end, shard.end] for shard in previous.shards
    ]
    previous_generations = previous.generations
    shards = []
    indexes = []
    generations = []
    reloaded = []
    for number, entry in enumerate(manifest["shards"]):
        start, core_end, end = (int(value) for value in entry["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generation = int(entry["generation"])
        generations.append(generation)
        if (
            number < len(previous_plans)
            and previous_plans[number] == [start, core_end, end]
            and previous_generations[number] == generation
        ):
            indexes.append(previous.shard_indexes[number])
        else:
            indexes.append(load_index(directory / entry["file"], mmap=mmap))
            reloaded.append(number)
    return _assemble_sharded(manifest, shards, indexes, generations), reloaded
