"""The binary index store: save built indexes, memory-map them back.

Index construction is the expensive part of every workflow (z-estimation,
suffix sorting, minimizer sampling); the store persists the *constructed*
artefacts so a saved index answers queries after a cheap reload instead of a
rebuild.  One file holds one index — monolithic or sharded — in a simple
container:

======  ====================================================================
bytes   content
======  ====================================================================
0–7     magic ``b"RPROIDX2"``
8–15    little-endian ``uint64``: byte length of the JSON header
16–19   little-endian ``uint32``: CRC32 of the JSON header bytes
20–     JSON header: ``format`` / ``version`` fields, the index metadata and
        an array manifest ``{name: {dtype, shape, offset, crc32}}``
...     64-byte-aligned raw array blobs (C order, native dtypes)
======  ====================================================================

Version-1 containers (magic ``b"RPROIDX\\n"``, no checksums) are still
readable; everything written here is version 2.

Durability: every container and manifest write goes through a temp file in
the same directory, ``flush → fsync → os.replace`` and a directory fsync,
so a crash leaves either the old or the new file — never a torn one.
Directory stores additionally carry a write-ahead log (``wal.log``) of
length-and-checksum-framed update records appended (and fsync'd) *before*
shard rewrites; :func:`recover_sharded_store` rolls committed-but-unapplied
updates forward, discards torn tail records, and quarantines corrupt shard
files.  :func:`verify_store` audits a store without modifying it.

Arrays are loaded with :func:`numpy.memmap` by default, so the probability
matrix and the leaf/suffix arrays stay on disk until touched; pass
``mmap=False`` to read everything into RAM.  Checksums are verified on
RAM loads by default and skipped on mmap loads (pass ``verify=...`` to
override either way).  Nothing expensive is re-run on load: the CSR
compacted-trie arrays and the range-tree grid levels are persisted
alongside the leaf/suffix arrays and rehydrated directly, so only the tiny
range-maximum table of the baselines is derived from loaded data.  Stores
written before the trie/grid arrays existed still load — the extra arrays
are presence-gated on the manifest, and missing ones fall back to the old
re-derivation path.  Unknown magic numbers, formats or versions raise
:class:`~repro.errors.StoreFormatError`; damaged files raise
:class:`~repro.errors.StoreCorruptionError` naming the file, section and
(for checksum mismatches) offset plus expected/actual digests.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.heavy import HeavyString
from ..core.weighted_string import WeightedString
from ..errors import (
    StoreCorruptionError,
    StoreError,
    StoreFormatError,
)
from ..faultinject import failpoint
from ..sampling.minimizers import MinimizerScheme
from ..version import __version__

__all__ = [
    "save_index",
    "load_index",
    "stored_arrays",
    "save_sharded_store",
    "load_sharded_store",
    "refresh_sharded_store",
    "reload_sharded_store",
    "append_update_log",
    "read_update_log",
    "compact_store",
    "append_wal",
    "read_wal",
    "apply_updates_durably",
    "recover_sharded_store",
    "verify_store",
    "STORE_FORMAT",
    "STORE_VERSION",
    "SHARDED_STORE_FORMAT",
    "SHARDED_STORE_VERSION",
    "UPDATE_LOG_NAME",
    "WAL_NAME",
]

_MAGIC = b"RPROIDX2"
_MAGIC_V1 = b"RPROIDX\n"
_ALIGNMENT = 64

STORE_FORMAT = "repro.index_store"
STORE_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

SHARDED_STORE_FORMAT = "repro.sharded_store"
SHARDED_STORE_VERSION = 1
_SHARDED_SUPPORTED_VERSIONS = (1,)
_MANIFEST_NAME = "manifest.json"
UPDATE_LOG_NAME = "update-log.jsonl"
WAL_NAME = "wal.log"

#: WAL record frame: payload byte length + CRC32 of the payload.
_WAL_FRAME = struct.Struct("<II")
_VERIFY_CHUNK = 1 << 22  # stream checksums in 4 MiB slices


# --------------------------------------------------------------------------- #
# container reading / writing                                                  #
# --------------------------------------------------------------------------- #
def _align(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _crc32(buffer) -> int:
    return zlib.crc32(buffer) & 0xFFFFFFFF


def _fsync_directory(directory: Path) -> None:
    """Make a completed rename durable (best-effort on exotic filesystems)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path, writer, prefix: str) -> None:
    """Write a file crash-atomically: tmp → flush → fsync → replace → dir fsync.

    ``writer(handle)`` produces the content into the temp file.  A crash at
    any point leaves either the old file or the new one, never a torn mix;
    the temp file (``.{name}.tmp.{pid}``, same directory) is removed on
    error and swept by :func:`recover_sharded_store` after a crash.
    ``prefix`` names the failpoint family armed at each durability boundary.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            writer(handle)
            handle.flush()
            failpoint(f"{prefix}.tmp_written")
            os.fsync(handle.fileno())
        failpoint(f"{prefix}.fsynced")
        os.replace(tmp, path)
        failpoint(f"{prefix}.replaced")
        _fsync_directory(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _write_container(path, meta: dict, arrays: dict[str, np.ndarray]) -> None:
    manifest = {}
    offset = 0
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        manifest[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
            "crc32": _crc32(array.data) if array.nbytes else 0,
        }
        blobs.append((offset, array))
        offset += array.nbytes
    header = {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "writer": __version__,
        "meta": meta,
        "arrays": manifest,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    data_start = _align(len(_MAGIC) + 8 + 4 + len(header_bytes))

    def write_body(handle) -> None:
        handle.write(_MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes)))
        handle.write(struct.pack("<I", _crc32(header_bytes)))
        handle.write(header_bytes)
        for blob_offset, array in blobs:
            handle.seek(data_start + blob_offset)
            handle.write(array.tobytes())

    _atomic_write(path, write_body, "store.container")


class _Container:
    """A parsed store file: the header plus lazy array access.

    Parsing always validates structure (magic, header checksum on v2,
    format/version, array bounds against the file size); ``verify=True``
    additionally streams every array blob through CRC32 and raises
    :class:`~repro.errors.StoreCorruptionError` on the first mismatch.
    """

    def __init__(self, path, mmap: bool, *, verify: bool = False) -> None:
        self.path = Path(path)
        self.mmap = mmap
        try:
            with open(self.path, "rb") as handle:
                file_size = os.fstat(handle.fileno()).st_size
                magic = handle.read(len(_MAGIC))
                if magic not in (_MAGIC, _MAGIC_V1):
                    raise StoreFormatError(
                        f"{self.path} is not a repro index store (bad magic)"
                    )
                (header_length,) = struct.unpack("<Q", handle.read(8))
                expected_crc = None
                if magic == _MAGIC:
                    (expected_crc,) = struct.unpack("<I", handle.read(4))
                if header_length > max(file_size, 0):
                    raise StoreCorruptionError(
                        self.path,
                        "index-store header",
                        "is corrupt: header length exceeds the file size",
                        offset=len(magic),
                    )
                header_bytes = handle.read(header_length)
                if len(header_bytes) < header_length:
                    raise StoreCorruptionError(
                        self.path,
                        "index-store header",
                        "is corrupt: file truncated inside the header",
                        offset=len(magic) + 8 + len(header_bytes),
                    )
                if expected_crc is not None:
                    actual_crc = _crc32(header_bytes)
                    if actual_crc != expected_crc:
                        raise StoreCorruptionError(
                            self.path,
                            "index-store header",
                            "is corrupt: header checksum mismatch",
                            offset=len(magic) + 8 + 4,
                            expected=f"{expected_crc:08x}",
                            actual=f"{actual_crc:08x}",
                        )
                header = json.loads(header_bytes.decode("utf-8"))
        except OSError as exc:
            raise StoreError(f"cannot read {self.path}: {exc}") from exc
        except (json.JSONDecodeError, struct.error, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                self.path,
                "index-store header",
                f"is corrupt: {exc}",
            ) from exc
        if header.get("format") != STORE_FORMAT:
            raise StoreFormatError(
                f"{self.path} has format {header.get('format')!r}, "
                f"expected {STORE_FORMAT!r}"
            )
        if header.get("version") not in _SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in _SUPPORTED_VERSIONS)
            raise StoreFormatError(
                f"{self.path} has unsupported index-store version "
                f"{header.get('version')!r} (supported: {supported})"
            )
        self.meta = header["meta"]
        self._manifest = header["arrays"]
        if magic == _MAGIC:
            self._data_start = _align(len(_MAGIC) + 8 + 4 + header_length)
        else:
            self._data_start = _align(len(_MAGIC_V1) + 8 + header_length)
        self._check_bounds(file_size)
        if verify:
            problems = self.verify_arrays()
            if problems:
                raise problems[0]

    def _spec_nbytes(self, spec: dict) -> int:
        shape = tuple(spec["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return count * np.dtype(spec["dtype"]).itemsize

    def _check_bounds(self, file_size: int) -> None:
        """Cheap always-on truncation guard: every blob must fit the file."""
        for name, spec in self._manifest.items():
            nbytes = self._spec_nbytes(spec)
            if nbytes == 0:
                continue
            end = self._data_start + int(spec["offset"]) + nbytes
            if end > file_size:
                raise StoreCorruptionError(
                    self.path,
                    f"array {name!r}",
                    "is truncated: blob extends past the end of the file",
                    offset=self._data_start + int(spec["offset"]),
                    expected=f"{end} bytes",
                    actual=f"{file_size} bytes",
                )

    def verify_arrays(self) -> list[StoreCorruptionError]:
        """Stream every checksummed blob through CRC32; collect mismatches.

        Version-1 containers carry no checksums, so they verify vacuously.
        Returns the problems instead of raising so ``verify-store`` can
        report all of them at once; load paths raise the first one.
        """
        problems: list[StoreCorruptionError] = []
        with open(self.path, "rb") as handle:
            for name, spec in self._manifest.items():
                expected = spec.get("crc32")
                if expected is None:
                    continue
                nbytes = self._spec_nbytes(spec)
                offset = self._data_start + int(spec["offset"])
                handle.seek(offset)
                crc = 0
                remaining = nbytes
                while remaining > 0:
                    chunk = handle.read(min(remaining, _VERIFY_CHUNK))
                    if not chunk:
                        break
                    crc = zlib.crc32(chunk, crc)
                    remaining -= len(chunk)
                if remaining > 0 or (crc & 0xFFFFFFFF) != int(expected):
                    problems.append(
                        StoreCorruptionError(
                            self.path,
                            f"array {name!r}",
                            "is corrupt: checksum mismatch",
                            offset=offset,
                            expected=f"{int(expected):08x}",
                            actual=f"{crc & 0xFFFFFFFF:08x}",
                        )
                    )
        return problems

    def has(self, name: str) -> bool:
        """Whether the store holds an array called ``name``.

        Optional artefacts (trie / grid arrays) are presence-gated on the
        manifest so stores written before they existed still load.
        """
        return name in self._manifest

    def array(self, name: str) -> np.ndarray:
        try:
            spec = self._manifest[name]
        except KeyError:
            raise StoreFormatError(
                f"{self.path} is missing the stored array {name!r}"
            ) from None
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        offset = self._data_start + spec["offset"]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if count == 0:  # zero-byte blobs cannot be memory-mapped
            return np.empty(shape, dtype=dtype)
        if self.mmap:
            return np.memmap(self.path, dtype=dtype, mode="r", offset=offset, shape=shape)
        with open(self.path, "rb") as handle:
            handle.seek(offset)
            flat = np.fromfile(handle, dtype=dtype, count=count)
        return flat.reshape(shape)


# --------------------------------------------------------------------------- #
# leaf collections                                                             #
# --------------------------------------------------------------------------- #
def _pack_collection(arrays: dict, prefix: str, collection) -> None:
    # The collection already IS parallel arrays: persist them as-is, no
    # per-leaf object round-trip.
    block = collection.arrays
    arrays[f"{prefix}.anchor"] = block.anchors
    arrays[f"{prefix}.length"] = block.lengths
    arrays[f"{prefix}.position"] = block.positions
    arrays[f"{prefix}.source"] = block.sources
    arrays[f"{prefix}.mm_start"] = block.mm_start
    arrays[f"{prefix}.mm_offset"] = block.mm_offset
    arrays[f"{prefix}.mm_code"] = block.mm_code


def _unpack_collection(container: _Container, prefix: str, reference, lcps=None):
    from ..indexes.minimizer_core import LeafArrays, LeafCollection

    block = LeafArrays(
        container.array(f"{prefix}.anchor"),
        container.array(f"{prefix}.length"),
        container.array(f"{prefix}.position"),
        container.array(f"{prefix}.source"),
        container.array(f"{prefix}.mm_start"),
        container.array(f"{prefix}.mm_offset"),
        container.array(f"{prefix}.mm_code"),
    )
    return LeafCollection(block, reference, presorted=True, trie_lcps=lcps)


# --------------------------------------------------------------------------- #
# estimation + checkpoint packing                                              #
# --------------------------------------------------------------------------- #
def _pack_estimation(arrays: dict, prefix: str, estimation) -> None:
    """Persist the z-estimation family plus its builder checkpoints.

    The family itself is two dense ``(⌊z⌋ × n)`` arrays.  Checkpoints are
    variable-size (one flattened group tree each), so they are packed as one
    CSR block over all checkpoints: per-node segment/member *counts* instead
    of per-checkpoint offset arrays, with ``node_start`` delimiting each
    checkpoint's node slice.  The per-checkpoint ``seg_start``/``mem_start``
    offsets are recomputed by cumulative sums on load.
    """
    arrays[f"{prefix}est.strings"] = estimation.strings
    arrays[f"{prefix}est.ends"] = estimation.ends
    checkpoints = estimation.checkpoints
    positions = np.asarray([c.position for c in checkpoints], dtype=np.int64)
    arrays[f"{prefix}est.cp.position"] = positions
    if not len(checkpoints):
        return
    trees = [c.tree for c in checkpoints]
    node_counts = np.asarray([t.node_count for t in trees], dtype=np.int64)
    zero = np.zeros(1, dtype=np.int64)
    arrays[f"{prefix}est.cp.alive"] = np.stack([c.alive_from for c in checkpoints])
    arrays[f"{prefix}est.cp.node_start"] = np.concatenate(
        [zero, np.cumsum(node_counts)]
    )
    arrays[f"{prefix}est.cp.parent"] = np.concatenate([t.parent for t in trees])
    arrays[f"{prefix}est.cp.seg_count"] = np.concatenate(
        [np.diff(t.seg_start) for t in trees]
    )
    arrays[f"{prefix}est.cp.mem_count"] = np.concatenate(
        [np.diff(t.mem_start) for t in trees]
    )
    arrays[f"{prefix}est.cp.seg_lo"] = np.concatenate([t.seg_lo for t in trees])
    arrays[f"{prefix}est.cp.seg_hi"] = np.concatenate([t.seg_hi for t in trees])
    arrays[f"{prefix}est.cp.seg_weight"] = np.concatenate(
        [t.seg_weight for t in trees]
    )
    arrays[f"{prefix}est.cp.mem_level"] = np.concatenate([t.mem_level for t in trees])
    arrays[f"{prefix}est.cp.mem_token"] = np.concatenate([t.mem_token for t in trees])


def _unpack_estimation(container: _Container, prefix: str, source, z: float):
    """Rehydrate the stored z-estimation (with checkpoints) or return None."""
    from ..core.estimation import EstimationCheckpoint, ZEstimation
    from ..core.properties import GroupTreeArrays

    if not container.has(f"{prefix}est.strings"):
        return None
    strings = container.array(f"{prefix}est.strings")
    ends = container.array(f"{prefix}est.ends")
    checkpoints = []
    if container.has(f"{prefix}est.cp.position"):
        positions = container.array(f"{prefix}est.cp.position")
        if len(positions):
            alive = container.array(f"{prefix}est.cp.alive")
            node_start = np.asarray(
                container.array(f"{prefix}est.cp.node_start"), dtype=np.int64
            )
            parent = container.array(f"{prefix}est.cp.parent")
            seg_count = np.asarray(
                container.array(f"{prefix}est.cp.seg_count"), dtype=np.int64
            )
            mem_count = np.asarray(
                container.array(f"{prefix}est.cp.mem_count"), dtype=np.int64
            )
            seg_data = tuple(
                container.array(f"{prefix}est.cp.{name}")
                for name in ("seg_lo", "seg_hi", "seg_weight")
            )
            mem_data = tuple(
                container.array(f"{prefix}est.cp.{name}")
                for name in ("mem_level", "mem_token")
            )
            zero = np.zeros(1, dtype=np.int64)
            seg_block = np.concatenate([zero, np.cumsum(seg_count)])
            mem_block = np.concatenate([zero, np.cumsum(mem_count)])
            for index, position in enumerate(positions.tolist()):
                lo, hi = int(node_start[index]), int(node_start[index + 1])
                tree = GroupTreeArrays(
                    parent=np.asarray(parent[lo:hi], dtype=np.int64),
                    seg_start=np.concatenate([zero, np.cumsum(seg_count[lo:hi])]),
                    seg_lo=np.asarray(
                        seg_data[0][seg_block[lo] : seg_block[hi]], dtype=np.int64
                    ),
                    seg_hi=np.asarray(
                        seg_data[1][seg_block[lo] : seg_block[hi]], dtype=np.int64
                    ),
                    seg_weight=np.asarray(
                        seg_data[2][seg_block[lo] : seg_block[hi]], dtype=np.float64
                    ),
                    mem_start=np.concatenate([zero, np.cumsum(mem_count[lo:hi])]),
                    mem_level=np.asarray(
                        mem_data[0][mem_block[lo] : mem_block[hi]], dtype=np.int64
                    ),
                    mem_token=np.asarray(
                        mem_data[1][mem_block[lo] : mem_block[hi]], dtype=np.int64
                    ),
                )
                checkpoints.append(
                    EstimationCheckpoint(
                        position=int(position),
                        alive_from=np.asarray(alive[index], dtype=np.int64),
                        tree=tree,
                    )
                )
    return ZEstimation(strings, ends, z, source.alphabet, checkpoints)


# --------------------------------------------------------------------------- #
# per-family packing                                                           #
# --------------------------------------------------------------------------- #
def _stats_meta(stats) -> dict:
    return {
        "name": stats.name,
        "index_size_bytes": stats.index_size_bytes,
        "construction_space_bytes": stats.construction_space_bytes,
        "construction_seconds": stats.construction_seconds,
        "counters": stats.counters,
    }


def _stats_from_meta(meta: dict):
    from ..indexes.space import IndexStats

    counters = dict(meta.get("counters", {}))
    counters["loaded_from_store"] = True
    return IndexStats(
        name=meta.get("name", ""),
        index_size_bytes=int(meta.get("index_size_bytes", 0)),
        construction_space_bytes=int(meta.get("construction_space_bytes", 0)),
        construction_seconds=float(meta.get("construction_seconds", 0.0)),
        counters=counters,
    )


def _pack_body(index, arrays: dict, prefix: str) -> dict:
    """Pack one index's artefacts (everything but its source matrix)."""
    from ..indexes.mwst import MinimizerIndexBase
    from ..indexes.sharded import ShardedIndex
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree

    if isinstance(index, ShardedIndex):
        shard_metas = []
        generations = index.generations
        for number, (shard, shard_index) in enumerate(
            zip(index.shards, index.shard_indexes)
        ):
            body = _pack_body(shard_index, arrays, f"{prefix}s{number}.")
            body["plan"] = [shard.start, shard.core_end, shard.end]
            body["generation"] = generations[number]
            shard_metas.append(body)
        return {
            "family": "sharded",
            "kind": index.kind,
            "max_pattern_len": index.maximum_pattern_length,
            "shards": shard_metas,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, MinimizerIndexBase):
        data = index.data
        _pack_collection(arrays, f"{prefix}fwd", data.forward)
        _pack_collection(arrays, f"{prefix}bwd", data.backward)
        if index.use_trie:
            arrays[f"{prefix}fwd.lcp"] = data.forward.adjacent_lcps()
            arrays[f"{prefix}bwd.lcp"] = data.backward.adjacent_lcps()
            for side, collection in (("fwd", data.forward), ("bwd", data.backward)):
                trie = collection.build_trie()
                if trie.implementation == "csr":
                    for name, array in trie.to_arrays().items():
                        arrays[f"{prefix}{side}.trie.{name}"] = array
        if data.pairs is not None:
            arrays[f"{prefix}pairs"] = np.array(data.pairs, dtype=np.int64).reshape(
                len(data.pairs), 2
            )
        if data.construction == "estimation" and data.estimation is not None:
            _pack_estimation(arrays, prefix, data.estimation)
        grid_meta = None
        if index.use_grid and index.grid is not None:
            grid = index.grid
            grid_meta = {
                "backend": grid.backend_name,
                "brute_force_limit": grid.brute_force_limit,
            }
            if grid.backend_name == "range_tree":
                for name, array in grid._backend.to_arrays().items():
                    arrays[f"{prefix}grid.{name}"] = array
        scheme = data.scheme
        return {
            "grid": grid_meta,
            "family": "minimizer",
            "kind": index.name,
            "ell": data.ell,
            "construction": data.construction,
            "counters": data.counters,
            "scheme": {
                "ell": scheme.ell,
                "sigma": scheme.sigma,
                "k": scheme.k,
                "order": scheme.order,
            },
            "has_pairs": data.pairs is not None,
            "stats": _stats_meta(index.stats),
        }
    if isinstance(index, (WeightedSuffixArray, WeightedSuffixTree)):
        structure = index.structure
        arrays[f"{prefix}ps.text"] = structure.text
        arrays[f"{prefix}ps.sa"] = structure.sa
        if structure.lcp is not None:
            arrays[f"{prefix}ps.lcp"] = structure.lcp
        if isinstance(index, WeightedSuffixTree) and index._trie.implementation == "csr":
            for name, array in index._trie.to_arrays().items():
                arrays[f"{prefix}ps.trie.{name}"] = array
        arrays[f"{prefix}ps.rank_positions"] = structure.rank_positions
        arrays[f"{prefix}ps.rank_valid_lengths"] = structure.rank_valid_lengths
        return {
            "family": "wst" if isinstance(index, WeightedSuffixTree) else "wsa",
            "kind": index.name,
            "estimation_width": structure.estimation_width,
            "estimation_length": structure.estimation_length,
            "stats": _stats_meta(index.stats),
        }
    raise StoreError(
        f"indexes of type {type(index).__name__} cannot be stored yet"
    )


def _unpack_body(container: _Container, meta: dict, prefix: str, source, z: float):
    family = meta.get("family")
    if family == "sharded":
        return _unpack_sharded(container, meta, prefix, source, z)
    if family == "minimizer":
        return _unpack_minimizer(container, meta, prefix, source, z)
    if family in {"wst", "wsa"}:
        return _unpack_baseline(container, meta, prefix, source, z)
    raise StoreFormatError(f"unknown stored index family {family!r}")


def _adopt_stored_tries(container: _Container, prefix: str, data) -> None:
    """Install persisted CSR tries on both leaf collections (if stored)."""
    from ..strings.trie import _CSR_ARRAY_NAMES, CompactedTrie

    for side, collection in (("fwd", data.forward), ("bwd", data.backward)):
        if not container.has(f"{prefix}{side}.trie.depth"):
            continue
        trie_arrays = {
            name: container.array(f"{prefix}{side}.trie.{name}")
            for name in _CSR_ARRAY_NAMES
        }
        collection.adopt_trie(
            CompactedTrie.from_arrays(
                trie_arrays,
                collection.lengths,
                collection.letter,
                bulk_letter=collection.letters_at,
            )
        )


def _unpack_minimizer(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.minimizer_core import MinimizerIndexData
    from ..indexes.registry import get_spec

    cls = get_spec(meta["kind"]).cls
    scheme_meta = meta["scheme"]
    scheme = MinimizerScheme(
        scheme_meta["ell"], scheme_meta["sigma"], scheme_meta["k"], scheme_meta["order"]
    )
    heavy = HeavyString(source)
    forward_lcps = backward_lcps = None
    if cls.use_trie:
        forward_lcps = container.array(f"{prefix}fwd.lcp")
        backward_lcps = container.array(f"{prefix}bwd.lcp")
    forward = _unpack_collection(container, f"{prefix}fwd", heavy.codes, forward_lcps)
    backward = _unpack_collection(
        container, f"{prefix}bwd", heavy.codes[::-1].copy(), backward_lcps
    )
    pairs = None
    if meta.get("has_pairs"):
        pairs_array = container.array(f"{prefix}pairs")
        pairs = [(int(x), int(y)) for x, y in pairs_array]
    data = MinimizerIndexData(
        source=source,
        z=z,
        ell=int(meta["ell"]),
        scheme=scheme,
        heavy=heavy,
        forward=forward,
        backward=backward,
        pairs=pairs,
        construction=meta.get("construction", "estimation"),
        counters=dict(meta.get("counters", {})),
        # Presence-gated: stores written before estimation persistence load
        # with ``estimation=None`` and fall back to full-rebuild updates.
        estimation=_unpack_estimation(container, prefix, source, z),
    )
    if cls.use_trie:
        _adopt_stored_tries(container, prefix, data)
    grid = None
    if cls.use_grid:
        from ..geometry.grid import Grid2D

        if pairs is None:
            raise StoreFormatError(
                f"stored {meta['kind']} index is missing its grid pairing"
            )
        grid_meta = meta.get("grid") or {}
        limit = grid_meta.get("brute_force_limit")
        if container.has(f"{prefix}grid.points"):
            grid = Grid2D.from_arrays(
                container.array(f"{prefix}grid.points"),
                container.array(f"{prefix}grid.level_ys"),
                container.array(f"{prefix}grid.level_idx"),
                brute_force_limit=limit,
            )
        else:
            grid = Grid2D(pairs, brute_force_limit=limit)
    return cls(source, z, data, _stats_from_meta(meta["stats"]), grid)


def _unpack_baseline(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.property_structures import PropertySuffixStructure
    from ..indexes.wsa import WeightedSuffixArray
    from ..indexes.wst import WeightedSuffixTree, _SuffixLetterAccessor
    from ..strings.trie import _CSR_ARRAY_NAMES, CompactedTrie

    with_lcp = meta["family"] == "wst"
    lcp = container.array(f"{prefix}ps.lcp") if with_lcp else None
    structure = PropertySuffixStructure.from_arrays(
        container.array(f"{prefix}ps.text"),
        container.array(f"{prefix}ps.sa"),
        lcp,
        container.array(f"{prefix}ps.rank_positions"),
        container.array(f"{prefix}ps.rank_valid_lengths"),
        int(meta["estimation_width"]),
        int(meta["estimation_length"]),
    )
    stats = _stats_from_meta(meta["stats"])
    if meta["family"] == "wsa":
        return WeightedSuffixArray(source, z, structure, stats)
    lengths = len(structure.text) - structure.sa
    accessor = _SuffixLetterAccessor(structure.text, structure.sa)
    if container.has(f"{prefix}ps.trie.depth"):
        trie_arrays = {
            name: container.array(f"{prefix}ps.trie.{name}")
            for name in _CSR_ARRAY_NAMES
        }
        trie = CompactedTrie.from_arrays(
            trie_arrays, lengths, accessor, bulk_letter=accessor.bulk
        )
    else:
        trie = CompactedTrie(
            lengths, structure.lcp, accessor, bulk_letter=accessor.bulk
        )
    return WeightedSuffixTree(source, z, structure, trie, stats)


def _unpack_sharded(container: _Container, meta: dict, prefix: str, source, z: float):
    from ..indexes.sharded import Shard, ShardedIndex

    shards = []
    indexes = []
    generations = []
    for number, shard_meta in enumerate(meta["shards"]):
        start, core_end, end = (int(value) for value in shard_meta["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generations.append(int(shard_meta.get("generation", 0)))
        shard_source = WeightedString(source.matrix[start:end], source.alphabet)
        indexes.append(
            _unpack_body(container, shard_meta, f"{prefix}s{number}.", shard_source, z)
        )
    return ShardedIndex(
        source,
        z,
        shards,
        indexes,
        meta["kind"],
        int(meta["max_pattern_len"]),
        _stats_from_meta(meta["stats"]),
        generations=generations,
    )


# --------------------------------------------------------------------------- #
# public API                                                                   #
# --------------------------------------------------------------------------- #
def save_index(path, index) -> None:
    """Write a built index (monolithic or sharded) to a store file."""
    arrays: dict[str, np.ndarray] = {}
    body = _pack_body(index, arrays, "")
    arrays["source"] = index.source.matrix
    meta = {
        "z": index.z,
        "alphabet": list(index.source.alphabet.letters),
        "body": body,
    }
    _write_container(path, meta, arrays)


def load_index(path, *, mmap: bool = True, verify: bool | None = None):
    """Reload a stored index; queries work immediately, nothing is rebuilt.

    With ``mmap=True`` (the default) the stored arrays — including the
    probability matrix — are memory-mapped read-only and paged in on first
    use; ``mmap=False`` reads them into RAM instead.

    ``verify`` controls array checksum verification: ``None`` (default)
    verifies on RAM loads and skips on mmap loads (which would otherwise
    page the whole file in, defeating lazy loading); pass ``True``/``False``
    to force either way.  Structural checks (magic, header checksum, blob
    bounds) always run.
    """
    if verify is None:
        verify = not mmap
    container = _Container(path, mmap, verify=verify)
    meta = container.meta
    alphabet = Alphabet(meta["alphabet"])
    source = WeightedString(container.array("source"), alphabet)
    return _unpack_body(container, meta["body"], "", source, float(meta["z"]))


def stored_arrays(index) -> dict[str, np.ndarray]:
    """The persisted arrays of a live index, as the live objects.

    Returns the same ``{name: array}`` mapping :func:`save_index` would write,
    but referencing the index's *current* array objects — so after a
    ``load_index(..., mmap=True)`` round trip every entry should chain through
    ``.base`` to a :class:`numpy.memmap`.  The ``pairs`` entry is one
    exception (re-materialized from Python tuples on both save and load) and
    the ``est.cp.*`` checkpoint blocks are the other (re-concatenated from
    the per-checkpoint objects on every pack), so neither is ever
    mmap-backed.  Used by tests to pin the multi-worker RSS
    story (forked workers must share the page cache, not copy the arrays).
    """
    arrays: dict[str, np.ndarray] = {}
    _pack_body(index, arrays, "")
    arrays["source"] = index.source.matrix
    return arrays


# --------------------------------------------------------------------------- #
# sharded directory store                                                      #
# --------------------------------------------------------------------------- #
def _shard_file_name(number: int, generation: int = 0) -> str:
    if generation:
        return f"shard-{number:04d}.g{generation}.idx"
    return f"shard-{number:04d}.idx"


def _sharded_manifest(index, files=None) -> dict:
    if files is None:
        files = [_shard_file_name(number) for number in range(len(index.shards))]
    return {
        "format": SHARDED_STORE_FORMAT,
        "version": SHARDED_STORE_VERSION,
        "writer": __version__,
        "z": index.z,
        "kind": index.kind,
        "alphabet": list(index.source.alphabet.letters),
        "max_pattern_len": index.maximum_pattern_length,
        "length": len(index.source),
        "shards": [
            {
                "plan": [shard.start, shard.core_end, shard.end],
                "generation": generation,
                "file": file,
            }
            for (shard, generation, file) in zip(
                index.shards, index.generations, files
            )
        ],
    }


def _read_manifest(directory: Path) -> dict:
    path = directory / _MANIFEST_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreCorruptionError(
            path, "manifest", f"is corrupt: not valid JSON ({exc})"
        ) from exc
    if manifest.get("format") != SHARDED_STORE_FORMAT:
        raise StoreFormatError(
            f"{path} has format {manifest.get('format')!r}, "
            f"expected {SHARDED_STORE_FORMAT!r}"
        )
    if manifest.get("version") not in _SHARDED_SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in _SHARDED_SUPPORTED_VERSIONS)
        raise StoreFormatError(
            f"{path} has unsupported sharded-store version "
            f"{manifest.get('version')!r} (supported: {supported})"
        )
    return manifest


def _write_manifest(directory: Path, manifest: dict) -> None:
    payload = json.dumps(manifest, indent=2).encode("utf-8")
    _atomic_write(
        directory / _MANIFEST_NAME, lambda handle: handle.write(payload),
        "store.manifest",
    )


def save_sharded_store(directory, index) -> None:
    """Write a sharded index as a directory: one container file per shard.

    Each shard file is a regular single-index store (reloadable on its own),
    stamped in ``manifest.json`` with the shard plan and the shard's rebuild
    generation.  The per-file layout is what makes dirty-shard persistence
    possible: :func:`refresh_sharded_store` rewrites only shards whose
    generation moved, leaving clean shard files byte-identical on disk.
    """
    from ..indexes.sharded import ShardedIndex

    if not isinstance(index, ShardedIndex):
        raise StoreFormatError(
            "save_sharded_store persists ShardedIndex objects; use save_index "
            "for monolithic indexes"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for number, shard_index in enumerate(index.shard_indexes):
        save_index(directory / _shard_file_name(number), shard_index)
    _write_manifest(directory, _sharded_manifest(index))


def refresh_sharded_store(directory, index, *, generation_names: bool = False) -> dict:
    """Persist an updated sharded index, rewriting only dirty shard files.

    Compares the stored per-shard generation stamps against
    ``index.generations`` and rewrites exactly the shard files whose
    generation moved (plus the manifest).  Returns
    ``{"rewritten": [...], "skipped": count, "obsolete": [...]}``.  The shard
    plan must match the stored one — a re-sharded index needs a full
    :func:`save_sharded_store`.

    With ``generation_names=True`` a dirty shard is written to a *new*
    generation-stamped file (``shard-0002.g3.idx``) instead of truncating the
    old one in place.  That is what makes live multi-worker serving safe:
    processes still memory-mapping the previous file keep reading consistent
    bytes, and the superseded paths come back in ``"obsolete"`` so the caller
    can unlink them once every reader has re-mapped (POSIX keeps mappings of
    unlinked files valid until the last reference drops).
    """
    from ..indexes.sharded import ShardedIndex

    if not isinstance(index, ShardedIndex):
        raise StoreFormatError("refresh_sharded_store needs a ShardedIndex")
    directory = Path(directory)
    manifest = _read_manifest(directory)
    stored = manifest["shards"]
    plans = [[shard.start, shard.core_end, shard.end] for shard in index.shards]
    if [entry["plan"] for entry in stored] != plans:
        raise StoreFormatError(
            f"{directory} stores a different shard plan; save the re-sharded "
            "index with save_sharded_store instead"
        )
    # The refresh only rewrites dirty shard files, so everything the clean
    # files depend on must match the stored parameters — otherwise untouched
    # shards would silently answer under a different configuration.
    expected = _sharded_manifest(index)
    for field in ("z", "kind", "alphabet", "max_pattern_len", "length"):
        if manifest.get(field) != expected[field]:
            raise StoreFormatError(
                f"{directory} was saved with {field}={manifest.get(field)!r} "
                f"but the index has {field}={expected[field]!r}; save it with "
                "save_sharded_store instead of refreshing"
            )
    rewritten = []
    obsolete = []
    generations = index.generations
    files = [entry["file"] for entry in stored]
    for number, entry in enumerate(stored):
        if int(entry["generation"]) != generations[number]:
            name = entry["file"]
            if generation_names:
                name = _shard_file_name(number, generations[number])
            save_index(directory / name, index.shard_indexes[number])
            failpoint("store.refresh.shard_written")
            rewritten.append(number)
            if name != entry["file"]:
                obsolete.append(str(directory / entry["file"]))
            files[number] = name
    _write_manifest(directory, _sharded_manifest(index, files=files))
    failpoint("store.refresh.manifest_written")
    return {
        "rewritten": rewritten,
        "skipped": len(stored) - len(rewritten),
        "obsolete": obsolete,
    }


def append_update_log(directory, entry: dict) -> None:
    """Append one JSON line to a directory store's ``update-log.jsonl``.

    The log records what update batches a long-lived store absorbed (CLI
    ``update`` runs, serving-layer refreshes) — enough to audit why shard
    files accumulated ``.g*`` generations.  :func:`compact_store` truncates
    it once those generations are folded back into canonical files.
    """
    path = Path(directory) / UPDATE_LOG_NAME
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def read_update_log(directory) -> list[dict]:
    """All entries of a directory store's update log (empty when absent)."""
    path = Path(directory) / UPDATE_LOG_NAME
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    entries = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise StoreCorruptionError(
                path, "update-log", f"has a corrupt line: {exc}"
            ) from exc
    return entries


# --------------------------------------------------------------------------- #
# write-ahead log + crash recovery                                             #
# --------------------------------------------------------------------------- #
def append_wal(directory, record: dict) -> int:
    """Append one framed record to a directory store's WAL and fsync it.

    The frame is ``<II`` (payload length, CRC32 of the payload) followed by
    the JSON payload.  The fsync is the commit point: a record present after
    a crash was durably committed; a torn tail fails its length or checksum
    check and is discarded by recovery.  Returns the WAL size *before* the
    append, so a caller that later fails can truncate its own record away.
    """
    path = Path(directory) / WAL_NAME
    payload = json.dumps(record, sort_keys=True).encode("utf-8")
    frame = _WAL_FRAME.pack(len(payload), _crc32(payload))
    with open(path, "ab") as handle:
        handle.seek(0, os.SEEK_END)
        start = handle.tell()
        handle.write(frame + payload)
        handle.flush()
        failpoint("store.wal.appended")
        os.fsync(handle.fileno())
    failpoint("store.wal.fsynced")
    return start


def read_wal(directory) -> tuple[list[dict], int, int]:
    """Parse a directory store's WAL tolerantly.

    Returns ``(records, valid_bytes, total_bytes)``: every record up to the
    first torn or corrupt frame, the byte offset that prefix ends at, and
    the file size.  ``valid_bytes < total_bytes`` means the tail is torn
    (an append interrupted mid-write) and should be truncated by recovery.
    A missing WAL reads as ``([], 0, 0)``.
    """
    path = Path(directory) / WAL_NAME
    try:
        blob = path.read_bytes()
    except OSError:
        return [], 0, 0
    records: list[dict] = []
    offset = 0
    total = len(blob)
    while offset + _WAL_FRAME.size <= total:
        length, crc = _WAL_FRAME.unpack_from(blob, offset)
        start = offset + _WAL_FRAME.size
        end = start + length
        if end > total:
            break
        payload = blob[start:end]
        if _crc32(payload) != crc:
            break
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        offset = end
    return records, offset, total


def _truncate_wal(directory, size: int) -> None:
    path = Path(directory) / WAL_NAME
    with open(path, "r+b") as handle:
        handle.truncate(size)
        os.fsync(handle.fileno())


def _wal_updates_payload(updates) -> list:
    """JSON-clean form of an update batch for a WAL record.

    Distributions arrive either as ``{letter: probability}`` dicts (the
    service/CLI path through ``parse_updates``) or as dense rows; both are
    preserved losslessly — replay feeds them straight back to
    ``apply_updates``, whose updates are absolute and therefore idempotent.
    """
    payload = []
    for position, distribution in updates:
        if isinstance(distribution, dict):
            clean = {str(letter): float(value) for letter, value in distribution.items()}
        else:
            clean = [float(value) for value in np.asarray(distribution).ravel()]
        payload.append([int(position), clean])
    return payload


def _pending_wal_updates(records: list[dict]) -> list[dict]:
    """The committed update records not yet covered by an ``applied`` marker."""
    last_applied = -1
    for number, record in enumerate(records):
        if record.get("type") == "applied":
            last_applied = number
    return [
        record
        for record in records[last_applied + 1 :]
        if record.get("type") == "update"
    ]


def apply_updates_durably(directory, index, updates, *, generation_names: bool = False):
    """Apply an update batch to a directory-store index, crash-safely.

    The sequence is: apply in memory (which validates the payload), commit
    the batch to the WAL (fsync'd — the durability point), rewrite the dirty
    shard files + manifest, then append an ``applied`` marker.  A crash
    before the WAL commit leaves the store at the pre-update state (the
    batch was never acknowledged); a crash any time after it is rolled
    forward by :func:`recover_sharded_store` to the exact post-update index.

    Returns ``(report, outcome, wal_start)`` — the ``apply_updates`` report,
    the refresh outcome, and the WAL offset of the update record (callers
    that fail later can truncate back to it to roll back the commit).
    """
    directory = Path(directory)
    report = index.apply_updates(updates)
    wal_start = append_wal(
        directory,
        {
            "type": "update",
            "updates": _wal_updates_payload(updates),
            "generations": list(index.generations),
        },
    )
    outcome = refresh_sharded_store(
        directory, index, generation_names=generation_names
    )
    append_wal(directory, {"type": "applied", "generations": list(index.generations)})
    return report, outcome, wal_start


def _filename_generation(name: str) -> int:
    """The generation stamped in a shard file name (``shard-0002.g7.idx`` → 7)."""
    parts = name.split(".")
    if len(parts) == 3 and parts[1].startswith("g"):
        try:
            return int(parts[1][1:])
        except ValueError:
            return 0
    return 0


def _quarantine(path: Path) -> str:
    target = path.with_name(path.name + ".quarantine")
    os.replace(path, target)
    return target.name


def recover_sharded_store(directory, *, mmap: bool = False):
    """Bring a directory store back to a consistent state after a crash.

    Recovery (idempotent, safe on a clean store) performs, in order:

    1. sweep temp files left by interrupted atomic writes;
    2. truncate a torn WAL tail (bytes past the last intact frame);
    3. verify every shard the manifest references (full checksums); a
       corrupt shard file is quarantined (renamed ``*.quarantine``) and
       replaced by its highest-generation intact sibling, repairing the
       manifest to match;
    4. replay committed-but-unapplied WAL update records (absolute, hence
       idempotent) through the normal update path and rewrite the dirty
       shards;
    5. unlink shard files the repaired manifest no longer references.

    Returns ``(index, report)`` — the recovered, ready-to-serve index and a
    summary dict (``status`` is ``"clean"`` when nothing needed fixing).
    Unrecoverable damage (no intact candidate for a shard) raises
    :class:`~repro.errors.StoreCorruptionError`.
    """
    from ..indexes.sharded import Shard

    directory = Path(directory)
    report = {
        "status": "clean",
        "tmp_removed": [],
        "wal_truncated_bytes": 0,
        "quarantined": [],
        "repaired": [],
        "replayed": 0,
        "rewritten": [],
        "removed": [],
    }
    for tmp in sorted(directory.glob(".*.tmp.*")):
        tmp.unlink()
        report["tmp_removed"].append(tmp.name)
    records, valid_bytes, total_bytes = read_wal(directory)
    if valid_bytes < total_bytes:
        _truncate_wal(directory, valid_bytes)
        report["wal_truncated_bytes"] = total_bytes - valid_bytes
    manifest = _read_manifest(directory)
    shards = []
    indexes = []
    generations = []
    manifest_repaired = False
    for number, entry in enumerate(manifest["shards"]):
        start, core_end, end = (int(value) for value in entry["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        path = directory / entry["file"]
        try:
            indexes.append(load_index(path, mmap=mmap, verify=True))
            generations.append(int(entry["generation"]))
            continue
        except StoreError as exc:
            if path.exists():
                report["quarantined"].append(_quarantine(path))
            failure = exc
        # Fall back to the highest-generation intact sibling of this shard.
        candidates = sorted(
            directory.glob(f"shard-{number:04d}*.idx"),
            key=lambda p: _filename_generation(p.name),
            reverse=True,
        )
        for candidate in candidates:
            try:
                indexes.append(load_index(candidate, mmap=mmap, verify=True))
            except StoreError:
                report["quarantined"].append(_quarantine(candidate))
                continue
            entry["file"] = candidate.name
            entry["generation"] = _filename_generation(candidate.name)
            generations.append(int(entry["generation"]))
            report["repaired"].append(candidate.name)
            manifest_repaired = True
            break
        else:
            raise StoreCorruptionError(
                directory,
                f"shard {number}",
                f"is unrecoverable: no intact file for this shard ({failure})",
            )
    if manifest_repaired:
        _write_manifest(directory, manifest)
    index = _assemble_sharded(manifest, shards, indexes, generations)
    if manifest_repaired:
        # A shard fell back to an older generation file: the applied markers
        # no longer vouch for it, so replay the *whole* WAL — updates are
        # absolute (idempotent), so over-replay converges to the committed
        # state regardless of which generation each shard resumed from.
        pending = [record for record in records if record.get("type") == "update"]
    else:
        pending = _pending_wal_updates(records)
    for record in pending:
        updates = [
            (
                int(position),
                distribution
                if isinstance(distribution, dict)
                else np.asarray(distribution, dtype=np.float64),
            )
            for position, distribution in record.get("updates", [])
        ]
        if updates:
            index.apply_updates(updates)
            report["replayed"] += 1
    if report["replayed"] or manifest_repaired:
        outcome = refresh_sharded_store(directory, index)
        report["rewritten"] = outcome["rewritten"]
        append_wal(directory, {"type": "applied", "generations": list(index.generations)})
    # Drop shard files the (possibly repaired) manifest no longer references:
    # generation files orphaned by a crash between replace and unlink.
    referenced = {entry["file"] for entry in _read_manifest(directory)["shards"]}
    for path in sorted(directory.glob("shard-*.idx")):
        if path.name not in referenced:
            path.unlink()
            report["removed"].append(path.name)
    if any(
        report[key]
        for key in (
            "tmp_removed",
            "wal_truncated_bytes",
            "quarantined",
            "repaired",
            "replayed",
            "removed",
        )
    ):
        report["status"] = "recovered"
    return index, report


def verify_store(path) -> dict:
    """Audit a store (monolithic file or sharded directory) without changes.

    Returns ``{"schema": "repro.verify.v1", "path", "ok", "problems"}`` with
    one problem entry per damaged or suspicious artefact: corrupt container
    headers or array blobs (full checksum pass), a torn WAL tail, committed
    WAL updates not yet applied (run ``recover``), and leftover temp files.
    Version-1 stores (no checksums) pass on structural checks alone.
    """
    path = Path(path)
    report: dict = {
        "schema": "repro.verify.v1",
        "path": str(path),
        "ok": True,
        "problems": [],
    }

    def problem(file, section: str, error) -> None:
        report["ok"] = False
        report["problems"].append(
            {"file": str(file), "section": section, "error": str(error)}
        )

    def check_container(file) -> None:
        try:
            container = _Container(file, mmap=False)
        except StoreError as exc:
            problem(file, "container", exc)
            return
        for issue in container.verify_arrays():
            problem(file, issue.section, issue)

    if not path.is_dir():
        check_container(path)
        return report
    try:
        manifest = _read_manifest(path)
    except StoreError as exc:
        problem(path / _MANIFEST_NAME, "manifest", exc)
        return report
    report["shards"] = len(manifest["shards"])
    for entry in manifest["shards"]:
        check_container(path / entry["file"])
    records, valid_bytes, total_bytes = read_wal(path)
    if valid_bytes < total_bytes:
        problem(
            path / WAL_NAME,
            "wal",
            f"torn tail: {total_bytes - valid_bytes} trailing byte(s) past "
            "the last intact record (run recover)",
        )
    pending = _pending_wal_updates(records)
    if pending:
        problem(
            path / WAL_NAME,
            "wal",
            f"{len(pending)} committed update record(s) not applied to the "
            "shard files (run recover)",
        )
    for tmp in sorted(path.glob(".*.tmp.*")):
        problem(tmp, "tmp", "leftover temp file from an interrupted write (run recover)")
    return report


def compact_store(directory) -> dict:
    """Fold a directory store back to its canonical, generation-free layout.

    Long-lived stores accumulate generation-stamped shard files
    (``shard-0002.g7.idx``) and update-log entries.  Compaction rewrites
    every *moved* shard under its canonical name (``shard-0002.idx``) with
    its generation stamp reset to 0, removes superseded shard files, and
    truncates the update log and WAL; shards already canonical at
    generation 0 are left byte-untouched.  Query results are byte-identical
    before and after — only the file layout changes.  Returns
    ``{"shards": count, "removed": [...], "log_entries_cleared": count}``.

    Compaction refuses to run on a store that fails :func:`verify_store`
    (e.g. one left dirty by a crashed refresh): unlinking generation files
    while the manifest or WAL still disagrees with the shard files could
    destroy the only intact copy.  Run ``recover`` first.
    """
    directory = Path(directory)
    audit = verify_store(directory)
    if not audit["ok"]:
        first = audit["problems"][0]
        raise StoreCorruptionError(
            directory,
            "store",
            "failed verification, refusing to compact (run `verify-store` "
            f"for the full report, then `recover`): {first['section']} — "
            f"{first['error']}",
        )
    stored = _read_manifest(directory)["shards"]
    # The verification pass above already checksummed every shard file.
    index = load_sharded_store(directory, mmap=False, verify=False)
    canonical = [_shard_file_name(number) for number in range(len(index.shards))]
    for number, shard_index in enumerate(index.shard_indexes):
        entry = stored[number]
        if entry["file"] == canonical[number] and int(entry["generation"]) == 0:
            continue  # already canonical: keep the file byte-identical
        save_index(directory / canonical[number], shard_index)
        failpoint("store.compact.shard_written")
    index._generations = [0] * len(index.shards)
    _write_manifest(directory, _sharded_manifest(index, files=canonical))
    failpoint("store.compact.manifest_written")
    keep = set(canonical) | {_MANIFEST_NAME}
    removed = []
    for path in sorted(directory.glob("shard-*.idx")):
        if path.name not in keep:
            path.unlink()
            failpoint("store.compact.unlink")
            removed.append(path.name)
    cleared = len(read_update_log(directory))
    log_path = directory / UPDATE_LOG_NAME
    if log_path.exists():
        log_path.unlink()
    wal_path = directory / WAL_NAME
    if wal_path.exists():
        wal_path.unlink()
    return {
        "shards": len(canonical),
        "removed": removed,
        "log_entries_cleared": cleared,
    }


def _assemble_sharded(manifest: dict, shards, indexes, generations):
    """Build the parent :class:`ShardedIndex` from loaded shard indexes."""
    from ..indexes.sharded import ShardedIndex
    from ..indexes.space import IndexStats

    alphabet = Alphabet(manifest["alphabet"])
    cores = [
        index.source.matrix[: shard.core_end - shard.start]
        for shard, index in zip(shards, indexes)
    ]
    matrix = np.vstack(cores) if cores else np.empty((0, alphabet.size))
    source = WeightedString(matrix, alphabet)
    stats = IndexStats(
        name=f"SHARDED[{manifest['kind']}]",
        index_size_bytes=sum(index.stats.index_size_bytes for index in indexes),
        counters={
            "shards": len(shards),
            "kind": manifest["kind"],
            "overlap": int(manifest["max_pattern_len"]) - 1,
            "loaded_from_store": True,
            "generations": list(generations),
        },
    )
    return ShardedIndex(
        source,
        float(manifest["z"]),
        shards,
        indexes,
        manifest["kind"],
        int(manifest["max_pattern_len"]),
        stats,
        generations=generations,
    )


def load_sharded_store(directory, *, mmap: bool = True, verify: bool | None = None):
    """Reload a sharded index from a directory store.

    Shard files load exactly like single-index stores (memory-mapped by
    default); the parent probability matrix is reassembled from the shards'
    core slices, so the directory holds no duplicate full-string copy.
    ``verify`` follows :func:`load_index`: checksums verified on RAM loads,
    skipped on mmap loads, unless forced either way.
    """
    from ..indexes.sharded import Shard

    directory = Path(directory)
    manifest = _read_manifest(directory)
    shards = []
    indexes = []
    generations = []
    for entry in manifest["shards"]:
        start, core_end, end = (int(value) for value in entry["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generations.append(int(entry["generation"]))
        indexes.append(load_index(directory / entry["file"], mmap=mmap, verify=verify))
    return _assemble_sharded(manifest, shards, indexes, generations)


def reload_sharded_store(directory, previous, *, mmap: bool = True):
    """Re-read a directory store, re-mapping only shards whose generation moved.

    ``previous`` is the :class:`ShardedIndex` currently serving (typically the
    result of an earlier :func:`load_sharded_store`).  Shards whose plan *and*
    generation stamp match the manifest keep their already-loaded shard index
    object (and its live memory maps); only moved shards are re-opened from
    their (generation-stamped) files.  Returns ``(index, reloaded_numbers)``.

    The parent probability matrix is reassembled from the shard cores, so the
    swap is a plain object replacement — readers holding the previous index
    keep a fully consistent view until they drop it.
    """
    from ..indexes.sharded import Shard

    directory = Path(directory)
    manifest = _read_manifest(directory)
    previous_plans = [
        [shard.start, shard.core_end, shard.end] for shard in previous.shards
    ]
    previous_generations = previous.generations
    shards = []
    indexes = []
    generations = []
    reloaded = []
    for number, entry in enumerate(manifest["shards"]):
        start, core_end, end = (int(value) for value in entry["plan"])
        shards.append(Shard(start=start, core_end=core_end, end=end))
        generation = int(entry["generation"])
        generations.append(generation)
        if (
            number < len(previous_plans)
            and previous_plans[number] == [start, core_end, end]
            and previous_generations[number] == generation
        ):
            indexes.append(previous.shard_indexes[number])
        else:
            indexes.append(load_index(directory / entry["file"], mmap=mmap))
            reloaded.append(number)
    return _assemble_sharded(manifest, shards, indexes, generations), reloaded
