"""2D range reporting over grid points (the Lemma 7 substrate).

The grid-based indexes (MWST-G, MWSA-G) pair leaves of the forward and
backward minimizer solid-factor trees: point ``(x, y)`` links the leaf of
rank ``x`` in ``Tsuff`` with the leaf of rank ``y`` in ``Tpref`` that carries
the same minimizer label.  A query then asks for all points inside an
axis-aligned rectangle ``[x1, x2) × [y1, y2)``.

Two backends are provided:

* :class:`RangeTree2D` — a segment tree over x whose nodes store their
  points sorted by y ("merge-sort tree"); queries cost
  ``O(log²N + k·log N)`` — the practical counterpart of the
  ``O((1 + k) log N)`` structure of Lemma 7.  The per-node y-orders are
  materialised level by level with one ``np.lexsort`` per level (a stable
  sort within blocks of ``2^h`` positions is exactly the bottom-up stable
  merge), giving two contiguous ``(levels, N)`` arrays that round-trip
  through :meth:`RangeTree2D.to_arrays` / :meth:`RangeTree2D.from_arrays`
  for store reloads;
* :class:`BruteForceGrid` — a linear scan used as a test oracle and for
  very small point sets.

:class:`Grid2D` is the façade the indexes use; it picks the backend and
exposes uniform ``report``/``count`` methods.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._kernels import stage_timer

__all__ = ["BruteForceGrid", "RangeTree2D", "Grid2D"]

Point = tuple[int, int]


class BruteForceGrid:
    """Linear-scan backend (test oracle, tiny point sets)."""

    def __init__(self, points: Sequence[Point]) -> None:
        self._points = [(int(x), int(y)) for x, y in points]

    def __len__(self) -> int:
        return len(self._points)

    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points with x in [x_lo, x_hi) and y in [y_lo, y_hi)."""
        return [
            (x, y)
            for x, y in self._points
            if x_lo <= x < x_hi and y_lo <= y < y_hi
        ]

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle."""
        return len(self.report(x_lo, x_hi, y_lo, y_hi))

    def nbytes(self) -> int:
        """Approximate memory footprint (two integers per point)."""
        return 16 * len(self._points)


class RangeTree2D:
    """Segment tree over x with y-sorted point lists per node.

    Level ``h`` holds all points y-sorted within consecutive blocks of
    ``2^h`` positions (level 0 is the x-sorted base order); a segment-tree
    node of height ``h`` is a contiguous slice of level ``h``.
    """

    #: Class-level counter of from-points builds (``from_arrays`` does not
    #: count) — the no-rederivation test hook for store reloads.
    build_count = 0

    def __init__(self, points: Sequence[Point]) -> None:
        RangeTree2D.build_count += 1
        with stage_timer("grid"):
            array = np.asarray(
                [(int(x), int(y)) for x, y in points], dtype=np.int64
            ).reshape(-1, 2)
            if len(array):
                array = array[np.lexsort((array[:, 1], array[:, 0]))]
            n = len(array)
            size = 1
            while size < max(1, n):
                size *= 2
            levels = size.bit_length()
            ys = array[:, 1]
            level_ys = np.empty((levels, n), dtype=np.int64)
            level_idx = np.empty((levels, n), dtype=np.int64)
            level_ys[0] = ys
            level_idx[0] = np.arange(n, dtype=np.int64)
            positions = level_idx[0]
            for height in range(1, levels):
                order = np.lexsort((ys, positions >> height))
                level_ys[height] = ys[order]
                level_idx[height] = order
        self._points = array
        self._xs = array[:, 0]
        self._size = size
        self._level_ys = level_ys
        self._level_idx = level_idx

    def __len__(self) -> int:
        return len(self._points)

    # -- array round-trip ---------------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """The sorted points and per-level arrays (for persistence)."""
        return {
            "points": self._points,
            "level_ys": self._level_ys,
            "level_idx": self._level_idx,
        }

    @classmethod
    def from_arrays(
        cls, points: np.ndarray, level_ys: np.ndarray, level_idx: np.ndarray
    ) -> RangeTree2D:
        """Rehydrate from :meth:`to_arrays` output (no rebuild)."""
        tree = cls.__new__(cls)
        tree._points = np.asarray(points, dtype=np.int64).reshape(-1, 2)
        tree._xs = tree._points[:, 0]
        tree._level_ys = np.asarray(level_ys, dtype=np.int64)
        tree._level_idx = np.asarray(level_idx, dtype=np.int64)
        tree._size = 1 << (len(tree._level_ys) - 1)
        return tree

    # -- rectangle decomposition -------------------------------------------------------
    def _canonical_nodes(self, lo: int, hi: int) -> list[int]:
        """O(log N) segment-tree nodes covering point-index range [lo, hi)."""
        nodes = []
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo //= 2
            hi //= 2
        return nodes

    def _node_slice(self, node: int) -> tuple[int, int, int]:
        """Height and level-array slice of a segment-tree node."""
        level = node.bit_length() - 1
        height = self._size.bit_length() - 1 - level
        start = (node - (1 << level)) << height
        return height, start, min(start + (1 << height), len(self._points))

    def _x_range_to_positions(self, x_lo: int, x_hi: int) -> tuple[int, int]:
        lo = int(np.searchsorted(self._xs, x_lo, side="left"))
        hi = int(np.searchsorted(self._xs, x_hi, side="left"))
        return lo, hi

    # -- queries -----------------------------------------------------------------------
    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points inside ``[x_lo, x_hi) × [y_lo, y_hi)``."""
        lo, hi = self._x_range_to_positions(x_lo, x_hi)
        if lo >= hi or y_lo >= y_hi:
            return []
        points = self._points
        results: list[Point] = []
        for node in self._canonical_nodes(lo, hi):
            height, start, stop = self._node_slice(node)
            ys = self._level_ys[height, start:stop]
            first = int(np.searchsorted(ys, y_lo, side="left"))
            last = int(np.searchsorted(ys, y_hi, side="left"))
            for position in self._level_idx[height, start + first : start + last]:
                results.append((int(points[position, 0]), int(points[position, 1])))
        return results

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle (no reporting cost)."""
        lo, hi = self._x_range_to_positions(x_lo, x_hi)
        if lo >= hi or y_lo >= y_hi:
            return 0
        total = 0
        for node in self._canonical_nodes(lo, hi):
            height, start, stop = self._node_slice(node)
            ys = self._level_ys[height, start:stop]
            total += int(np.searchsorted(ys, y_hi, side="left")) - int(
                np.searchsorted(ys, y_lo, side="left")
            )
        return total

    def nbytes(self) -> int:
        """Approximate memory footprint of the structure."""
        return int(
            self._points.nbytes + self._level_ys.nbytes + self._level_idx.nbytes
        )


class Grid2D:
    """Façade over the range-reporting backends used by the grid indexes."""

    #: Below this many points a linear scan is faster than any structure
    #: (default; overridable per index via ``brute_force_limit``).
    BRUTE_FORCE_LIMIT = 64

    def __init__(
        self,
        points: Sequence[Point],
        backend: str = "auto",
        *,
        brute_force_limit: int | None = None,
    ) -> None:
        points = list(points)
        limit = self.BRUTE_FORCE_LIMIT if brute_force_limit is None else int(brute_force_limit)
        self._brute_force_limit = limit
        if backend == "brute" or (backend == "auto" and len(points) <= limit):
            self._backend = BruteForceGrid(points)
        elif backend in {"auto", "range_tree"}:
            self._backend = RangeTree2D(points)
        else:
            raise ValueError(f"unknown grid backend {backend!r}")
        self._count = len(points)

    @classmethod
    def from_arrays(
        cls,
        points: np.ndarray,
        level_ys: np.ndarray,
        level_idx: np.ndarray,
        *,
        brute_force_limit: int | None = None,
    ) -> Grid2D:
        """Rehydrate a range-tree-backed façade from persisted arrays."""
        grid = cls.__new__(cls)
        grid._brute_force_limit = (
            cls.BRUTE_FORCE_LIMIT if brute_force_limit is None else int(brute_force_limit)
        )
        grid._backend = RangeTree2D.from_arrays(points, level_ys, level_idx)
        grid._count = len(grid._backend)
        return grid

    @property
    def backend_name(self) -> str:
        """``"brute"`` or ``"range_tree"``."""
        return "brute" if isinstance(self._backend, BruteForceGrid) else "range_tree"

    @property
    def brute_force_limit(self) -> int:
        """The backend-selection threshold this façade was built with."""
        return self._brute_force_limit

    def __len__(self) -> int:
        return self._count

    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points inside the rectangle."""
        return self._backend.report(x_lo, x_hi, y_lo, y_hi)

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle."""
        return self._backend.count(x_lo, x_hi, y_lo, y_hi)

    def nbytes(self) -> int:
        """Approximate memory footprint of the active backend."""
        return self._backend.nbytes()
