"""2D range reporting over grid points (the Lemma 7 substrate).

The grid-based indexes (MWST-G, MWSA-G) pair leaves of the forward and
backward minimizer solid-factor trees: point ``(x, y)`` links the leaf of
rank ``x`` in ``Tsuff`` with the leaf of rank ``y`` in ``Tpref`` that carries
the same minimizer label.  A query then asks for all points inside an
axis-aligned rectangle ``[x1, x2) × [y1, y2)``.

Two backends are provided:

* :class:`RangeTree2D` — a segment tree over x whose nodes store their
  points sorted by y ("merge-sort tree"); queries cost
  ``O(log²N + k·log N)`` — the practical counterpart of the
  ``O((1 + k) log N)`` structure of Lemma 7;
* :class:`BruteForceGrid` — a linear scan used as a test oracle and for
  very small point sets.

:class:`Grid2D` is the façade the indexes use; it picks the backend and
exposes uniform ``report``/``count`` methods.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

import numpy as np

__all__ = ["BruteForceGrid", "RangeTree2D", "Grid2D"]

Point = tuple[int, int]


class BruteForceGrid:
    """Linear-scan backend (test oracle, tiny point sets)."""

    def __init__(self, points: Sequence[Point]) -> None:
        self._points = [(int(x), int(y)) for x, y in points]

    def __len__(self) -> int:
        return len(self._points)

    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points with x in [x_lo, x_hi) and y in [y_lo, y_hi)."""
        return [
            (x, y)
            for x, y in self._points
            if x_lo <= x < x_hi and y_lo <= y < y_hi
        ]

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle."""
        return len(self.report(x_lo, x_hi, y_lo, y_hi))

    def nbytes(self) -> int:
        """Approximate memory footprint (two integers per point)."""
        return 16 * len(self._points)


class RangeTree2D:
    """Segment tree over x with y-sorted point lists per node."""

    def __init__(self, points: Sequence[Point]) -> None:
        points = sorted((int(x), int(y)) for x, y in points)
        self._points = points
        self._xs = [x for x, _ in points]
        size = 1
        while size < max(1, len(points)):
            size *= 2
        self._size = size
        # Node i covers point indices [i*block, (i+1)*block) at its level.
        self._ys: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * (2 * size)
        self._idx: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * (2 * size)
        for position, (_, y) in enumerate(points):
            leaf = size + position
            self._ys[leaf] = np.array([y], dtype=np.int64)
            self._idx[leaf] = np.array([position], dtype=np.int64)
        for node in range(size - 1, 0, -1):
            left, right = self._ys[2 * node], self._ys[2 * node + 1]
            left_idx, right_idx = self._idx[2 * node], self._idx[2 * node + 1]
            merged_y = np.concatenate([left, right])
            merged_idx = np.concatenate([left_idx, right_idx])
            order = np.argsort(merged_y, kind="stable")
            self._ys[node] = merged_y[order]
            self._idx[node] = merged_idx[order]

    def __len__(self) -> int:
        return len(self._points)

    # -- rectangle decomposition -------------------------------------------------------
    def _canonical_nodes(self, lo: int, hi: int) -> list[int]:
        """O(log N) segment-tree nodes covering point-index range [lo, hi)."""
        nodes = []
        lo += self._size
        hi += self._size
        while lo < hi:
            if lo & 1:
                nodes.append(lo)
                lo += 1
            if hi & 1:
                hi -= 1
                nodes.append(hi)
            lo //= 2
            hi //= 2
        return nodes

    def _x_range_to_positions(self, x_lo: int, x_hi: int) -> tuple[int, int]:
        lo = bisect_left(self._xs, x_lo)
        hi = bisect_left(self._xs, x_hi)
        return lo, hi

    # -- queries -----------------------------------------------------------------------
    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points inside ``[x_lo, x_hi) × [y_lo, y_hi)``."""
        lo, hi = self._x_range_to_positions(x_lo, x_hi)
        if lo >= hi or y_lo >= y_hi:
            return []
        results: list[Point] = []
        for node in self._canonical_nodes(lo, hi):
            ys = self._ys[node]
            start = int(np.searchsorted(ys, y_lo, side="left"))
            stop = int(np.searchsorted(ys, y_hi, side="left"))
            for position in self._idx[node][start:stop]:
                results.append(self._points[int(position)])
        return results

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle (no reporting cost)."""
        lo, hi = self._x_range_to_positions(x_lo, x_hi)
        if lo >= hi or y_lo >= y_hi:
            return 0
        total = 0
        for node in self._canonical_nodes(lo, hi):
            ys = self._ys[node]
            total += int(np.searchsorted(ys, y_hi, side="left")) - int(
                np.searchsorted(ys, y_lo, side="left")
            )
        return total

    def nbytes(self) -> int:
        """Approximate memory footprint of the structure."""
        total = 16 * len(self._points)
        total += sum(level.nbytes for level in self._ys)
        total += sum(level.nbytes for level in self._idx)
        return int(total)


class Grid2D:
    """Façade over the range-reporting backends used by the grid indexes."""

    #: Below this many points a linear scan is faster than any structure.
    BRUTE_FORCE_LIMIT = 64

    def __init__(self, points: Sequence[Point], backend: str = "auto") -> None:
        points = list(points)
        if backend == "brute" or (backend == "auto" and len(points) <= self.BRUTE_FORCE_LIMIT):
            self._backend = BruteForceGrid(points)
        elif backend in {"auto", "range_tree"}:
            self._backend = RangeTree2D(points)
        else:
            raise ValueError(f"unknown grid backend {backend!r}")
        self._count = len(points)

    def __len__(self) -> int:
        return self._count

    def report(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> list[Point]:
        """All points inside the rectangle."""
        return self._backend.report(x_lo, x_hi, y_lo, y_hi)

    def count(self, x_lo: int, x_hi: int, y_lo: int, y_hi: int) -> int:
        """Number of points inside the rectangle."""
        return self._backend.count(x_lo, x_hi, y_lo, y_hi)

    def nbytes(self) -> int:
        """Approximate memory footprint of the active backend."""
        return self._backend.nbytes()
