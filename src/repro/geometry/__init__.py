"""Geometric substrate: 2D range reporting for the grid-based indexes."""

from .grid import BruteForceGrid, Grid2D, RangeTree2D

__all__ = ["BruteForceGrid", "RangeTree2D", "Grid2D"]
