"""Command-line interface: build indexes, run queries, inspect datasets, serve.

Installed as the ``repro-uncertain`` console script.  Ten sub-commands:

* ``info``        — Table 2-style characteristics of a named or PWM-file dataset;
* ``build``       — build an index (optionally sharded via ``--shards`` /
  ``--workers``) and report its statistics; ``--store FILE`` saves the built
  index to the binary index store, ``--store-dir DIR`` saves a sharded index
  as a per-shard directory store;
* ``query``       — answer patterns in any query mode (``--mode`` /
  ``--topk`` / ``--probs``); the index is either built on the spot or
  reloaded from a store with ``--store`` (no rebuild);
* ``query-batch`` — answer a whole pattern batch through the vectorised
  query planner (fanning out across shards for sharded indexes) and report
  throughput alongside the results;
* ``update``      — apply point or ranged updates (new per-position
  distributions, or ``{"start", "rows"}`` spans) to a stored index and
  persist the repair; directory stores rewrite only the dirty shards and
  append each batch to the store's ``update-log.jsonl``;
* ``compact``     — fold an updated directory store back to canonical
  generation-0 shard files (drops superseded ``.gN`` files, truncates the
  update log; query answers stay byte-identical); refuses to run on a
  store that fails verification — run ``recover`` first;
* ``verify-store`` — audit a store file or directory without modifying it:
  container and per-array checksums, torn write-ahead-log tails, committed
  but unapplied updates, leftover temp files; exit 1 when damage is found;
* ``recover``     — bring a directory store back to a consistent state
  after a crash: sweep temp files, truncate torn WAL tails, quarantine
  corrupt shards and fall back to intact siblings, replay committed
  updates (single-file stores are verified only — atomic writes leave
  them old-or-new, never torn);
* ``serve``       — a line-oriented stdin/stdout JSON query loop over a
  cached :class:`~repro.service.QueryService` (one request per line, one
  JSON response per line), including an ``update`` op with exact cache
  invalidation;
* ``serve-http``  — the same service behind a stdlib-only asyncio HTTP/1.1
  JSON API (``POST /query`` / ``/query/batch`` / ``/update``, ``GET
  /stats`` / ``/healthz`` / ``/metrics``) with cross-request
  micro-batching, per-client rate limiting, load shedding and
  Prometheus-format metrics.

``--json`` on the query sub-commands switches to a stable machine-readable
schema (positions, probabilities, timing, planner statistics); ``build
--json`` emits the ``repro.build.v1`` schema with the construction
wall-time and measured peak memory (tracemalloc + RSS).  Exit codes:
0 on success, 2 for malformed patterns (:class:`~repro.errors.PatternError`),
1 for every other usage error.

The CLI is intentionally small: it exposes the library's public API for shell
pipelines and smoke tests; programmatic users should import :mod:`repro`.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

from pathlib import Path

from .core.weighted_string import WeightedString
from .datasets.registry import DATASETS, dataset_characteristics, load_dataset
from .errors import PatternError, ReproError
from .indexes import INDEX_CLASSES, Query, QueryMode, QueryPlanner, build_index
from .io.pwm import read_pwm
from .io.store import (
    append_update_log,
    apply_updates_durably,
    compact_store,
    load_index,
    load_sharded_store,
    recover_sharded_store,
    save_index,
    save_sharded_store,
    verify_store,
)
from .service import QueryService
from .service.protocol import parse_updates, query_from_payload

__all__ = ["main", "build_parser"]


def _load_source(arguments) -> WeightedString:
    if arguments.pwm:
        return read_pwm(arguments.pwm)
    if arguments.dataset:
        return load_dataset(arguments.dataset, arguments.length)
    raise ReproError("either --pwm FILE or --dataset NAME must be given")


def _build_index(arguments):
    """Build the index a sub-command asked for (sharded when --shards is given)."""
    source = _load_source(arguments)
    if arguments.z is None:
        raise ReproError("--z is required when building an index")
    # serve-http reserves --workers for serving processes and renames the
    # shard-build parallelism flag to --build-workers.
    build_workers = (
        arguments.build_workers
        if hasattr(arguments, "build_workers")
        else arguments.workers
    )
    return build_index(
        source,
        arguments.z,
        kind=arguments.kind or "MWSA",
        ell=arguments.ell,
        shards=arguments.shards,
        workers=build_workers,
        max_pattern_len=arguments.max_pattern_len,
    )


#: Build options that contradict --store on the query sub-commands: a stored
#: index already fixes its source, threshold and construction parameters.
_BUILD_OPTIONS = (
    "dataset", "pwm", "length", "z", "ell", "kind", "shards", "workers",
    "max_pattern_len",
)


def _check_store_conflicts(arguments) -> None:
    """Reject build options alongside --store (the store fixes them all)."""
    names = [
        "build_workers"
        if name == "workers" and hasattr(arguments, "build_workers")
        else name
        for name in _BUILD_OPTIONS
    ]
    conflicting = [
        f"--{name.replace('_', '-')}"
        for name in names
        if getattr(arguments, name) is not None
    ]
    if conflicting:
        raise ReproError(
            f"--store loads a saved index; it cannot be combined with "
            f"build options ({', '.join(conflicting)})"
        )


def _load_store(path, *, mmap: bool = True):
    """Load a store path: a single-index file or a sharded store directory.

    ``mmap=False`` reads everything into RAM — required when the caller will
    rewrite the same file (writing over a live memory map is undefined).
    """
    if Path(path).is_dir():
        return load_sharded_store(path, mmap=mmap)
    return load_index(path, mmap=mmap)


def _obtain_index(arguments):
    """The index to query: reloaded from a store file, or built on the spot."""
    if arguments.store:
        _check_store_conflicts(arguments)
        return _load_store(arguments.store)
    return _build_index(arguments)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-uncertain`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-uncertain",
        description="Space-efficient indexes for uncertain (weighted) strings.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a dataset (Table 2 columns)")
    info.add_argument("--dataset", choices=sorted(DATASETS), help="named synthetic dataset")
    info.add_argument("--pwm", help="position-weight-matrix file to describe")
    info.add_argument("--length", type=int, help="override the dataset length")

    def add_build_arguments(
        sub, *, source_required: bool = True, build_workers_flag: bool = False
    ) -> None:
        group = sub.add_mutually_exclusive_group(required=source_required)
        group.add_argument("--dataset", choices=sorted(DATASETS), help="named synthetic dataset")
        group.add_argument("--pwm", help="position-weight-matrix file to index")
        sub.add_argument("--length", type=int, help="override the dataset length")
        sub.add_argument(
            "--z", type=float, required=source_required, help="threshold parameter (1/z)"
        )
        sub.add_argument("--ell", type=int, help="minimum pattern length (minimizer indexes)")
        sub.add_argument(
            "--kind",
            choices=sorted(INDEX_CLASSES),
            help="index kind to build (default: MWSA)",
        )
        sub.add_argument(
            "--shards", type=int, help="build a sharded index over this many chunks"
        )
        # serve-http uses --workers for serving processes, so its shard-build
        # parallelism flag is spelled --build-workers there.
        sub.add_argument(
            "--build-workers" if build_workers_flag else "--workers",
            dest="build_workers" if build_workers_flag else "workers",
            type=int,
            help="parallel shard-build processes (with --shards)",
        )
        sub.add_argument(
            "--max-pattern-len",
            type=int,
            help="largest query length a sharded index must support "
            "(sets the shard overlap; default: 2*ell)",
        )

    def add_query_mode_arguments(sub) -> None:
        sub.add_argument(
            "--mode",
            choices=[mode.value for mode in QueryMode],
            help="query mode (default: locate)",
        )
        sub.add_argument(
            "--topk", type=int, metavar="K",
            help="report the K most probable occurrences (implies --mode topk)",
        )
        sub.add_argument(
            "--probs", action="store_true",
            help="report occurrence probabilities (implies --mode locate_probs)",
        )
        sub.add_argument(
            "--json", action="store_true",
            help="machine-readable output: positions, probabilities, timing, "
            "planner statistics (stable schema)",
        )

    build = subparsers.add_parser("build", help="build an index and print its statistics")
    add_build_arguments(build)
    build.add_argument(
        "--store", help="save the built index to this binary index-store file"
    )
    build.add_argument(
        "--store-dir",
        help="save a sharded index as a directory store (one file per shard; "
        "enables dirty-shard refresh after updates)",
    )
    build.add_argument(
        "--json", action="store_true",
        help="machine-readable output (schema repro.build.v1): construction "
        "wall-time, measured peak memory (tracemalloc + RSS high-water "
        "mark), index statistics and store timings",
    )

    query = subparsers.add_parser(
        "query", help="answer patterns (building the index or loading it from a store)"
    )
    add_build_arguments(query, source_required=False)
    query.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    add_query_mode_arguments(query)
    query.add_argument("patterns", nargs="+", help="patterns to locate (text over the alphabet)")

    batch = subparsers.add_parser(
        "query-batch",
        help="answer a pattern batch through the vectorised query planner",
    )
    add_build_arguments(batch, source_required=False)
    batch.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    add_query_mode_arguments(batch)
    batch.add_argument(
        "--patterns-file",
        help="file with one pattern per line (text over the alphabet)",
    )
    batch.add_argument(
        "--no-occurrences",
        action="store_true",
        help="report only counts and throughput, not the occurrence lists",
    )
    batch.add_argument(
        "patterns", nargs="*", help="patterns to locate (text over the alphabet)"
    )

    update = subparsers.add_parser(
        "update",
        help="apply point updates to a stored index (dirty shards only for "
        "directory stores)",
    )
    update.add_argument(
        "--store", required=True,
        help="index store to update: a single-index file or a sharded "
        "store directory",
    )
    update.add_argument(
        "--updates-file", help="JSON file with the update list"
    )
    update.add_argument(
        "--updates",
        help='inline JSON update list, e.g. '
        '\'[{"position": 3, "distribution": {"A": 0.7, "C": 0.3}}]\'',
    )
    update.add_argument(
        "--out",
        help="write the updated index here instead of back to --store "
        "(single-file stores only)",
    )

    compact = subparsers.add_parser(
        "compact",
        help="fold a sharded directory store back to canonical shard files "
        "(drops generation-stamped files, truncates the update log)",
    )
    compact.add_argument(
        "--store", required=True, help="sharded store directory to compact"
    )
    compact.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )

    verify = subparsers.add_parser(
        "verify-store",
        help="audit a store (file or directory) without modifying it: "
        "checksums, torn WAL tails, unapplied updates, temp leftovers",
    )
    verify.add_argument(
        "--store", required=True,
        help="index store to audit: a single-index file or a sharded "
        "store directory",
    )

    recover = subparsers.add_parser(
        "recover",
        help="bring a crashed directory store back to a consistent state "
        "(sweep temp files, truncate torn WAL tails, quarantine corrupt "
        "shards, replay committed updates)",
    )
    recover.add_argument(
        "--store", required=True,
        help="sharded store directory to recover (single-file stores are "
        "verified only: atomic writes leave them old-or-new, never torn)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="line-oriented JSON query loop over stdin/stdout (cached serving)",
    )
    add_build_arguments(serve, source_required=False)
    serve.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    serve.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU result-cache capacity (default: 1024 results)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )

    serve_http = subparsers.add_parser(
        "serve-http",
        help="asyncio HTTP/1.1 JSON API over a cached QueryService "
        "(micro-batching, rate limiting, load shedding, /metrics)",
    )
    add_build_arguments(serve_http, source_required=False, build_workers_flag=True)
    serve_http.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    serve_http.add_argument(
        "--workers", type=int, default=1,
        help="serving worker processes over one shared memory-mapped store "
        "(default: 1 = in-process serving, no fork)",
    )
    serve_http.add_argument(
        "--cache-size", type=int, default=1024,
        help="LRU result-cache capacity (default: 1024 results)",
    )
    serve_http.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve_http.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_http.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks an ephemeral port; default: 8765)",
    )
    serve_http.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batch collection window in milliseconds (default: 2)",
    )
    serve_http.add_argument(
        "--max-batch", type=int, default=64,
        help="most requests coalesced into one execution (default: 64)",
    )
    serve_http.add_argument(
        "--no-batching", action="store_true",
        help="answer each request individually (the baseline mode)",
    )
    serve_http.add_argument(
        "--queue-limit", type=int, default=256,
        help="admitted-request ceiling; beyond it requests are shed with "
        "HTTP 429 (default: 256)",
    )
    serve_http.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client token-bucket rate in requests/second (0 disables)",
    )
    serve_http.add_argument(
        "--burst", type=float,
        help="token-bucket burst capacity (default: the rate)",
    )
    serve_http.add_argument(
        "--request-timeout", type=float, default=10.0,
        help="per-request execution budget in seconds (default: 10)",
    )
    serve_http.add_argument(
        "--warm-log", metavar="FILE",
        help="warm the result cache from this pattern log before accepting "
        "traffic (one pattern per line, or JSON lines with a 'pattern' field)",
    )
    serve_http.add_argument(
        "--warm-top", type=int, metavar="K",
        help="warm at most the K most frequent patterns of --warm-log "
        "(default: the cache capacity)",
    )
    serve_http.add_argument(
        "--tenant-class", action="append", metavar="NAME=RATE[:BURST]",
        help="per-tenant quota class for the X-Tenant header (repeatable; "
        "class 'default' covers unknown tenants; RATE 0 = unlimited)",
    )

    return parser


def _command_info(arguments) -> dict:
    if arguments.pwm:
        source = read_pwm(arguments.pwm)
        return {
            "name": arguments.pwm,
            "length": len(source),
            "sigma": source.sigma,
            "delta_percent": 100.0 * source.delta,
        }
    if not arguments.dataset:
        raise ReproError("either --pwm FILE or --dataset NAME must be given")
    return dataset_characteristics(arguments.dataset, arguments.length)


def _command_build(arguments) -> dict:
    machine = getattr(arguments, "json", False)
    if machine:
        from ._kernels import collect_stages

        # --json is the measured report: run the build under tracemalloc so
        # the schema carries an exact Python-side peak, not just the
        # space-model accounting.  Stage timers are drained first so the
        # report covers only this build.
        collect_stages()
        tracemalloc.start()
    started = time.perf_counter()
    index = _build_index(arguments)
    wall_seconds = time.perf_counter() - started
    tracemalloc_peak = None
    if machine:
        _, tracemalloc_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    report = index.stats.as_dict()
    store_report: dict = {}
    if arguments.store:
        started = time.perf_counter()
        save_index(arguments.store, index)
        store_report["store"] = arguments.store
        store_report["store_seconds"] = time.perf_counter() - started
    if arguments.store_dir:
        from .indexes.sharded import ShardedIndex

        if not isinstance(index, ShardedIndex):
            raise ReproError("--store-dir needs a sharded build (use --shards)")
        started = time.perf_counter()
        save_sharded_store(arguments.store_dir, index)
        store_report["store_dir"] = arguments.store_dir
        store_report["store_dir_seconds"] = time.perf_counter() - started
    if machine:
        from ._kernels import collect_stages, engine
        from .bench.measure import peak_rss_bytes

        return {
            "schema": "repro.build.v1",
            "build": {
                "wall_seconds": wall_seconds,
                "tracemalloc_peak_bytes": tracemalloc_peak,
                "peak_rss_bytes": peak_rss_bytes(),
                "engine": engine(),
                "stages": collect_stages(),
            },
            "index": report,
            **store_report,
        }
    report.update(store_report)
    return report


#: Normalize a JSON update list (shared with the HTTP API's /update route).
_parse_updates = parse_updates


def _command_update(arguments) -> dict:
    if bool(arguments.updates_file) == bool(arguments.updates):
        raise ReproError("give exactly one of --updates-file or --updates")
    if arguments.updates_file:
        try:
            with open(arguments.updates_file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ReproError(f"cannot read updates file: {error}") from error
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid updates JSON: {error}") from error
    else:
        try:
            payload = json.loads(arguments.updates)
        except json.JSONDecodeError as error:
            raise ReproError(f"invalid updates JSON: {error}") from error
    updates = _parse_updates(payload)
    store_path = Path(arguments.store)
    sharded_dir = store_path.is_dir()
    if sharded_dir and arguments.out:
        raise ReproError(
            "--out applies to single-file stores; directory stores are "
            "refreshed in place (dirty shards only)"
        )
    # Read into RAM: the command rewrites store files it just loaded, which
    # must not race live memory maps of those same files.
    index = _load_store(arguments.store, mmap=False)
    started = time.perf_counter()
    if sharded_dir:
        # WAL-first durable path: commit the batch before rewriting shards,
        # so a crash at any point is rolled forward by ``recover``.
        update_report, outcome, _wal_start = apply_updates_durably(
            arguments.store, index, updates
        )
        report = update_report.as_dict()
        report["store"] = outcome
        report["store"]["path"] = arguments.store
        append_update_log(
            arguments.store,
            {
                "time": time.time(),
                "positions": report["positions"],
                "strategy": report["strategy"],
                "generations": index.generations,
                "rewritten": report["store"]["rewritten"],
            },
        )
    else:
        report = index.apply_updates(updates).as_dict()
        target = arguments.out or arguments.store
        save_index(target, index)
        report["store"] = {"path": target, "rewritten": "all"}
    report["store"]["seconds"] = time.perf_counter() - started
    return report


def _command_compact(arguments) -> dict:
    store_path = Path(arguments.store)
    if not store_path.is_dir():
        raise ReproError(
            "compact works on sharded directory stores; single-file stores "
            "have nothing to compact"
        )
    started = time.perf_counter()
    report = compact_store(store_path)
    report["path"] = arguments.store
    report["seconds"] = time.perf_counter() - started
    return report


def _command_verify_store(arguments) -> dict:
    report = verify_store(arguments.store)
    if not report["ok"]:
        # Print the full report before signalling failure so scripts can
        # both gate on the exit code and parse the damage list.
        print(json.dumps(report, indent=2, default=str))
        count = len(report["problems"])
        raise ReproError(
            f"store {arguments.store} failed verification "
            f"({count} problem{'s' if count != 1 else ''}; run `recover`)"
        )
    return report


def _command_recover(arguments) -> dict:
    store_path = Path(arguments.store)
    started = time.perf_counter()
    if not store_path.is_dir():
        # A single-file store written atomically is old-or-new, never torn;
        # recovery reduces to a verification pass.
        report = verify_store(store_path)
        if not report["ok"]:
            print(json.dumps(report, indent=2, default=str))
            raise ReproError(
                f"store {arguments.store} is corrupt and single-file stores "
                "have no WAL to roll forward; rebuild it from the source"
            )
        return {
            "schema": "repro.recover.v1",
            "path": arguments.store,
            "status": "clean",
            "seconds": time.perf_counter() - started,
        }
    _index, report = recover_sharded_store(store_path)
    report["schema"] = "repro.recover.v1"
    report["path"] = arguments.store
    report["seconds"] = time.perf_counter() - started
    return report


def _resolve_query_mode(arguments) -> tuple[str, int | None]:
    """The effective query mode and k from --mode / --topk / --probs."""
    mode = arguments.mode
    k = arguments.topk
    if k is not None:
        if mode not in (None, "topk"):
            raise ReproError(f"--topk cannot be combined with --mode {mode}")
        mode = "topk"
    elif mode == "topk":
        raise ReproError("--mode topk needs --topk K")
    if arguments.probs:
        if mode not in (None, "locate", "locate_probs"):
            raise ReproError(f"--probs cannot be combined with --mode {mode}")
        mode = "locate_probs"
    return mode or "locate", k


def _machine_report(index, mode: str, results, elapsed: float, **extra) -> dict:
    """The stable --json schema shared by ``query`` and ``query-batch``."""
    report = {
        "schema": "repro.query.v1",
        "mode": mode,
        "elapsed_seconds": elapsed,
        "index": {
            "name": index.stats.name,
            "z": index.z,
            "length": len(index.source),
        },
        "results": [result.as_dict() for result in results],
    }
    report.update(extra)
    return report


def _command_query(arguments) -> dict:
    index = _obtain_index(arguments)
    mode, k = _resolve_query_mode(arguments)
    queries = [Query(pattern, mode=mode, k=k) for pattern in arguments.patterns]
    started = time.perf_counter()
    results = index.query_many(queries)
    elapsed = time.perf_counter() - started
    if arguments.json:
        return _machine_report(index, mode, results, elapsed)
    report = {"index": index.stats.as_dict()}
    if mode == "locate":
        report["occurrences"] = {
            pattern: result.positions
            for pattern, result in zip(arguments.patterns, results)
        }
    else:
        report["mode"] = mode
        report["results"] = {
            pattern: result.as_dict()
            for pattern, result in zip(arguments.patterns, results)
        }
    return report


def _command_query_batch(arguments) -> dict:
    patterns = list(arguments.patterns)
    if arguments.patterns_file:
        try:
            with open(arguments.patterns_file, "r", encoding="utf-8") as handle:
                patterns.extend(line.strip() for line in handle if line.strip())
        except OSError as error:
            raise ReproError(f"cannot read patterns file: {error}") from error
    if not patterns:
        raise ReproError("no patterns given (positional or --patterns-file)")
    index = _obtain_index(arguments)
    mode, k = _resolve_query_mode(arguments)
    planner = QueryPlanner(index)
    started = time.perf_counter()
    results = planner.execute([Query(pattern, mode=mode, k=k) for pattern in patterns])
    elapsed = time.perf_counter() - started
    stats = planner.last_stats
    throughput = {
        "patterns": stats.get("patterns", len(patterns)),
        "unique_patterns": stats.get("unique_patterns", len(patterns)),
        "strategy": stats.get("strategy"),
        "total_occurrences": sum(result.count or 0 for result in results),
        "elapsed_seconds": elapsed,
        "patterns_per_second": len(patterns) / elapsed if elapsed > 0 else None,
    }
    if arguments.json:
        return _machine_report(index, mode, results, elapsed, **throughput)
    report = {"index": index.stats.as_dict(), **throughput}
    if not arguments.no_occurrences:
        if mode == "locate":
            report["occurrences"] = {
                pattern: result.positions
                for pattern, result in zip(patterns, results)
            }
        else:
            report["mode"] = mode
            report["results"] = {
                pattern: result.as_dict()
                for pattern, result in zip(patterns, results)
            }
    return report


def _serve_request(service: QueryService, line: str) -> dict:
    """Answer one line of the serve protocol (never raises for bad requests)."""
    try:
        if line == "stats":
            return {"stats": service.stats()}
        if line.startswith("{"):
            try:
                request = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(f"invalid JSON request: {error}") from error
            if not isinstance(request, dict):
                raise ReproError("a JSON request must be an object")
            if request.get("cmd") == "stats":
                return {"stats": service.stats()}
            if request.get("cmd") == "update":
                if "pattern" in request:
                    raise ReproError(
                        "an update request cannot also carry a 'pattern'; "
                        "send the query as its own line"
                    )
                return {"update": service.update(_parse_updates(request.get("updates")))}
            if "updates" in request:
                # Mutation must be explicit: a stray 'updates' field on a
                # query request must not silently rewrite the index.
                raise ReproError(
                    "updates need an explicit '\"cmd\": \"update\"' request"
                )
            query = query_from_payload(request)
        else:
            query = Query(line)
        started = time.perf_counter()
        # Per-request provenance, not a global hit-counter delta: a delta of
        # service.hits misattributes hits as soon as two requests are in
        # flight (the HTTP layer's normal operating mode).
        results, origins = service.query_many([query], provenance=True)
        micros = 1e6 * (time.perf_counter() - started)
        response = results[0].as_dict()
        response["cached"] = origins[0] != "miss"
        response["micros"] = round(micros, 3)
        return response
    except (ReproError, TypeError, ValueError) as error:
        # TypeError/ValueError cover structurally broken requests (wrong
        # field types, unhashable patterns): a serving loop must survive any
        # input line, not just well-typed-but-invalid ones.
        return {"error": str(error), "request": line}


def _command_serve(arguments) -> None:
    """The stdin/stdout serving loop (one JSON response line per request line).

    Protocol: a bare line is a ``locate`` query for that pattern; a JSON
    object line may carry ``pattern`` / ``mode`` / ``k`` / ``z`` / ``zs``
    fields (or ``{"cmd": "stats"}``); the literal line ``stats`` reports the
    service counters.  ``{"cmd": "update", "updates": [{"position": ...,
    "distribution": {...}}]}`` applies point updates through the service —
    the index repairs itself (dirty shards / localized leaf re-derivation)
    and exactly the affected cache entries are invalidated.  Malformed
    requests produce an ``{"error": ...}`` line and the loop continues.  On
    end of input a final ``{"stats": ...}`` line is emitted.
    """
    index = _obtain_index(arguments)
    service = QueryService(
        index,
        cache_size=arguments.cache_size,
        cache_enabled=not arguments.no_cache,
    )
    stdout = sys.stdout

    def emit(payload) -> bool:
        """Write and flush one response line; False when the pipe is gone.

        A downstream consumer that exits early (``head``, a crashed client)
        closes our stdout: the loop must stop cleanly (exit code 0), not
        traceback on ``BrokenPipeError`` / a closed file.
        """
        try:
            stdout.write(json.dumps(payload) + "\n")
            stdout.flush()
            return True
        except (BrokenPipeError, ValueError):
            return False

    for raw in sys.stdin:
        line = raw.strip()
        if not line:
            continue
        if not emit(_serve_request(service, line)):
            _silence_broken_stdout()
            return None  # skip the final stats line: nobody is reading
    emit({"stats": service.stats()})
    return None


class _StartupTerminated(Exception):
    """SIGTERM/SIGINT arrived while serve-http was still starting up."""


def _parse_tenant_classes(specs) -> dict | None:
    """``NAME=RATE[:BURST]`` specs → ``{name: (rate, burst)}`` quota classes."""
    if not specs:
        return None
    classes: dict[str, tuple[float, float]] = {}
    for spec in specs:
        name, separator, tail = spec.partition("=")
        name = name.strip()
        if not name or not separator:
            raise ReproError(
                f"invalid --tenant-class {spec!r} (expected NAME=RATE[:BURST])"
            )
        rate_text, _, burst_text = tail.partition(":")
        try:
            rate = float(rate_text)
            burst = float(burst_text) if burst_text else max(1.0, rate)
        except ValueError as error:
            raise ReproError(f"invalid --tenant-class {spec!r}: {error}") from error
        classes[name] = (rate, burst)
    return classes


def _load_warm_patterns(path) -> list:
    """Patterns from a warm log: bare lines, or JSON lines with a pattern.

    A JSON object line contributes its ``"pattern"`` field (the shape access
    logs capture); a JSON array line is a list-form weighted pattern.  A warm
    log is advisory, so malformed JSON lines are skipped, not fatal.
    """
    patterns: list = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line[0] in "[{":
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(payload, dict):
                        payload = payload.get("pattern")
                    if payload is not None:
                        patterns.append(payload)
                else:
                    patterns.append(line)
    except OSError as error:
        raise ReproError(f"cannot read warm log: {error}") from error
    return patterns


def _serve_http_cluster(arguments, tenant_classes, warm_patterns, ready) -> None:
    """The prefork multi-worker path of ``serve-http`` (``--workers > 1``).

    The supervisor needs a store on disk that every worker can memory-map:
    ``--store`` is used as-is; otherwise the index is built once here, saved
    to a temporary store, and the temporary files are removed on exit.
    """
    import shutil
    import tempfile

    from .service.supervisor import Supervisor

    temp_dir = None
    try:
        if arguments.store:
            _check_store_conflicts(arguments)
            store_path = arguments.store
        else:
            index = _build_index(arguments)
            temp_dir = tempfile.mkdtemp(prefix="repro-serve-")
            from .indexes.sharded import ShardedIndex

            if isinstance(index, ShardedIndex):
                store_path = os.path.join(temp_dir, "store")
                save_sharded_store(store_path, index)
            else:
                store_path = os.path.join(temp_dir, "index.store")
                save_index(store_path, index)
            # The supervisor reloads from the store (mmap) so workers share
            # pages; the built copy would only double the supervisor's RSS.
            del index
        supervisor = Supervisor(
            store_path,
            workers=arguments.workers,
            host=arguments.host,
            port=arguments.port,
            service_options={
                "cache_size": arguments.cache_size,
                "cache_enabled": not arguments.no_cache,
            },
            server_options={
                "batch_window": arguments.batch_window_ms / 1000.0,
                "max_batch": arguments.max_batch,
                "batching": not arguments.no_batching,
                "queue_limit": arguments.queue_limit,
                "rate": arguments.rate_limit,
                "burst": arguments.burst,
                "request_timeout": arguments.request_timeout,
                "tenant_classes": tenant_classes,
            },
            warm_patterns=warm_patterns,
            warm_top=arguments.warm_top,
            ready=ready,
        )
        status = supervisor.run()
        if status:
            raise SystemExit(status)
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    return None


def _command_serve_http(arguments) -> None:
    """The asyncio HTTP serving loop (see :mod:`repro.service.server`).

    Prints one ``serving on http://host:port`` line once the socket is
    bound (the CI smoke test waits for it), then serves until SIGINT /
    SIGTERM; shutdown flushes the pending micro-batch and drains in-flight
    requests before exiting.  ``--workers N`` (N > 1) switches to the
    prefork supervisor of :mod:`repro.service.supervisor`: one process binds
    the socket and owns the store, N forked workers memory-map it and serve.
    """
    import asyncio
    import signal

    from .service.server import run_server

    tenant_classes = _parse_tenant_classes(arguments.tenant_class)
    warm_patterns = (
        _load_warm_patterns(arguments.warm_log) if arguments.warm_log else None
    )

    def ready(host: str, port: int) -> None:
        print(f"serving on http://{host}:{port}", flush=True)

    # Index loading can take a while; a SIGTERM/SIGINT that lands before the
    # event loop (or the supervisor) installs its own handlers must still
    # exit 0 cleanly.  Install raising handlers for the whole startup window
    # and translate them into a quiet return.
    def _terminated(signum, frame):
        raise _StartupTerminated

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _terminated)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass

    try:
        if arguments.workers and arguments.workers > 1:
            return _serve_http_cluster(arguments, tenant_classes, warm_patterns, ready)
        index = _obtain_index(arguments)
        service = QueryService(
            index,
            cache_size=arguments.cache_size,
            cache_enabled=not arguments.no_cache,
        )
        if warm_patterns:
            service.warm(warm_patterns, top=arguments.warm_top)
        asyncio.run(
            run_server(
                service,
                host=arguments.host,
                port=arguments.port,
                ready=ready,
                batch_window=arguments.batch_window_ms / 1000.0,
                max_batch=arguments.max_batch,
                batching=not arguments.no_batching,
                queue_limit=arguments.queue_limit,
                rate=arguments.rate_limit,
                burst=arguments.burst,
                request_timeout=arguments.request_timeout,
                tenant_classes=tenant_classes,
            )
        )
    except (KeyboardInterrupt, _StartupTerminated):
        pass  # terminated during startup or serving: a clean exit, not an error
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass
    return None


def _silence_broken_stdout() -> None:
    """Point the broken stdout at devnull so interpreter exit stays quiet.

    CPython flushes ``sys.stdout`` during shutdown; after a broken pipe that
    flush would print an ignored-exception message and flip the exit status.
    """
    try:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    except (OSError, ValueError, AttributeError):
        pass  # stdout is not a real file descriptor (tests, embedding)


def main(argv=None) -> int:
    """Entry point of the ``repro-uncertain`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "info": _command_info,
        "build": _command_build,
        "query": _command_query,
        "query-batch": _command_query_batch,
        "update": _command_update,
        "compact": _command_compact,
        "verify-store": _command_verify_store,
        "recover": _command_recover,
        "serve": _command_serve,
        "serve-http": _command_serve_http,
    }
    try:
        result = handlers[arguments.command](arguments)
    except PatternError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if result is not None:
        print(json.dumps(result, indent=2, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
