"""Command-line interface: build indexes, run queries, inspect datasets.

Installed as the ``repro-uncertain`` console script.  Four sub-commands:

* ``info``        — Table 2-style characteristics of a named or PWM-file dataset;
* ``build``       — build an index (optionally sharded via ``--shards`` /
  ``--workers``) and report its statistics; ``--store FILE`` saves the built
  index to the binary index store;
* ``query``       — locate patterns; the index is either built on the spot or
  reloaded from a store file with ``--store`` (no rebuild);
* ``query-batch`` — answer a whole pattern batch through the vectorised
  batch engine (fanning out across shards for sharded indexes) and report
  throughput alongside the occurrences.

The CLI is intentionally small: it exposes the library's public API for shell
pipelines and smoke tests; programmatic users should import :mod:`repro`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .core.weighted_string import WeightedString
from .datasets.registry import DATASETS, dataset_characteristics, load_dataset
from .errors import ReproError
from .indexes import INDEX_CLASSES, BatchQueryEngine, build_index
from .io.pwm import read_pwm
from .io.store import load_index, save_index

__all__ = ["main", "build_parser"]


def _load_source(arguments) -> WeightedString:
    if arguments.pwm:
        return read_pwm(arguments.pwm)
    if arguments.dataset:
        return load_dataset(arguments.dataset, arguments.length)
    raise ReproError("either --pwm FILE or --dataset NAME must be given")


def _build_index(arguments):
    """Build the index a sub-command asked for (sharded when --shards is given)."""
    source = _load_source(arguments)
    if arguments.z is None:
        raise ReproError("--z is required when building an index")
    return build_index(
        source,
        arguments.z,
        kind=arguments.kind or "MWSA",
        ell=arguments.ell,
        shards=arguments.shards,
        workers=arguments.workers,
        max_pattern_len=arguments.max_pattern_len,
    )


#: Build options that contradict --store on the query sub-commands: a stored
#: index already fixes its source, threshold and construction parameters.
_BUILD_OPTIONS = (
    "dataset", "pwm", "length", "z", "ell", "kind", "shards", "workers",
    "max_pattern_len",
)


def _obtain_index(arguments):
    """The index to query: reloaded from a store file, or built on the spot."""
    if arguments.store:
        conflicting = [
            f"--{name.replace('_', '-')}"
            for name in _BUILD_OPTIONS
            if getattr(arguments, name) is not None
        ]
        if conflicting:
            raise ReproError(
                f"--store loads a saved index; it cannot be combined with "
                f"build options ({', '.join(conflicting)})"
            )
        return load_index(arguments.store)
    return _build_index(arguments)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``repro-uncertain`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-uncertain",
        description="Space-efficient indexes for uncertain (weighted) strings.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="describe a dataset (Table 2 columns)")
    info.add_argument("--dataset", choices=sorted(DATASETS), help="named synthetic dataset")
    info.add_argument("--pwm", help="position-weight-matrix file to describe")
    info.add_argument("--length", type=int, help="override the dataset length")

    def add_build_arguments(sub, *, source_required: bool = True) -> None:
        group = sub.add_mutually_exclusive_group(required=source_required)
        group.add_argument("--dataset", choices=sorted(DATASETS), help="named synthetic dataset")
        group.add_argument("--pwm", help="position-weight-matrix file to index")
        sub.add_argument("--length", type=int, help="override the dataset length")
        sub.add_argument(
            "--z", type=float, required=source_required, help="threshold parameter (1/z)"
        )
        sub.add_argument("--ell", type=int, help="minimum pattern length (minimizer indexes)")
        sub.add_argument(
            "--kind",
            choices=sorted(INDEX_CLASSES),
            help="index kind to build (default: MWSA)",
        )
        sub.add_argument(
            "--shards", type=int, help="build a sharded index over this many chunks"
        )
        sub.add_argument(
            "--workers", type=int, help="parallel shard-build processes (with --shards)"
        )
        sub.add_argument(
            "--max-pattern-len",
            type=int,
            help="largest query length a sharded index must support "
            "(sets the shard overlap; default: 2*ell)",
        )

    build = subparsers.add_parser("build", help="build an index and print its statistics")
    add_build_arguments(build)
    build.add_argument(
        "--store", help="save the built index to this binary index-store file"
    )

    query = subparsers.add_parser(
        "query", help="locate patterns (building the index or loading it from a store)"
    )
    add_build_arguments(query, source_required=False)
    query.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    query.add_argument("patterns", nargs="+", help="patterns to locate (text over the alphabet)")

    batch = subparsers.add_parser(
        "query-batch",
        help="answer a pattern batch through the vectorised engine",
    )
    add_build_arguments(batch, source_required=False)
    batch.add_argument(
        "--store", help="load the index from this store file instead of building"
    )
    batch.add_argument(
        "--patterns-file",
        help="file with one pattern per line (text over the alphabet)",
    )
    batch.add_argument(
        "--no-occurrences",
        action="store_true",
        help="report only counts and throughput, not the occurrence lists",
    )
    batch.add_argument(
        "patterns", nargs="*", help="patterns to locate (text over the alphabet)"
    )

    return parser


def _command_info(arguments) -> dict:
    if arguments.pwm:
        source = read_pwm(arguments.pwm)
        return {
            "name": arguments.pwm,
            "length": len(source),
            "sigma": source.sigma,
            "delta_percent": 100.0 * source.delta,
        }
    if not arguments.dataset:
        raise ReproError("either --pwm FILE or --dataset NAME must be given")
    return dataset_characteristics(arguments.dataset, arguments.length)


def _command_build(arguments) -> dict:
    index = _build_index(arguments)
    report = index.stats.as_dict()
    if arguments.store:
        started = time.perf_counter()
        save_index(arguments.store, index)
        report["store"] = arguments.store
        report["store_seconds"] = time.perf_counter() - started
    return report


def _command_query(arguments) -> dict:
    index = _obtain_index(arguments)
    occurrences = {pattern: index.locate(pattern) for pattern in arguments.patterns}
    return {"index": index.stats.as_dict(), "occurrences": occurrences}


def _command_query_batch(arguments) -> dict:
    patterns = list(arguments.patterns)
    if arguments.patterns_file:
        try:
            with open(arguments.patterns_file, "r", encoding="utf-8") as handle:
                patterns.extend(line.strip() for line in handle if line.strip())
        except OSError as error:
            raise ReproError(f"cannot read patterns file: {error}") from error
    if not patterns:
        raise ReproError("no patterns given (positional or --patterns-file)")
    index = _obtain_index(arguments)
    engine = BatchQueryEngine(index)
    started = time.perf_counter()
    results = engine.match_many(patterns)
    elapsed = time.perf_counter() - started
    report = {
        "index": index.stats.as_dict(),
        "patterns": engine.last_stats.get("patterns", len(patterns)),
        "unique_patterns": engine.last_stats.get("unique_patterns", len(patterns)),
        "total_occurrences": sum(len(result) for result in results),
        "elapsed_seconds": elapsed,
        "patterns_per_second": len(patterns) / elapsed if elapsed > 0 else None,
    }
    if not arguments.no_occurrences:
        report["occurrences"] = {
            pattern: result for pattern, result in zip(patterns, results)
        }
    return report


def main(argv=None) -> int:
    """Entry point of the ``repro-uncertain`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handlers = {
        "info": _command_info,
        "build": _command_build,
        "query": _command_query,
        "query-batch": _command_query_batch,
    }
    try:
        result = handlers[arguments.command](arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
