"""Suffix arrays for code sequences (prefix doubling, numpy-accelerated).

The suffix array is the array-based workhorse of the paper's baselines: the
weighted suffix array (WSA) is, in essence, a generalised suffix array over
the z-estimation plus per-entry valid lengths.  The construction below is the
classic prefix-doubling algorithm (O(n log n)), fully vectorised with numpy
so that it is practical for the concatenations the benchmarks build.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "suffix_array",
    "rank_array",
    "generalized_suffix_array",
    "suffix_array_interval",
]


def suffix_array(codes: Sequence[int]) -> np.ndarray:
    """Return the suffix array of ``codes`` (indices of suffixes in sorted order).

    Codes may be any non-negative integers; ties beyond the end of the string
    are resolved by treating "past the end" as smaller than every letter,
    which matches the usual convention of a unique smallest terminator.
    """
    text = np.asarray(codes, dtype=np.int64)
    n = len(text)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    # Initial ranks: the codes themselves (compressed to a dense range).
    order = np.argsort(text, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    sorted_codes = text[order]
    ranks[order] = np.cumsum(np.concatenate([[0], sorted_codes[1:] != sorted_codes[:-1]]))
    step = 1
    indices = np.arange(n, dtype=np.int64)
    while step < n:
        # Rank of the suffix starting `step` positions later (-1 = past the end).
        second = np.full(n, -1, dtype=np.int64)
        second[: n - step] = ranks[step:]
        keys = ranks * (n + 1) + (second + 1)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        new_ranks = np.empty(n, dtype=np.int64)
        new_ranks[order] = np.cumsum(
            np.concatenate([[0], sorted_keys[1:] != sorted_keys[:-1]])
        )
        ranks = new_ranks
        if ranks[order[-1]] == n - 1:
            break
        step *= 2
    result = np.empty(n, dtype=np.int64)
    result[ranks] = indices
    return result


def rank_array(sa: np.ndarray) -> np.ndarray:
    """Inverse permutation of a suffix array (suffix start → rank)."""
    ranks = np.empty(len(sa), dtype=np.int64)
    ranks[sa] = np.arange(len(sa), dtype=np.int64)
    return ranks


def generalized_suffix_array(
    strings: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Suffix array of the concatenation of several code strings.

    The strings are concatenated with a separator smaller than every letter
    (letters are shifted up by one).  Returns ``(text, sa, which, offset)``
    where ``text`` is the shifted concatenation, ``sa`` its suffix array, and
    ``which[p]`` / ``offset[p]`` map a concatenation position back to the
    originating string index and the position inside it (separator positions
    map to ``which = -1``).
    """
    pieces = []
    which_pieces = []
    offset_pieces = []
    for index, codes in enumerate(strings):
        codes = np.asarray(codes, dtype=np.int64)
        pieces.append(codes + 1)
        pieces.append(np.zeros(1, dtype=np.int64))
        which_pieces.append(np.full(len(codes), index, dtype=np.int64))
        which_pieces.append(np.full(1, -1, dtype=np.int64))
        offset_pieces.append(np.arange(len(codes), dtype=np.int64))
        offset_pieces.append(np.full(1, -1, dtype=np.int64))
    if not pieces:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    text = np.concatenate(pieces)
    which = np.concatenate(which_pieces)
    offset = np.concatenate(offset_pieces)
    return text, suffix_array(text), which, offset


def _compare_pattern(pattern: np.ndarray, text: np.ndarray, start: int) -> int:
    """Compare ``pattern`` with the suffix of ``text`` at ``start``.

    Returns -1/0/+1 with the convention that a suffix that is a proper prefix
    of the pattern is smaller than the pattern.
    """
    n = len(text)
    m = len(pattern)
    length = min(m, n - start)
    window = text[start : start + length]
    prefix = pattern[:length]
    diffs = np.nonzero(window != prefix)[0]
    if len(diffs):
        position = diffs[0]
        return -1 if pattern[position] > window[position] else 1
    if length < m:
        return -1  # suffix ran out first: suffix < pattern
    return 0


def suffix_array_interval(
    text: Sequence[int], sa: np.ndarray, pattern: Sequence[int]
) -> tuple[int, int]:
    """The half-open SA interval of suffixes starting with ``pattern``.

    Standard binary search in O(m log n); returns ``(lo, hi)`` with
    ``lo == hi`` when the pattern does not occur.
    """
    text = np.asarray(text, dtype=np.int64)
    pattern = np.asarray(pattern, dtype=np.int64)
    if len(pattern) == 0:
        return 0, len(sa)

    def lower_bound() -> int:
        lo, hi = 0, len(sa)
        while lo < hi:
            mid = (lo + hi) // 2
            if _compare_pattern(pattern, text, int(sa[mid])) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def upper_bound() -> int:
        lo, hi = 0, len(sa)
        while lo < hi:
            mid = (lo + hi) // 2
            comparison = _compare_pattern(pattern, text, int(sa[mid]))
            # Suffixes that start with the pattern compare as 0 here only when
            # they equal it; longer suffixes starting with the pattern compare
            # via their continuation, so treat "starts with pattern" explicitly.
            start = int(sa[mid])
            starts_with = bool(
                len(text) - start >= len(pattern)
                and np.array_equal(text[start : start + len(pattern)], pattern)
            )
            if comparison < 0 or starts_with:
                lo = mid + 1
            else:
                hi = mid
        return lo

    lo = lower_bound()
    hi = upper_bound()
    return lo, max(lo, hi)
