"""Suffix arrays for code sequences (prefix doubling and SA-IS).

The suffix array is the array-based workhorse of the paper's baselines: the
weighted suffix array (WSA) is, in essence, a generalised suffix array over
the z-estimation plus per-entry valid lengths.  Two constructions are
provided and kept equal by differential fuzz tests:

* ``prefix_doubling`` — the classic O(n log n) algorithm, fully vectorised
  with numpy; the fastest choice on plain CPython.
* ``sais`` — linear-time SA-IS with the type classification and bucket
  tables in numpy and the induced-sort loops in :mod:`repro._kernels.sais`;
  the fastest choice when the compiled kernel engine is active.

``method="auto"`` (the default) picks per the active engine.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._kernels import NUMBA, stage_timer
from .._kernels.sais import induce_l, induce_s, name_lms, place_lms

__all__ = [
    "suffix_array",
    "rank_array",
    "generalized_suffix_array",
    "suffix_array_interval",
    "SA_METHODS",
]

SA_METHODS = ("auto", "prefix_doubling", "sais")


def suffix_array(codes: Sequence[int], *, method: str = "auto") -> np.ndarray:
    """Return the suffix array of ``codes`` (indices of suffixes in sorted order).

    Codes may be any non-negative integers; ties beyond the end of the string
    are resolved by treating "past the end" as smaller than every letter,
    which matches the usual convention of a unique smallest terminator.
    ``method`` is one of ``SA_METHODS``; every method returns the same array.
    """
    text = np.asarray(codes, dtype=np.int64)
    n = len(text)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    if method == "auto":
        # Uncompiled SA-IS loses to vectorised prefix doubling on CPython;
        # under the numba engine the linear-time construction wins.
        method = "sais" if NUMBA else "prefix_doubling"
    if method == "sais":
        with stage_timer("sa"):
            return _suffix_array_sais(text)
    if method != "prefix_doubling":
        raise ValueError(f"unknown suffix-array method: {method!r}")
    with stage_timer("sa"):
        return _suffix_array_prefix_doubling(text)


def _suffix_array_prefix_doubling(text: np.ndarray) -> np.ndarray:
    n = len(text)
    # Initial ranks: the codes themselves (compressed to a dense range).
    order = np.argsort(text, kind="stable")
    ranks = np.empty(n, dtype=np.int64)
    sorted_codes = text[order]
    ranks[order] = np.cumsum(np.concatenate([[0], sorted_codes[1:] != sorted_codes[:-1]]))
    step = 1
    indices = np.arange(n, dtype=np.int64)
    while step < n:
        # Rank of the suffix starting `step` positions later (-1 = past the end).
        second = np.full(n, -1, dtype=np.int64)
        second[: n - step] = ranks[step:]
        keys = ranks * (n + 1) + (second + 1)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        new_ranks = np.empty(n, dtype=np.int64)
        new_ranks[order] = np.cumsum(
            np.concatenate([[0], sorted_keys[1:] != sorted_keys[:-1]])
        )
        ranks = new_ranks
        if ranks[order[-1]] == n - 1:
            break
        step *= 2
    result = np.empty(n, dtype=np.int64)
    result[ranks] = indices
    return result


def _sais_classify(text: np.ndarray) -> np.ndarray:
    """S/L type of every suffix (True = S); requires a unique last symbol."""
    n = len(text)
    types = np.zeros(n, dtype=bool)
    types[-1] = True
    if n == 1:
        return types
    # types[i] is decided by the first j >= i with text[j] != text[j + 1];
    # such a j always exists because the final sentinel symbol is unique.
    change = np.nonzero(text[:-1] != text[1:])[0]
    j = change[np.searchsorted(change, np.arange(n - 1))]
    types[:-1] = text[j] < text[j + 1]
    return types


def _sais(data: np.ndarray, sigma: int) -> np.ndarray:
    """SA-IS over a dense alphabet whose last symbol is the unique smallest."""
    n = len(data)
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    types = _sais_classify(data)
    is_lms = np.zeros(n, dtype=bool)
    is_lms[1:] = types[1:] & ~types[:-1]
    lms_positions = np.nonzero(is_lms)[0]
    bucket_counts = np.bincount(data, minlength=sigma)
    bucket_tails = np.cumsum(bucket_counts)
    bucket_heads = bucket_tails - bucket_counts
    # Pass 1: any intra-bucket order of the LMS positions induces the true
    # order of the LMS substrings.
    sa = np.full(n, -1, dtype=np.int64)
    place_lms(sa, data, lms_positions, bucket_tails.copy())
    induce_l(sa, data, types, bucket_heads.copy())
    induce_s(sa, data, types, bucket_tails.copy())
    sorted_lms = sa[is_lms[sa]]
    names = np.full(n, -1, dtype=np.int64)
    name_count = int(name_lms(data, types, is_lms, sorted_lms, names))
    reduced = names[lms_positions]
    if name_count == len(lms_positions):
        order = np.argsort(reduced)
    else:
        order = _sais(reduced, name_count)
    # Pass 2: insert the LMS suffixes in decreasing rank so each bucket fills
    # from its tail in the correct final order, then induce everything else.
    sa.fill(-1)
    place_lms(sa, data, lms_positions[order[::-1]], bucket_tails.copy())
    induce_l(sa, data, types, bucket_heads.copy())
    induce_s(sa, data, types, bucket_tails.copy())
    return sa


def _suffix_array_sais(text: np.ndarray) -> np.ndarray:
    # Compress to a dense alphabet 1..K and append the unique 0 sentinel;
    # the SA of the sentinel-terminated text minus its first entry equals the
    # prefix-doubling SA (past-end smaller than every letter).
    dense = np.unique(text, return_inverse=True)[1]
    data = np.empty(len(text) + 1, dtype=np.int64)
    data[:-1] = dense + 1
    data[-1] = 0
    sa = _sais(data, int(dense.max()) + 2)
    return sa[1:]


def rank_array(sa: np.ndarray) -> np.ndarray:
    """Inverse permutation of a suffix array (suffix start → rank)."""
    ranks = np.empty(len(sa), dtype=np.int64)
    ranks[sa] = np.arange(len(sa), dtype=np.int64)
    return ranks


def generalized_suffix_array(
    strings: Sequence[Sequence[int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Suffix array of the concatenation of several code strings.

    The strings are concatenated with a separator smaller than every letter
    (letters are shifted up by one).  Returns ``(text, sa, which, offset)``
    where ``text`` is the shifted concatenation, ``sa`` its suffix array, and
    ``which[p]`` / ``offset[p]`` map a concatenation position back to the
    originating string index and the position inside it (separator positions
    map to ``which = -1``).
    """
    pieces = []
    which_pieces = []
    offset_pieces = []
    for index, codes in enumerate(strings):
        codes = np.asarray(codes, dtype=np.int64)
        pieces.append(codes + 1)
        pieces.append(np.zeros(1, dtype=np.int64))
        which_pieces.append(np.full(len(codes), index, dtype=np.int64))
        which_pieces.append(np.full(1, -1, dtype=np.int64))
        offset_pieces.append(np.arange(len(codes), dtype=np.int64))
        offset_pieces.append(np.full(1, -1, dtype=np.int64))
    if not pieces:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    text = np.concatenate(pieces)
    which = np.concatenate(which_pieces)
    offset = np.concatenate(offset_pieces)
    return text, suffix_array(text), which, offset


def _compare_pattern(pattern: np.ndarray, text: np.ndarray, start: int) -> int:
    """Compare ``pattern`` with the suffix of ``text`` at ``start``.

    Returns -1/0/+1 with the convention that a suffix that is a proper prefix
    of the pattern is smaller than the pattern.
    """
    n = len(text)
    m = len(pattern)
    length = min(m, n - start)
    window = text[start : start + length]
    prefix = pattern[:length]
    diffs = np.nonzero(window != prefix)[0]
    if len(diffs):
        position = diffs[0]
        return -1 if pattern[position] > window[position] else 1
    if length < m:
        return -1  # suffix ran out first: suffix < pattern
    return 0


def suffix_array_interval(
    text: Sequence[int], sa: np.ndarray, pattern: Sequence[int]
) -> tuple[int, int]:
    """The half-open SA interval of suffixes starting with ``pattern``.

    Standard binary search in O(m log n); returns ``(lo, hi)`` with
    ``lo == hi`` when the pattern does not occur.
    """
    text = np.asarray(text, dtype=np.int64)
    pattern = np.asarray(pattern, dtype=np.int64)
    if len(pattern) == 0:
        return 0, len(sa)

    def lower_bound() -> int:
        lo, hi = 0, len(sa)
        while lo < hi:
            mid = (lo + hi) // 2
            if _compare_pattern(pattern, text, int(sa[mid])) < 0:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def upper_bound() -> int:
        lo, hi = 0, len(sa)
        while lo < hi:
            mid = (lo + hi) // 2
            comparison = _compare_pattern(pattern, text, int(sa[mid]))
            # Suffixes that start with the pattern compare as 0 here only when
            # they equal it; longer suffixes starting with the pattern compare
            # via their continuation, so treat "starts with pattern" explicitly.
            start = int(sa[mid])
            starts_with = bool(
                len(text) - start >= len(pattern)
                and np.array_equal(text[start : start + len(pattern)], pattern)
            )
            if comparison < 0 or starts_with:
                lo = mid + 1
            else:
                hi = mid
        return lo

    lo = lower_bound()
    hi = upper_bound()
    return lo, max(lo, hi)
