"""Suffix trees for standard code strings.

Built as the compacted trie of all suffixes, using the suffix array and the
LCP array (O(n log n) construction overall, dominated by suffix sorting).
This is the classic text index recalled in Section 2 of the paper; the
weighted suffix tree (WST) baseline wraps a generalised version of it over
the z-estimation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .lcp import lcp_array
from .suffix_array import suffix_array
from .trie import CompactedTrie

__all__ = ["SuffixTree"]


class SuffixTree:
    """Suffix tree of a code string with a unique implicit terminator.

    The terminator (a letter smaller than every code) guarantees that every
    suffix ends at a leaf, as in Fig. 2 of the paper.
    """

    def __init__(self, codes: Sequence[int]) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        # Shift codes by +1 and append terminator 0 so every suffix is a leaf.
        self._text = np.concatenate([codes + 1, np.zeros(1, dtype=np.int64)])
        self._sa = suffix_array(self._text)
        self._lcp = lcp_array(self._text, self._sa)
        n = len(self._text)
        lengths = n - self._sa
        text = self._text
        sa = self._sa
        self._trie = CompactedTrie(
            lengths,
            self._lcp,
            lambda key, depth: int(text[sa[key] + depth]),
            bulk_letter=lambda keys, depths: text[sa[keys] + depths],
        )

    # -- shape ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Length of the indexed string (without the terminator)."""
        return len(self._text) - 1

    @property
    def node_count(self) -> int:
        """Number of explicit nodes of the suffix tree."""
        return self._trie.node_count

    @property
    def suffix_array_order(self) -> np.ndarray:
        """The underlying suffix array (leaf order of the tree)."""
        return self._sa

    @property
    def trie(self) -> CompactedTrie:
        """The underlying compacted trie (for structural inspection)."""
        return self._trie

    # -- queries -----------------------------------------------------------------
    def occurrences(self, pattern: Sequence[int]) -> list[int]:
        """All starting positions of ``pattern`` in the indexed string."""
        if len(pattern) == 0:
            return list(range(self.length + 1))
        shifted = [int(code) + 1 for code in pattern]
        lo, hi = self._trie.descend(shifted)
        return sorted(int(self._sa[rank]) for rank in range(lo, hi))

    def count(self, pattern: Sequence[int]) -> int:
        """Number of occurrences of ``pattern``."""
        if len(pattern) == 0:
            return self.length + 1
        shifted = [int(code) + 1 for code in pattern]
        lo, hi = self._trie.descend(shifted)
        return hi - lo

    def contains(self, pattern: Sequence[int]) -> bool:
        """Whether ``pattern`` occurs at least once."""
        return self.count(pattern) > 0
