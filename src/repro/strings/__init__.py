"""Classic stringology substrate: suffix arrays, LCP, RMQ, tries, fingerprints."""

from .karp_rabin import KarpRabinHasher, mix64, mix64_array
from .lcp import LCEIndex, lcp_array, lcp_of_strings
from .matching import find_occurrences, find_property_occurrences, is_occurrence
from .rmq import SparseTableRMaxQ, SparseTableRMQ, report_at_least
from .suffix_array import (
    generalized_suffix_array,
    rank_array,
    suffix_array,
    suffix_array_interval,
)
from .suffix_tree import SuffixTree
from .trie import CompactedTrie, TrieNode

__all__ = [
    "suffix_array",
    "rank_array",
    "generalized_suffix_array",
    "suffix_array_interval",
    "lcp_array",
    "lcp_of_strings",
    "LCEIndex",
    "SparseTableRMQ",
    "SparseTableRMaxQ",
    "report_at_least",
    "CompactedTrie",
    "TrieNode",
    "SuffixTree",
    "KarpRabinHasher",
    "mix64",
    "mix64_array",
    "find_occurrences",
    "find_property_occurrences",
    "is_occurrence",
]
