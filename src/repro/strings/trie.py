"""Compacted tries over sorted key collections.

The tree-shaped indexes of the paper (WST, MWST, MWST-G) are compacted tries
of string collections — suffixes of the z-estimation for WST, minimizer
solid-factor strings for MWST.  To keep those collections *unmaterialised*
(the whole point of the Corollary-4 edge encoding), the trie below never
stores letters: it is built from

* the number of keys, given in lexicographic order (prefixes first),
* the length of each key,
* the longest common prefix of each consecutive pair of keys, and
* a ``letter(key_index, depth)`` accessor used to read edge labels lazily.

Every node records the contiguous range of key indices in its subtree, so a
query that walks the trie ends with the exact set of matching keys.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

__all__ = ["TrieNode", "CompactedTrie"]

LetterAccessor = Callable[[int, int], int]


class TrieNode:
    """One explicit node of a compacted trie.

    The edge entering the node spells the letters of key ``edge_key`` at
    depths ``[parent_depth, depth)``; the subtree below the node contains the
    keys with indices in ``[lo, hi)``; ``terminal`` lists keys that end
    exactly at this node.
    """

    __slots__ = ("depth", "parent_depth", "edge_key", "children", "terminal", "lo", "hi")

    def __init__(self, depth: int, parent_depth: int, edge_key: int) -> None:
        self.depth = depth
        self.parent_depth = parent_depth
        self.edge_key = edge_key
        self.children: dict[int, TrieNode] = {}
        self.terminal: list[int] = []
        self.lo = -1
        self.hi = -1

    @property
    def edge_length(self) -> int:
        """Number of letters on the edge entering this node."""
        return self.depth - self.parent_depth

    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrieNode(depth={self.depth}, range=[{self.lo},{self.hi}), "
            f"children={len(self.children)})"
        )


class CompactedTrie:
    """A compacted trie over ``count`` sorted keys accessed through a callback.

    Parameters
    ----------
    lengths:
        Length of each key, in sorted key order.
    lcps:
        ``lcps[i]`` = longest common prefix of keys ``i-1`` and ``i``
        (``lcps[0]`` is ignored / treated as 0).
    letter:
        ``letter(key_index, depth)`` returns the code of the letter of a key
        at a given depth; only called for valid depths.

    The keys must be sorted so that a key that is a prefix of another comes
    first, and so that keys sharing a prefix are contiguous — i.e. ordinary
    lexicographic order.
    """

    def __init__(
        self,
        lengths: Sequence[int],
        lcps: Sequence[int],
        letter: LetterAccessor,
    ) -> None:
        self._letter = letter
        self._lengths = list(int(value) for value in lengths)
        self.root = TrieNode(0, 0, 0 if self._lengths else -1)
        self._node_count = 1
        self._build(list(int(value) for value in lcps))
        self._assign_ranges()

    # -- construction -----------------------------------------------------------
    def _build(self, lcps: Sequence[int]) -> None:
        letter = self._letter
        stack: list[TrieNode] = [self.root]
        for index, length in enumerate(self._lengths):
            depth = 0 if index == 0 else min(lcps[index], length)
            last_popped: TrieNode | None = None
            while stack[-1].depth > depth:
                last_popped = stack.pop()
            attach = stack[-1]
            if attach.depth < depth:
                # Split the edge entering `last_popped` at string depth `depth`.
                middle = TrieNode(depth, attach.depth, last_popped.edge_key)
                first_letter = letter(last_popped.edge_key, attach.depth)
                attach.children[first_letter] = middle
                middle.children[letter(last_popped.edge_key, depth)] = last_popped
                last_popped.parent_depth = depth
                attach = middle
                stack.append(middle)
                self._node_count += 1
            if length > attach.depth:
                leaf = TrieNode(length, attach.depth, index)
                leaf.terminal.append(index)
                attach.children[letter(index, attach.depth)] = leaf
                stack.append(leaf)
                self._node_count += 1
            else:
                attach.terminal.append(index)

    def _assign_ranges(self) -> None:
        # Iterative post-order pass computing each node's key-index range.
        order: list[TrieNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(node.children.values())
        for node in reversed(order):
            lo, hi = len(self._lengths), -1
            for key in node.terminal:
                lo = min(lo, key)
                hi = max(hi, key + 1)
            for child in node.children.values():
                if child.lo >= 0:
                    lo = min(lo, child.lo)
                    hi = max(hi, child.hi)
            node.lo, node.hi = (lo, hi) if hi >= 0 else (0, 0)

    # -- shape ---------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Number of keys the trie was built from."""
        return len(self._lengths)

    @property
    def node_count(self) -> int:
        """Number of explicit nodes (the paper's index-size driver)."""
        return self._node_count

    def key_length(self, key_index: int) -> int:
        """Length of one key."""
        return self._lengths[key_index]

    def iter_nodes(self):
        """Yield every node (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # -- queries ----------------------------------------------------------------------
    def descend(self, pattern: Sequence[int]) -> tuple[int, int]:
        """Range of keys having ``pattern`` as a prefix.

        Returns the half-open ``(lo, hi)`` range of key indices; ``(0, 0)``
        when no key starts with the pattern.  The walk costs O(|pattern|)
        letter accesses.
        """
        letter = self._letter
        node = self.root
        depth = 0
        m = len(pattern)
        while depth < m:
            child = node.children.get(int(pattern[depth]))
            if child is None:
                return 0, 0
            # Match the remaining letters on the edge.
            edge_end = child.depth
            key = child.edge_key
            offset = depth + 1
            while offset < min(m, edge_end):
                if letter(key, offset) != int(pattern[offset]):
                    return 0, 0
                offset += 1
            node = child
            depth = edge_end
        return node.lo, node.hi

    def matching_keys(self, pattern: Sequence[int]) -> list[int]:
        """Indices of the keys that have ``pattern`` as a prefix."""
        lo, hi = self.descend(pattern)
        return list(range(lo, hi))
