"""Compacted tries over sorted key collections.

The tree-shaped indexes of the paper (WST, MWST, MWST-G) are compacted tries
of string collections — suffixes of the z-estimation for WST, minimizer
solid-factor strings for MWST.  To keep those collections *unmaterialised*
(the whole point of the Corollary-4 edge encoding), the trie below never
stores letters: it is built from

* the number of keys, given in lexicographic order (prefixes first),
* the length of each key,
* the longest common prefix of each consecutive pair of keys, and
* a ``letter(key_index, depth)`` accessor used to read edge labels lazily.

Every node records the contiguous range of key indices in its subtree, so a
query that walks the trie ends with the exact set of matching keys.

Two construction implementations exist and stay bit-identical:

* ``"csr"`` (default) — the topology comes out of the array kernel in
  :mod:`repro._kernels.trie` as parent/child CSR arrays (node ranges, edge
  key/depth spans, child index sorted by first letter).  :class:`TrieNode`
  objects are only materialised lazily, as a view, when somebody walks
  ``root`` / ``iter_nodes``.  The arrays round-trip through
  :meth:`CompactedTrie.to_arrays` / :meth:`CompactedTrie.from_arrays`, which
  is how the store reloads tries without re-deriving them.
* ``"object"`` — the original per-node builder, kept as the parity oracle
  and selectable via :func:`trie_implementation` (benchmarks use it to
  measure the pre-CSR construction path).
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Sequence

import numpy as np

from .._kernels import stage_timer
from .._kernels.trie import trie_topology

__all__ = ["TrieNode", "CompactedTrie", "trie_implementation"]

LetterAccessor = Callable[[int, int], int]
BulkLetterAccessor = Callable[[np.ndarray, np.ndarray], np.ndarray]

_IMPLEMENTATIONS = ("csr", "object")
_default_implementation = "csr"


@contextlib.contextmanager
def trie_implementation(name: str):
    """Force the construction implementation within a ``with`` block.

    ``name`` is ``"csr"`` or ``"object"``.  Benchmarks wrap legacy-path
    builds in ``trie_implementation("object")``; parity tests use it to
    build both representations from the same inputs.
    """
    global _default_implementation
    if name not in _IMPLEMENTATIONS:
        raise ValueError(f"unknown trie implementation: {name!r}")
    previous = _default_implementation
    _default_implementation = name
    try:
        yield
    finally:
        _default_implementation = previous


class TrieNode:
    """One explicit node of a compacted trie.

    The edge entering the node spells the letters of key ``edge_key`` at
    depths ``[parent_depth, depth)``; the subtree below the node contains the
    keys with indices in ``[lo, hi)``; ``terminal`` lists keys that end
    exactly at this node.
    """

    __slots__ = ("depth", "parent_depth", "edge_key", "children", "terminal", "lo", "hi")

    def __init__(self, depth: int, parent_depth: int, edge_key: int) -> None:
        self.depth = depth
        self.parent_depth = parent_depth
        self.edge_key = edge_key
        self.children: dict[int, TrieNode] = {}
        self.terminal: list[int] = []
        self.lo = -1
        self.hi = -1

    @property
    def edge_length(self) -> int:
        """Number of letters on the edge entering this node."""
        return self.depth - self.parent_depth

    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TrieNode(depth={self.depth}, range=[{self.lo},{self.hi}), "
            f"children={len(self.children)})"
        )


_CSR_ARRAY_NAMES = (
    "depth",
    "parent_depth",
    "edge_key",
    "parent",
    "lo",
    "hi",
    "child_start",
    "child_id",
    "child_letter",
)


class CompactedTrie:
    """A compacted trie over ``count`` sorted keys accessed through a callback.

    Parameters
    ----------
    lengths:
        Length of each key, in sorted key order.
    lcps:
        ``lcps[i]`` = longest common prefix of keys ``i-1`` and ``i``
        (``lcps[0]`` is ignored / treated as 0).
    letter:
        ``letter(key_index, depth)`` returns the code of the letter of a key
        at a given depth; only called for valid depths.
    bulk_letter:
        optional vectorised twin, ``bulk_letter(keys, depths) -> codes`` over
        parallel int64 arrays; used to resolve all first-edge letters in one
        call during CSR construction.
    implementation:
        ``"csr"`` or ``"object"``; defaults to the ambient choice set by
        :func:`trie_implementation`.

    The keys must be sorted so that a key that is a prefix of another comes
    first, and so that keys sharing a prefix are contiguous — i.e. ordinary
    lexicographic order.
    """

    #: Class-level counter of from-keys constructions (``from_arrays`` does
    #: not count) — the no-rederivation test hook for store reloads.
    construction_count = 0

    def __init__(
        self,
        lengths: Sequence[int],
        lcps: Sequence[int],
        letter: LetterAccessor,
        *,
        bulk_letter: BulkLetterAccessor | None = None,
        implementation: str | None = None,
    ) -> None:
        self._letter = letter
        self._bulk_letter = bulk_letter
        self._lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        chosen = _default_implementation if implementation is None else implementation
        if chosen not in _IMPLEMENTATIONS:
            raise ValueError(f"unknown trie implementation: {chosen!r}")
        self._implementation = chosen
        self._view_root: TrieNode | None = None
        CompactedTrie.construction_count += 1
        if chosen == "object":
            with stage_timer("trie"):
                self._build_object(np.asarray(lcps, dtype=np.int64))
            return
        with stage_timer("trie"):
            self._build_csr(np.ascontiguousarray(lcps, dtype=np.int64))

    # -- CSR construction --------------------------------------------------------
    def _build_csr(self, lcps: np.ndarray) -> None:
        (
            self._depth,
            self._parent_depth,
            self._edge_key,
            self._parent,
            self._lo,
            self._hi,
        ) = trie_topology(self._lengths, lcps)
        self._node_count = len(self._depth)
        count = self._node_count
        child_start = np.zeros(count + 1, dtype=np.int64)
        if count > 1:
            # Node ids are already in ascending first-letter order within each
            # parent (keys arrive sorted), so a stable sort by parent yields
            # the child CSR directly.
            children = np.argsort(self._parent[1:], kind="stable") + 1
            child_start[1:] = np.cumsum(np.bincount(self._parent[1:], minlength=count))
            keys = self._edge_key[children]
            depths = self._parent_depth[children]
            if self._bulk_letter is not None:
                letters = np.ascontiguousarray(self._bulk_letter(keys, depths), dtype=np.int64)
            else:
                letter = self._letter
                letters = np.fromiter(
                    (letter(int(key), int(depth)) for key, depth in zip(keys, depths)),
                    dtype=np.int64,
                    count=len(children),
                )
            self._child_id = children
            self._child_letter = letters
        else:
            self._child_id = np.empty(0, dtype=np.int64)
            self._child_letter = np.empty(0, dtype=np.int64)
        self._child_start = child_start

    # -- object construction (parity oracle / legacy path) -----------------------
    def _build_object(self, lcps: np.ndarray) -> None:
        lengths = [int(value) for value in self._lengths]
        lcp_list = [int(value) for value in lcps]
        letter = self._letter
        root = TrieNode(0, 0, 0 if lengths else -1)
        node_count = 1
        stack: list[TrieNode] = [root]
        for index, length in enumerate(lengths):
            depth = 0 if index == 0 else min(lcp_list[index], length)
            last_popped: TrieNode | None = None
            while stack[-1].depth > depth:
                last_popped = stack.pop()
            attach = stack[-1]
            if attach.depth < depth:
                # Split the edge entering `last_popped` at string depth `depth`.
                middle = TrieNode(depth, attach.depth, last_popped.edge_key)
                first_letter = letter(last_popped.edge_key, attach.depth)
                attach.children[first_letter] = middle
                middle.children[letter(last_popped.edge_key, depth)] = last_popped
                last_popped.parent_depth = depth
                attach = middle
                stack.append(middle)
                node_count += 1
            if length > attach.depth:
                leaf = TrieNode(length, attach.depth, index)
                leaf.terminal.append(index)
                attach.children[letter(index, attach.depth)] = leaf
                stack.append(leaf)
                node_count += 1
            else:
                attach.terminal.append(index)
        # Iterative post-order pass computing each node's key-index range.
        order: list[TrieNode] = []
        walk = [root]
        while walk:
            node = walk.pop()
            order.append(node)
            walk.extend(node.children.values())
        for node in reversed(order):
            lo, hi = len(lengths), -1
            for key in node.terminal:
                lo = min(lo, key)
                hi = max(hi, key + 1)
            for child in node.children.values():
                if child.lo >= 0:
                    lo = min(lo, child.lo)
                    hi = max(hi, child.hi)
            node.lo, node.hi = (lo, hi) if hi >= 0 else (0, 0)
        self._view_root = root
        self._node_count = node_count

    # -- array round-trip --------------------------------------------------------
    def to_arrays(self) -> dict[str, np.ndarray]:
        """The CSR node/child arrays (for persistence)."""
        if self._implementation != "csr":
            raise ValueError("to_arrays requires the csr implementation")
        return {
            "depth": self._depth,
            "parent_depth": self._parent_depth,
            "edge_key": self._edge_key,
            "parent": self._parent,
            "lo": self._lo,
            "hi": self._hi,
            "child_start": self._child_start,
            "child_id": self._child_id,
            "child_letter": self._child_letter,
        }

    @classmethod
    def from_arrays(
        cls,
        arrays: dict[str, np.ndarray],
        lengths: Sequence[int],
        letter: LetterAccessor,
        *,
        bulk_letter: BulkLetterAccessor | None = None,
    ) -> CompactedTrie:
        """Rehydrate a CSR trie from :meth:`to_arrays` output (no rebuild)."""
        trie = cls.__new__(cls)
        trie._letter = letter
        trie._bulk_letter = bulk_letter
        trie._lengths = np.asarray(lengths, dtype=np.int64)
        trie._implementation = "csr"
        trie._view_root = None
        for name in _CSR_ARRAY_NAMES:
            setattr(trie, f"_{name}", np.asarray(arrays[name], dtype=np.int64))
        trie._node_count = len(trie._depth)
        return trie

    @property
    def implementation(self) -> str:
        """The construction implementation this trie uses."""
        return self._implementation

    # -- lazy object view --------------------------------------------------------
    @property
    def root(self) -> TrieNode:
        """The root :class:`TrieNode` (materialised lazily in CSR mode)."""
        if self._view_root is None:
            self._view_root = self._materialize_view()
        return self._view_root

    def _materialize_view(self) -> TrieNode:
        count = self._node_count
        depth = self._depth
        parent_depth = self._parent_depth
        edge_key = self._edge_key
        lo = self._lo
        hi = self._hi
        child_start = self._child_start
        child_id = self._child_id
        child_letter = self._child_letter
        lengths = self._lengths
        nodes = [
            TrieNode(int(depth[v]), int(parent_depth[v]), int(edge_key[v]))
            for v in range(count)
        ]
        for v in range(count):
            node = nodes[v]
            node.lo = int(lo[v])
            node.hi = int(hi[v])
            for slot in range(int(child_start[v]), int(child_start[v + 1])):
                node.children[int(child_letter[slot])] = nodes[int(child_id[slot])]
            if node.hi > node.lo:
                # Keys ending exactly here: in-range keys whose length equals
                # the node depth (ranges nest, depths along a path increase,
                # so the node is unique).
                block = np.nonzero(lengths[node.lo : node.hi] == node.depth)[0]
                for key in block:
                    node.terminal.append(int(key) + node.lo)
        return nodes[0]

    # -- shape ---------------------------------------------------------------------
    @property
    def key_count(self) -> int:
        """Number of keys the trie was built from."""
        return len(self._lengths)

    @property
    def node_count(self) -> int:
        """Number of explicit nodes (the paper's index-size driver)."""
        return self._node_count

    def key_length(self, key_index: int) -> int:
        """Length of one key."""
        return int(self._lengths[key_index])

    def iter_nodes(self):
        """Yield every node (pre-order)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # -- queries ----------------------------------------------------------------------
    def descend(self, pattern: Sequence[int]) -> tuple[int, int]:
        """Range of keys having ``pattern`` as a prefix.

        Returns the half-open ``(lo, hi)`` range of key indices; ``(0, 0)``
        when no key starts with the pattern.  The walk costs O(|pattern|)
        letter accesses (plus O(log sigma) per node in CSR mode).
        """
        if self._implementation == "object" or self._view_root is not None:
            return self._descend_object(pattern)
        letter = self._letter
        child_start = self._child_start
        child_letter = self._child_letter
        child_id = self._child_id
        node_depth = self._depth
        node_edge_key = self._edge_key
        node = 0
        depth = 0
        m = len(pattern)
        while depth < m:
            start = int(child_start[node])
            stop = int(child_start[node + 1])
            target = int(pattern[depth])
            slot = start + int(np.searchsorted(child_letter[start:stop], target))
            if slot == stop or int(child_letter[slot]) != target:
                return 0, 0
            child = int(child_id[slot])
            # Match the remaining letters on the edge.
            edge_end = int(node_depth[child])
            key = int(node_edge_key[child])
            offset = depth + 1
            while offset < min(m, edge_end):
                if letter(key, offset) != int(pattern[offset]):
                    return 0, 0
                offset += 1
            node = child
            depth = edge_end
        return int(self._lo[node]), int(self._hi[node])

    def _descend_object(self, pattern: Sequence[int]) -> tuple[int, int]:
        letter = self._letter
        node = self.root
        depth = 0
        m = len(pattern)
        while depth < m:
            child = node.children.get(int(pattern[depth]))
            if child is None:
                return 0, 0
            edge_end = child.depth
            key = child.edge_key
            offset = depth + 1
            while offset < min(m, edge_end):
                if letter(key, offset) != int(pattern[offset]):
                    return 0, 0
                offset += 1
            node = child
            depth = edge_end
        return node.lo, node.hi

    def matching_keys(self, pattern: Sequence[int]) -> list[int]:
        """Indices of the keys that have ``pattern`` as a prefix."""
        lo, hi = self.descend(pattern)
        return list(range(lo, hi))
