"""Karp–Rabin fingerprints and the integer mixer used for minimizer orders.

The paper's implementation computes minimizers with Karp–Rabin fingerprints
instead of plain lexicographic comparison; randomising the order of k-mers
makes the minimizer density behave like the random-order analysis of
Lemma 1.  We provide

* :class:`KarpRabinHasher` — classic rolling fingerprints of substrings,
  used in tests and available for users who need probabilistic equality;
* :func:`mix64` — a deterministic avalanche mixer (splitmix64 finaliser)
  applied to integer k-mer encodings to define the "random" minimizer order
  shared by every construction path in the library.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["KarpRabinHasher", "mix64", "mix64_array"]

_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """splitmix64 finaliser: a fast, deterministic 64-bit avalanche mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def mix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`mix64` over an array of non-negative integers."""
    value = values.astype(np.uint64, copy=True)
    value += np.uint64(0x9E3779B97F4A7C15)
    value ^= value >> np.uint64(30)
    value *= np.uint64(0xBF58476D1CE4E5B9)
    value ^= value >> np.uint64(27)
    value *= np.uint64(0x94D049BB133111EB)
    value ^= value >> np.uint64(31)
    return value


class KarpRabinHasher:
    """Rolling Karp–Rabin fingerprints over a fixed code sequence.

    Fingerprints are polynomial hashes modulo a Mersenne-like prime; two
    equal substrings always have equal fingerprints, and unequal substrings
    collide with probability ``O(n / p)``.
    """

    #: A large prime below 2^61 (fits comfortably in Python ints and numpy ops).
    PRIME = (1 << 61) - 1

    def __init__(self, codes: Sequence[int], base: int = 1_000_003) -> None:
        codes = [int(code) for code in codes]
        self._base = base
        prefix = [0] * (len(codes) + 1)
        powers = [1] * (len(codes) + 1)
        for index, code in enumerate(codes):
            prefix[index + 1] = (prefix[index] * base + code + 1) % self.PRIME
            powers[index + 1] = (powers[index] * base) % self.PRIME
        self._prefix = prefix
        self._powers = powers

    def __len__(self) -> int:
        return len(self._prefix) - 1

    def fingerprint(self, start: int, stop: int) -> int:
        """Fingerprint of the substring ``[start, stop)``."""
        if not 0 <= start <= stop <= len(self):
            raise IndexError(f"invalid fingerprint range [{start}, {stop})")
        value = self._prefix[stop] - (self._prefix[start] * self._powers[stop - start]) % self.PRIME
        return value % self.PRIME

    def equal(self, first: tuple[int, int], second: tuple[int, int]) -> bool:
        """Probabilistic equality of two ranges (always true for equal strings)."""
        if first[1] - first[0] != second[1] - second[0]:
            return False
        return self.fingerprint(*first) == self.fingerprint(*second)
