"""Plain and property-respecting pattern matching (reference algorithms).

These are the straightforward O(n·m) matchers used as oracles in tests and
for verification of candidate occurrences; the indexes provide the fast
counterparts.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core.properties import PropertyArray

__all__ = ["find_occurrences", "find_property_occurrences", "is_occurrence"]


def is_occurrence(text: Sequence[int], pattern: Sequence[int], position: int) -> bool:
    """Whether ``pattern`` occurs in ``text`` at ``position`` (plain equality)."""
    m = len(pattern)
    if position < 0 or position + m > len(text):
        return False
    for offset in range(m):
        if text[position + offset] != pattern[offset]:
            return False
    return True


def find_occurrences(text: Sequence[int], pattern: Sequence[int]) -> list[int]:
    """All occurrences of ``pattern`` in ``text`` (naive scan)."""
    m = len(pattern)
    if m == 0:
        return list(range(len(text) + 1))
    return [
        position
        for position in range(len(text) - m + 1)
        if is_occurrence(text, pattern, position)
    ]


def find_property_occurrences(
    text: Sequence[int], pattern: Sequence[int], prop: PropertyArray
) -> list[int]:
    """Occurrences of ``pattern`` in ``text`` that respect the property ``prop``."""
    m = len(pattern)
    return [
        position
        for position in find_occurrences(text, pattern)
        if m == 0 or prop.covers(position, position + m)
    ]
