"""Longest-common-prefix arrays (Kasai's algorithm) and LCE support.

``lcp_array[r]`` is the length of the longest common prefix of the suffixes
of rank ``r`` and ``r-1`` (``lcp_array[0] = 0``).  Combined with a range
minimum structure this yields O(1) longest common extension (LCE) queries,
which the tree constructions and the heavy-string comparators rely on.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._kernels.lcp import kasai
from .rmq import SparseTableRMQ
from .suffix_array import rank_array, suffix_array

__all__ = ["lcp_array", "LCEIndex", "lcp_of_strings"]


def lcp_array(text: Sequence[int], sa: np.ndarray) -> np.ndarray:
    """Kasai's algorithm: LCP array aligned with the suffix array (O(n))."""
    text = np.asarray(text, dtype=np.int64)
    n = len(text)
    lcp = np.zeros(n, dtype=np.int64)
    if n == 0:
        return lcp
    ranks = rank_array(sa)
    kasai(text, np.ascontiguousarray(sa, dtype=np.int64), ranks, lcp)
    return lcp


def lcp_of_strings(first: Sequence[int], second: Sequence[int]) -> int:
    """Plain longest common prefix of two code sequences."""
    limit = min(len(first), len(second))
    for index in range(limit):
        if first[index] != second[index]:
            return index
    return limit


class LCEIndex:
    """O(1) longest-common-extension queries over one code string.

    Built from the suffix array, the LCP array and a sparse-table RMQ;
    construction is O(n log n), queries are O(1).  ``lce(i, j)`` returns the
    length of the longest common prefix of the suffixes starting at ``i`` and
    ``j``.
    """

    __slots__ = ("_text", "_sa", "_ranks", "_lcp", "_rmq")

    def __init__(self, text: Sequence[int]) -> None:
        self._text = np.asarray(text, dtype=np.int64)
        self._sa = suffix_array(self._text)
        self._ranks = rank_array(self._sa)
        self._lcp = lcp_array(self._text, self._sa)
        self._rmq = SparseTableRMQ(self._lcp) if len(self._lcp) else None

    def __len__(self) -> int:
        return len(self._text)

    @property
    def text(self) -> np.ndarray:
        """The indexed code string."""
        return self._text

    def lce(self, first: int, second: int) -> int:
        """Longest common extension of the suffixes at ``first`` and ``second``."""
        n = len(self._text)
        if first == second:
            return n - first
        if first >= n or second >= n:
            return 0
        ra, rb = int(self._ranks[first]), int(self._ranks[second])
        if ra > rb:
            ra, rb = rb, ra
        return int(self._rmq.range_min(ra + 1, rb + 1))

    def compare_suffixes(self, first: int, second: int) -> int:
        """Lexicographic comparison (-1/0/+1) of two suffixes in O(1)."""
        if first == second:
            return 0
        return -1 if self._ranks[first] < self._ranks[second] else 1

    def nbytes(self) -> int:
        """Approximate memory footprint of the structure."""
        total = self._text.nbytes + self._sa.nbytes + self._ranks.nbytes + self._lcp.nbytes
        if self._rmq is not None:
            total += self._rmq.nbytes()
        return int(total)
