"""Range-minimum / range-maximum queries via sparse tables.

Two uses in the library:

* O(1) LCE queries (minimum over LCP ranges), needed by the heavy-string
  comparator of the space-efficient construction;
* output-sensitive reporting of property-respecting suffixes: given the SA
  interval of a pattern, entries whose valid length is at least ``m`` are
  reported by recursing on range-*maximum* queries, so the work is
  proportional to the number of reported occurrences.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["SparseTableRMQ", "SparseTableRMaxQ", "report_at_least"]


class SparseTableRMQ:
    """Static range-minimum structure: O(n log n) space, O(1) queries."""

    __slots__ = ("_table", "_logs")

    def __init__(self, values: Sequence[float]) -> None:
        values = np.asarray(values)
        n = len(values)
        levels = max(1, int(np.floor(np.log2(max(1, n)))) + 1)
        table = [np.asarray(values)]
        length = 1
        for _ in range(1, levels):
            previous = table[-1]
            length *= 2
            if length > n:
                break
            half = length // 2
            table.append(np.minimum(previous[: n - length + 1], previous[half : n - length + 1 + half]))
        self._table = table
        logs = np.zeros(n + 1, dtype=np.int64)
        for i in range(2, n + 1):
            logs[i] = logs[i // 2] + 1
        self._logs = logs

    def range_min(self, start: int, stop: int):
        """Minimum of ``values[start:stop]`` (requires ``start < stop``)."""
        if start >= stop:
            raise ValueError("range_min requires a non-empty range")
        level = int(self._logs[stop - start])
        block = self._table[level]
        return min(block[start], block[stop - (1 << level)])

    def nbytes(self) -> int:
        """Approximate memory footprint."""
        return int(sum(level.nbytes for level in self._table) + self._logs.nbytes)


class SparseTableRMaxQ:
    """Static range-maximum structure with argmax reporting."""

    __slots__ = ("_values", "_table", "_logs")

    def __init__(self, values: Sequence[float]) -> None:
        self._values = np.asarray(values)
        n = len(self._values)
        levels = max(1, int(np.floor(np.log2(max(1, n)))) + 1)
        # Store argmax indices so reporting can recurse on positions.
        table = [np.arange(n, dtype=np.int64)]
        length = 1
        for _ in range(1, levels):
            previous = table[-1]
            length *= 2
            if length > n:
                break
            half = length // 2
            left = previous[: n - length + 1]
            right = previous[half : n - length + 1 + half]
            take_right = self._values[right] > self._values[left]
            table.append(np.where(take_right, right, left))
        self._table = table
        logs = np.zeros(n + 1, dtype=np.int64)
        for i in range(2, n + 1):
            logs[i] = logs[i // 2] + 1
        self._logs = logs

    def range_argmax(self, start: int, stop: int) -> int:
        """Index of a maximum of ``values[start:stop]``."""
        if start >= stop:
            raise ValueError("range_argmax requires a non-empty range")
        level = int(self._logs[stop - start])
        block = self._table[level]
        left = int(block[start])
        right = int(block[stop - (1 << level)])
        return right if self._values[right] > self._values[left] else left

    def value(self, index: int):
        """The stored value at ``index``."""
        return self._values[index]

    def nbytes(self) -> int:
        """Approximate memory footprint."""
        return int(sum(level.nbytes for level in self._table) + self._logs.nbytes)


def report_at_least(rmax: SparseTableRMaxQ, start: int, stop: int, threshold) -> list[int]:
    """All indices in ``[start, stop)`` whose value is ``>= threshold``.

    Classic output-sensitive recursion on a range-maximum structure: the
    running time is O((1 + k) log n) for k reported indices, which is how the
    property suffix array reports only the occurrences that respect the
    property (Section 6 of the WSA paper, used by our WSA and MWSA).
    """
    results: list[int] = []
    if start >= stop:
        return results
    stack = [(start, stop)]
    while stack:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        best = rmax.range_argmax(lo, hi)
        if rmax.value(best) < threshold:
            continue
        results.append(best)
        stack.append((lo, best))
        stack.append((best + 1, hi))
    return results
