"""Trie-topology kernel: compacted-trie node arrays from lengths + LCPs.

Given the sorted key lengths and the adjacent-LCP array, the stack loop below
emits the full node table of the compacted trie in creation order — exactly
the nodes the object builder in :mod:`repro.strings.trie` would allocate,
with the same ids.  Letters are *not* consumed here: the first letter of each
edge is resolved afterwards (vectorised when a bulk accessor exists), which
is what makes the topology pass a pure int kernel.

Arrays produced (length = node count, node 0 is the root):

``depth``
    string depth of the node;
``parent_depth``
    string depth of its parent (edge spells depths ``[parent_depth, depth)``);
``edge_key``
    a key index whose letters spell the edge (root: 0, or -1 when empty);
``parent``
    parent node id (-1 for the root);
``lo`` / ``hi``
    half-open range of key indices in the subtree.

Terminal keys are implicit: key ``i`` ends exactly at the unique node ``v``
with ``lo[v] <= i < hi[v]`` and ``depth[v] == lengths[i]``.
"""

from __future__ import annotations

import numpy as np

from . import NUMBA, njit

__all__ = ["trie_topology", "trie_topology_python", "trie_topology_arrays"]


def trie_topology_python(lengths, lcps):
    """List-backed topology builder — the fast path on plain CPython."""
    length_list = [int(value) for value in lengths]
    lcp_list = [int(value) for value in lcps]
    count = len(length_list)
    depth = [0]
    parent_depth = [0]
    edge_key = [0 if count else -1]
    parent = [-1]
    lo = [0]
    hi = [0]
    stack = [0]
    for index in range(count):
        length = length_list[index]
        limit = 0 if index == 0 else lcp_list[index]
        if limit > length:
            limit = length
        last = -1
        while depth[stack[-1]] > limit:
            last = stack.pop()
            hi[last] = index
        attach = stack[-1]
        if depth[attach] < limit:
            # Split the edge entering `last` at string depth `limit`.
            middle = len(depth)
            depth.append(limit)
            parent_depth.append(depth[attach])
            edge_key.append(edge_key[last])
            parent.append(attach)
            lo.append(lo[last])
            hi.append(0)
            parent[last] = middle
            parent_depth[last] = limit
            stack.append(middle)
            attach = middle
        if length > depth[attach]:
            leaf = len(depth)
            depth.append(length)
            parent_depth.append(depth[attach])
            edge_key.append(index)
            parent.append(attach)
            lo.append(index)
            hi.append(0)
            stack.append(leaf)
    for node in stack:
        hi[node] = count
    return (
        np.asarray(depth, dtype=np.int64),
        np.asarray(parent_depth, dtype=np.int64),
        np.asarray(edge_key, dtype=np.int64),
        np.asarray(parent, dtype=np.int64),
        np.asarray(lo, dtype=np.int64),
        np.asarray(hi, dtype=np.int64),
    )


@njit(cache=True)
def trie_topology_arrays(lengths, lcps):
    """Array-backed twin of :func:`trie_topology_python` (njit-compilable).

    Preallocates the worst case of ``2 * count + 1`` nodes and returns views
    trimmed to the actual node count.  Semantics are identical to the list
    builder; a parity test runs this function uncompiled against it.
    """
    count = lengths.shape[0]
    capacity = 2 * count + 1
    depth = np.zeros(capacity, dtype=np.int64)
    parent_depth = np.zeros(capacity, dtype=np.int64)
    edge_key = np.zeros(capacity, dtype=np.int64)
    parent = np.full(capacity, -1, dtype=np.int64)
    lo = np.zeros(capacity, dtype=np.int64)
    hi = np.zeros(capacity, dtype=np.int64)
    if count == 0:
        edge_key[0] = -1
    stack = np.zeros(capacity, dtype=np.int64)
    top = 0
    node_count = 1
    for index in range(count):
        length = lengths[index]
        limit = lcps[index] if index > 0 else 0
        if limit > length:
            limit = length
        last = -1
        while depth[stack[top]] > limit:
            last = stack[top]
            top -= 1
            hi[last] = index
        attach = stack[top]
        if depth[attach] < limit:
            middle = node_count
            node_count += 1
            depth[middle] = limit
            parent_depth[middle] = depth[attach]
            edge_key[middle] = edge_key[last]
            parent[middle] = attach
            lo[middle] = lo[last]
            parent[last] = middle
            parent_depth[last] = limit
            top += 1
            stack[top] = middle
            attach = middle
        if length > depth[attach]:
            leaf = node_count
            node_count += 1
            depth[leaf] = length
            parent_depth[leaf] = depth[attach]
            edge_key[leaf] = index
            parent[leaf] = attach
            lo[leaf] = index
            top += 1
            stack[top] = leaf
    for position in range(top + 1):
        hi[stack[position]] = count
    return (
        depth[:node_count].copy(),
        parent_depth[:node_count].copy(),
        edge_key[:node_count].copy(),
        parent[:node_count].copy(),
        lo[:node_count].copy(),
        hi[:node_count].copy(),
    )


def _topology_numba(lengths, lcps):  # pragma: no cover - requires numba
    return trie_topology_arrays(
        np.ascontiguousarray(lengths, dtype=np.int64),
        np.ascontiguousarray(lcps, dtype=np.int64),
    )


trie_topology = _topology_numba if NUMBA else trie_topology_python
