"""Per-stage wall-clock accounting for construction provenance.

The builders of the heavy structures (trie topology, grid levels, suffix
array) wrap their hot section in :func:`stage_timer`; ``build --json`` and
the benchmark metadata drain the accumulated totals with
:func:`collect_stages` so every reported number names the stages (and the
engine) that produced it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["record_stage", "collect_stages", "stage_timer"]

_STAGES: dict[str, float] = {}


def record_stage(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` of work under stage ``name``."""
    _STAGES[name] = _STAGES.get(name, 0.0) + float(seconds)


def collect_stages(*, reset: bool = True) -> dict[str, float]:
    """Snapshot the accumulated per-stage totals, clearing them by default."""
    snapshot = dict(_STAGES)
    if reset:
        _STAGES.clear()
    return snapshot


@contextmanager
def stage_timer(name: str):
    """Context manager adding the elapsed wall time to stage ``name``."""
    started = time.perf_counter()
    try:
        yield
    finally:
        record_stage(name, time.perf_counter() - started)
