"""Scalar loops of the SA-IS suffix-array construction.

The driver in :mod:`repro.strings.suffix_array` keeps everything that
vectorises well (type classification, bucket tables, LMS extraction) in
numpy; the four loops below are the irreducibly sequential parts — induced
sorting and LMS-substring naming — and compile under numba when the kernel
engine is active.  They are equally valid plain Python over numpy arrays,
which is the tested fallback.

Conventions: ``text`` is an int64 array over a dense alphabet ``0..sigma-1``
whose last symbol is a unique smallest sentinel; ``types`` is a bool array
with ``True`` for S-type suffixes; empty ``sa`` slots hold ``-1``.
"""

from __future__ import annotations

from . import njit

__all__ = ["place_lms", "induce_l", "induce_s", "name_lms"]


@njit(cache=True)
def place_lms(sa, text, positions, tails):
    """Drop LMS positions at the tails of their buckets (any order works)."""
    for index in range(positions.shape[0]):
        position = positions[index]
        symbol = text[position]
        tails[symbol] -= 1
        sa[tails[symbol]] = position


@njit(cache=True)
def induce_l(sa, text, types, heads):
    """Left-to-right pass inducing L-type suffixes from what is placed."""
    for index in range(sa.shape[0]):
        position = sa[index]
        if position > 0 and not types[position - 1]:
            symbol = text[position - 1]
            sa[heads[symbol]] = position - 1
            heads[symbol] += 1


@njit(cache=True)
def induce_s(sa, text, types, tails):
    """Right-to-left pass inducing S-type suffixes from what is placed."""
    for index in range(sa.shape[0] - 1, -1, -1):
        position = sa[index]
        if position > 0 and types[position - 1]:
            symbol = text[position - 1]
            tails[symbol] -= 1
            sa[tails[symbol]] = position - 1


@njit(cache=True)
def name_lms(text, types, is_lms, sorted_lms, names):
    """Name sorted LMS substrings; equal substrings share a name.

    Writes the name of each LMS position into ``names`` (indexed by text
    position) and returns the number of distinct names.
    """
    previous = sorted_lms[0]
    names[previous] = 0
    current = 0
    for index in range(1, sorted_lms.shape[0]):
        position = sorted_lms[index]
        offset = 0
        same = True
        while True:
            if (
                text[previous + offset] != text[position + offset]
                or types[previous + offset] != types[position + offset]
            ):
                same = False
                break
            if offset > 0:
                previous_ends = is_lms[previous + offset]
                position_ends = is_lms[position + offset]
                if previous_ends and position_ends:
                    break
                if previous_ends != position_ends:
                    same = False
                    break
            offset += 1
        if not same:
            current += 1
        names[position] = current
        previous = position
    return current + 1
