"""Kasai's LCP recurrence as a kernel.

One sequential pass over text positions; the amortised O(n) bound depends on
carrying ``length - 1`` between iterations, so the loop cannot vectorise.
Runs compiled under numba, or as-is on plain numpy arrays otherwise.
"""

from __future__ import annotations

from . import njit

__all__ = ["kasai"]


@njit(cache=True)
def kasai(text, sa, ranks, lcp):
    """Fill ``lcp`` (same convention as ``lcp_array``: lcp[0] = 0)."""
    n = text.shape[0]
    length = 0
    for position in range(n):
        rank = ranks[position]
        if rank == 0:
            length = 0
            continue
        other = sa[rank - 1]
        longer = position if position > other else other
        limit = n - longer
        while length < limit and text[position + length] == text[other + length]:
            length += 1
        lcp[rank] = length
        if length > 0:
            length -= 1
