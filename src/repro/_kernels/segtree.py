"""Point-update / range-min segment tree kernels for the MWST-SE DFS.

The DFS packs its keys as ``(order_value << 32) | (tie + n)``.  The order
value of the default random minimizer order is a full 64-bit mix, so the
packed key does not fit a machine word — the Python tree compares arbitrary
big ints.  The kernel variant therefore splits every key into an
``(order, low)`` pair (``uint64`` order half, ``int64`` low half < 2^32) and
compares lexicographically, which is exactly the packed big-int order.  The
pair sentinel ``(2^64 - 1, 2^62)`` is strictly greater than every real pair
(real low halves are below 2^32) and maps back to the caller's sentinel.
"""

from __future__ import annotations

import numpy as np

from . import njit

__all__ = [
    "PAIR_SENTINEL_HI",
    "PAIR_SENTINEL_LO",
    "seg_set",
    "seg_bulk_fill",
    "seg_range_min",
]

PAIR_SENTINEL_HI = 2**64 - 1
PAIR_SENTINEL_LO = 2**62


@njit(cache=True)
def seg_set(keys_hi, keys_lo, size, position, key_hi, key_lo):
    """Set one leaf, climbing only while ancestors' minima change."""
    node = size + position
    keys_hi[node] = key_hi
    keys_lo[node] = key_lo
    node >>= 1
    while node:
        left = 2 * node
        right = left + 1
        if keys_hi[left] < keys_hi[right] or (
            keys_hi[left] == keys_hi[right] and keys_lo[left] <= keys_lo[right]
        ):
            best_hi = keys_hi[left]
            best_lo = keys_lo[left]
        else:
            best_hi = keys_hi[right]
            best_lo = keys_lo[right]
        if keys_hi[node] == best_hi and keys_lo[node] == best_lo:
            break
        keys_hi[node] = best_hi
        keys_lo[node] = best_lo
        node >>= 1


@njit(cache=True)
def seg_bulk_fill(keys_hi, keys_lo, size, leaf_hi, leaf_lo):
    """Seed leaves ``0 .. len(leaf_hi)`` and rebuild internal nodes bottom-up."""
    count = leaf_hi.shape[0]
    for index in range(count):
        keys_hi[size + index] = leaf_hi[index]
        keys_lo[size + index] = leaf_lo[index]
    for node in range(size - 1, 0, -1):
        left = 2 * node
        right = left + 1
        if keys_hi[left] < keys_hi[right] or (
            keys_hi[left] == keys_hi[right] and keys_lo[left] <= keys_lo[right]
        ):
            keys_hi[node] = keys_hi[left]
            keys_lo[node] = keys_lo[left]
        else:
            keys_hi[node] = keys_hi[right]
            keys_lo[node] = keys_lo[right]


@njit(cache=True)
def seg_range_min(keys_hi, keys_lo, size, lo, hi):
    """Minimum pair over positions ``[lo, hi)``; the pair sentinel if empty."""
    best_hi = np.uint64(0xFFFFFFFFFFFFFFFF)
    best_lo = np.int64(1) << np.int64(62)
    lo += size
    hi += size
    while lo < hi:
        if lo & 1:
            if keys_hi[lo] < best_hi or (keys_hi[lo] == best_hi and keys_lo[lo] < best_lo):
                best_hi = keys_hi[lo]
                best_lo = keys_lo[lo]
            lo += 1
        if hi & 1:
            hi -= 1
            if keys_hi[hi] < best_hi or (keys_hi[hi] == best_hi and keys_lo[hi] < best_lo):
                best_hi = keys_hi[hi]
                best_lo = keys_lo[hi]
        lo >>= 1
        hi >>= 1
    return best_hi, best_lo
