"""Optional compiled-kernel layer (Numba-or-nothing).

A handful of construction loops are irreducibly scalar — induced sorting for
SA-IS, the trie-topology stack loop, Kasai's LCP recurrence, the MWST-SE
segment-tree DFS.  When :mod:`numba` is importable those loops run as
``@njit``-compiled kernels; otherwise (the only hard dependency of this
package is numpy) they run as pure-Python/numpy fallbacks that are
bit-identical and exercised by the same test suite.

The environment variable ``REPRO_KERNELS`` controls detection:

* ``auto`` (default, or unset): use numba when importable;
* ``off`` / ``0`` / ``python`` / ``disabled``: force the pure-Python engine
  even when numba is installed;
* ``numba`` / ``require``: fail loudly if numba is missing, for CI legs that
  must not silently fall back.

``engine()`` reports the resolved choice (``"python"`` or ``"numba"``) so
benchmark reports and ``build --json`` can record provenance.
"""

from __future__ import annotations

import os

__all__ = [
    "NUMBA",
    "engine",
    "njit",
    "record_stage",
    "collect_stages",
    "stage_timer",
]

_OFF_VALUES = {"off", "0", "no", "false", "python", "disable", "disabled"}
_REQUIRE_VALUES = {"numba", "require", "required"}


def _detect():
    choice = os.environ.get("REPRO_KERNELS", "auto").strip().lower()
    if choice in _OFF_VALUES:
        return None
    try:
        import numba  # noqa: PLC0415 - optional dependency probe
    except Exception as exc:  # pragma: no cover - depends on environment
        if choice in _REQUIRE_VALUES:
            raise ImportError(
                "REPRO_KERNELS=%r requires numba, which is not importable" % choice
            ) from exc
        return None
    return numba


_numba = _detect()
NUMBA = _numba is not None


def engine() -> str:
    """The resolved kernel engine: ``"numba"`` or ``"python"``."""
    return "numba" if NUMBA else "python"


def njit(*args, **kwargs):
    """``numba.njit`` when available, an identity decorator otherwise.

    The decorated functions are written in the nopython subset but remain
    valid plain Python over numpy arrays, so the fallback engine runs the
    same code uncompiled (or a hand-tuned list-based twin where that is
    faster — see :mod:`repro._kernels.trie`).
    """
    if NUMBA:  # pragma: no cover - numba absent in the test container
        return _numba.njit(*args, **kwargs)
    if len(args) == 1 and callable(args[0]) and not kwargs:
        return args[0]

    def decorate(function):
        return function

    return decorate


from .timing import collect_stages, record_stage, stage_timer  # noqa: E402
