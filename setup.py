"""Legacy setup shim.

Kept so that ``pip install -e .`` works on offline machines where the
``wheel`` package (needed by the PEP 517 build path) is unavailable; all
project metadata lives in ``pyproject.toml`` / ``setup.cfg``.
"""

from setuptools import setup

setup()
