"""The serving layer: QueryService caching semantics and the serve/query CLI."""

from __future__ import annotations

import io
import json

import pytest

from test_oracle_equivalence import random_source

from repro.cli import main as cli_main
from repro.errors import PatternError
from repro.indexes import Query, build_index
from repro.io.pwm import write_pwm
from repro.service import QueryService

Z = 4.0
ELL = 4


@pytest.fixture(scope="module")
def source():
    return random_source(40, 2, 11)


@pytest.fixture(scope="module")
def index(source):
    return build_index(source, Z, kind="MWSA", ell=ELL)


def text_of(source, codes) -> str:
    return source.alphabet.decode(codes)


class TestQueryServiceCache:
    def test_hits_misses_and_identical_answers(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        first = service.query(pattern)
        second = service.query(pattern)
        assert first.positions == index.locate(pattern)
        assert second is first  # served from the cache
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert 0.0 < stats["hit_rate"] <= 0.5
        assert stats["entries"] == 1

    def test_text_and_code_patterns_share_one_entry(self, index, source):
        service = QueryService(index)
        codes = [0, 1, 1, 0]
        service.query(codes)
        result = service.query(text_of(source, codes))
        assert service.stats() == {**service.stats(), "hits": 1, "misses": 1}
        assert result.positions == index.locate(codes)

    def test_mode_and_threshold_are_part_of_the_key(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        service.query(pattern)
        service.query(pattern, mode="count")
        service.query(pattern, z=2.0)
        assert service.stats()["misses"] == 3
        assert service.stats()["hits"] == 0

    def test_batch_duplicates_counted_as_hits(self, index):
        service = QueryService(index)
        pattern = [0, 0, 1, 0]
        results = service.query_many([pattern, pattern, pattern])
        stats = service.stats()
        assert stats["misses"] == 1 and stats["hits"] == 2
        assert results[0] is results[1] is results[2]

    def test_lru_eviction(self, index):
        service = QueryService(index, cache_size=2)
        patterns = ([0, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0])
        for pattern in patterns:
            service.query(pattern)
        stats = service.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        # The oldest entry was evicted: repeating it is a miss again.
        service.query(patterns[0])
        assert service.stats()["misses"] == 4

    def test_cache_disabled(self, index):
        service = QueryService(index, cache_enabled=False)
        pattern = [0, 1, 0, 0]
        first = service.query(pattern)
        second = service.query(pattern)
        stats = service.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert stats["entries"] == 0 and stats["cache_enabled"] is False
        assert first.positions == second.positions

    def test_options_with_prebuilt_query_rejected(self, index):
        from repro.errors import QueryError

        service = QueryService(index)
        with pytest.raises(QueryError, match="prebuilt Query"):
            service.query(Query([0, 1, 0, 0]), mode="count")

    def test_rich_modes_match_index(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        topk = service.query(pattern, mode="topk", k=2)
        assert list(zip(topk.positions, topk.probabilities)) == index.topk(pattern, 2)
        sweep = service.query(Query(pattern, mode="count", zs=(2.0, Z)))
        assert [sub.count for sub in sweep.sweep] == [
            index.query(pattern, mode="count", z=z).count for z in (2.0, Z)
        ]

    def test_clear_cache_and_reset_stats(self, index):
        service = QueryService(index)
        service.query([0, 1, 0, 0])
        service.clear_cache()
        assert service.stats()["entries"] == 0
        assert service.stats()["misses"] == 1
        service.reset_stats()
        assert service.stats()["misses"] == 0

    def test_errors_propagate_and_leave_stats_untouched(self, index):
        service = QueryService(index)
        with pytest.raises(PatternError):
            service.query([0])  # shorter than ell
        stats = service.stats()
        assert stats["entries"] == 0
        assert stats["queries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert service.query([0, 1, 0, 0]).positions == index.locate([0, 1, 0, 0])
        assert service.stats()["misses"] == 1


@pytest.fixture()
def pwm_path(tmp_path, paper_example):
    path = tmp_path / "example.pwm"
    write_pwm(path, paper_example)
    return path


def build_args(pwm_path, *extra, kind="MWSA"):
    return ["--pwm", str(pwm_path), "--z", "4", "--kind", kind, "--ell", "4", *extra]


class TestQueryModeCli:
    def test_query_probs_json_schema(self, pwm_path, capsys):
        assert (
            cli_main(["query", *build_args(pwm_path), "--probs", "--json", "AAAA"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.query.v1"
        assert payload["mode"] == "locate_probs"
        assert payload["elapsed_seconds"] >= 0
        (result,) = payload["results"]
        assert result["positions"] == [0]
        assert result["probabilities"] == [pytest.approx(0.3, abs=1e-12)]

    def test_query_topk(self, pwm_path, capsys):
        # The WSA baseline serves patterns of any length >= 1.
        assert (
            cli_main(["query", *build_args(pwm_path, kind="WSA"), "--topk", "2", "AB"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "topk"
        result = payload["results"]["AB"]
        assert result["positions"][0] == 0
        assert len(result["positions"]) == 2
        assert result["probabilities"][0] >= result["probabilities"][1]

    def test_query_batch_count_mode_json(self, pwm_path, capsys):
        assert (
            cli_main(
                ["query-batch", *build_args(pwm_path), "--mode", "count", "--json",
                 "AAAA", "AAAA", "ABAA"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns"] == 3
        assert payload["unique_patterns"] == 2
        assert payload["patterns_per_second"] > 0
        counts = {r["pattern"]: r["count"] for r in payload["results"]}
        assert counts["AAAA"] == 1

    def test_pattern_error_exit_code_two(self, pwm_path, capsys):
        assert cli_main(["query", *build_args(pwm_path), "AA"]) == 2
        assert "error" in capsys.readouterr().err
        assert cli_main(["query", *build_args(pwm_path), ""]) == 2
        assert "empty patterns" in capsys.readouterr().err

    def test_conflicting_mode_flags_rejected(self, pwm_path, capsys):
        assert (
            cli_main(
                ["query", *build_args(pwm_path), "--mode", "count", "--topk", "2", "AAAA"]
            )
            == 1
        )
        assert "--topk" in capsys.readouterr().err
        assert cli_main(["query", *build_args(pwm_path), "--mode", "topk", "AAAA"]) == 1


class TestServeCli:
    def _serve(self, monkeypatch, capsys, pwm_path, script, *extra, kind="MWSA"):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = cli_main(["serve", *build_args(pwm_path, kind=kind), *extra])
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        return exit_code, lines

    def test_serve_loop(self, monkeypatch, capsys, pwm_path):
        script = (
            "AAAA\n"
            '{"pattern": "AB", "mode": "topk", "k": 2}\n'
            "AAAA\n"
            "stats\n"
        )
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, script, kind="WSA"
        )
        assert exit_code == 0
        locate, topk, repeat, stats, final = lines
        assert locate["positions"] == [0] and locate["cached"] is False
        assert topk["mode"] == "topk" and len(topk["positions"]) == 2
        assert repeat["cached"] is True
        assert stats["stats"]["hits"] == 1 and stats["stats"]["misses"] == 2
        assert final["stats"]["queries"] == 3

    def test_serve_bad_requests_keep_the_loop_alive(self, monkeypatch, capsys, pwm_path):
        script = "AAA\n{broken json\n" + '{"mode": "locate"}\n' + "AAAA\n"
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        too_short, bad_json, no_pattern, good, final = lines
        assert "length >= 4" in too_short["error"]
        assert "invalid JSON" in bad_json["error"]
        assert "'pattern' field" in no_pattern["error"]
        assert good["positions"] == [0]
        assert final["stats"]["queries"] == 1

    def test_serve_survives_wrongly_typed_requests(self, monkeypatch, capsys, pwm_path):
        """Structurally broken field types produce error lines, not crashes."""
        script = (
            '{"pattern": "AAAA", "mode": "topk", "k": "x"}\n'
            '{"pattern": "AAAA", "zs": 2}\n'
            '{"pattern": 5}\n'
            "AAAA\n"
        )
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        bad_k, bad_zs, bad_pattern, good, final = lines
        assert "k must be an integer" in bad_k["error"]
        assert "error" in bad_zs and "error" in bad_pattern
        assert good["positions"] == [0]
        assert final["stats"]["queries"] == 1

    def test_serve_no_cache(self, monkeypatch, capsys, pwm_path):
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, "AAAA\nAAAA\n", "--no-cache"
        )
        assert exit_code == 0
        assert [line["cached"] for line in lines[:2]] == [False, False]
        assert lines[-1]["stats"]["cache_enabled"] is False

    def test_serve_multi_z_sweep_request(self, monkeypatch, capsys, pwm_path):
        script = '{"pattern": "AB", "mode": "count", "zs": [2, 4]}\n'
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, script, kind="WSA"
        )
        assert exit_code == 0
        response = lines[0]
        assert [entry["z"] for entry in response["sweep"]] == [2.0, 4.0]

    def test_serve_empty_sweep_is_an_error_not_a_single_z_answer(
        self, monkeypatch, capsys, pwm_path
    ):
        script = '{"pattern": "AAAA", "zs": []}\n'
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        assert "at least one z" in lines[0]["error"]
