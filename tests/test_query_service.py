"""The serving layer: QueryService caching semantics and the serve/query CLI."""

from __future__ import annotations

import io
import json

import pytest

from test_oracle_equivalence import random_source

from repro.cli import main as cli_main
from repro.errors import PatternError
from repro.indexes import Query, build_index
from repro.io.pwm import write_pwm
from repro.service import QueryService

Z = 4.0
ELL = 4


@pytest.fixture(scope="module")
def source():
    return random_source(40, 2, 11)


@pytest.fixture(scope="module")
def index(source):
    return build_index(source, Z, kind="MWSA", ell=ELL)


def text_of(source, codes) -> str:
    return source.alphabet.decode(codes)


class TestQueryServiceCache:
    def test_hits_misses_and_identical_answers(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        first = service.query(pattern)
        second = service.query(pattern)
        assert first.positions == index.locate(pattern)
        assert second is first  # served from the cache
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert 0.0 < stats["hit_rate"] <= 0.5
        assert stats["entries"] == 1

    def test_text_and_code_patterns_share_one_entry(self, index, source):
        service = QueryService(index)
        codes = [0, 1, 1, 0]
        service.query(codes)
        result = service.query(text_of(source, codes))
        assert service.stats() == {**service.stats(), "hits": 1, "misses": 1}
        assert result.positions == index.locate(codes)

    def test_mode_and_threshold_are_part_of_the_key(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        service.query(pattern)
        service.query(pattern, mode="count")
        service.query(pattern, z=2.0)
        assert service.stats()["misses"] == 3
        assert service.stats()["hits"] == 0

    def test_batch_duplicates_counted_as_hits(self, index):
        service = QueryService(index)
        pattern = [0, 0, 1, 0]
        results = service.query_many([pattern, pattern, pattern])
        stats = service.stats()
        assert stats["misses"] == 1 and stats["hits"] == 2
        assert results[0] is results[1] is results[2]

    def test_lru_eviction(self, index):
        service = QueryService(index, cache_size=2)
        patterns = ([0, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0])
        for pattern in patterns:
            service.query(pattern)
        stats = service.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        # The oldest entry was evicted: repeating it is a miss again.
        service.query(patterns[0])
        assert service.stats()["misses"] == 4

    def test_cache_disabled(self, index):
        service = QueryService(index, cache_enabled=False)
        pattern = [0, 1, 0, 0]
        first = service.query(pattern)
        second = service.query(pattern)
        stats = service.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert stats["entries"] == 0 and stats["cache_enabled"] is False
        assert first.positions == second.positions

    def test_options_with_prebuilt_query_rejected(self, index):
        from repro.errors import QueryError

        service = QueryService(index)
        with pytest.raises(QueryError, match="prebuilt Query"):
            service.query(Query([0, 1, 0, 0]), mode="count")

    def test_rich_modes_match_index(self, index):
        service = QueryService(index)
        pattern = [0, 1, 0, 0]
        topk = service.query(pattern, mode="topk", k=2)
        assert list(zip(topk.positions, topk.probabilities)) == index.topk(pattern, 2)
        sweep = service.query(Query(pattern, mode="count", zs=(2.0, Z)))
        assert [sub.count for sub in sweep.sweep] == [
            index.query(pattern, mode="count", z=z).count for z in (2.0, Z)
        ]

    def test_clear_cache_and_reset_stats(self, index):
        service = QueryService(index)
        service.query([0, 1, 0, 0])
        service.clear_cache()
        assert service.stats()["entries"] == 0
        assert service.stats()["misses"] == 1
        service.reset_stats()
        assert service.stats()["misses"] == 0

    def test_errors_propagate_and_leave_stats_untouched(self, index):
        service = QueryService(index)
        with pytest.raises(PatternError):
            service.query([0])  # shorter than ell
        stats = service.stats()
        assert stats["entries"] == 0
        assert stats["queries"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert service.query([0, 1, 0, 0]).positions == index.locate([0, 1, 0, 0])
        assert service.stats()["misses"] == 1


class TestDedupAccounting:
    """Pin the served-traffic accounting: in-batch duplicates count as hits."""

    def test_dedup_hits_counted_into_hit_rate(self, index):
        service = QueryService(index)
        pattern = [0, 0, 1, 0]
        service.query_many([pattern, pattern, pattern, [0, 1, 0, 0]])
        stats = service.stats()
        assert stats["misses"] == 2
        assert stats["cache_hits"] == 0
        assert stats["dedup_hits"] == 2
        assert stats["hits"] == stats["cache_hits"] + stats["dedup_hits"] == 2
        assert stats["hit_rate"] == pytest.approx(0.5)
        # A repeat of the now-cached pattern is a true cache hit.
        service.query(pattern)
        stats = service.stats()
        assert stats["cache_hits"] == 1 and stats["dedup_hits"] == 2
        assert stats["hits"] == 3

    def test_dedup_hits_still_counted_with_cache_disabled(self, index):
        service = QueryService(index, cache_enabled=False)
        pattern = [0, 1, 0, 0]
        results = service.query_many([pattern, pattern])
        assert results[0] is results[1]  # deduplicated, one execution
        stats = service.stats()
        assert stats["misses"] == 1 and stats["dedup_hits"] == 1
        assert stats["cache_hits"] == 0
        assert stats["hit_rate"] == pytest.approx(0.5)


def fresh_update_fixture():
    """A service over a 3-letter index whose updates we fully control.

    Positions 0..5 spell certain 'ABABAB'; 6 and 8..11 are certain 'C';
    position 7 is uncertain ``{A: 0.5, B: 0.25, C: 0.25}``.  Built per-test
    (module fixtures must stay pristine across mutation tests).
    """
    import numpy as np

    from repro.core.alphabet import Alphabet
    from repro.core.weighted_string import WeightedString

    matrix = np.zeros((12, 3))
    for position in range(6):
        matrix[position, position % 2] = 1.0  # A B A B A B
    matrix[6:, 2] = 1.0  # C C C C C C
    matrix[7] = [0.5, 0.25, 0.25]
    source = WeightedString(matrix, Alphabet("ABC"))
    service_index = build_index(source, Z, kind="MWSA", ell=2)
    return source, service_index, QueryService(service_index)


class TestUpdateInvalidation:
    def test_changed_entry_never_served_stale(self):
        source, index, service = fresh_update_fixture()
        before = service.query("ABAB").positions
        assert 0 in before
        response = service.update([(1, {"C": 1.0})])  # breaks every ABAB hit
        assert response["invalidated_entries"] == 1
        after = service.query("ABAB")
        assert after.positions == index.locate("ABAB")
        assert 0 not in after.positions
        stats = service.stats()
        assert stats["misses"] == 2  # the post-update query re-executed
        assert stats["updates"] == 1 and stats["invalidations"] == 1
        assert stats["generation"] == 1 and stats["index_generation"] == 1

    def test_unaffected_entries_survive_and_hit(self):
        source, index, service = fresh_update_fixture()
        survivor = service.query("ABA").positions
        # Every probed 'ABA' probability around position 10 is 0 before and
        # after (position 8..11 carry no A/B mass either way): the entry's
        # answer cannot have changed and must survive.
        response = service.update([(10, {"B": 0.3, "C": 0.7})])
        assert response["invalidated_entries"] == 0
        assert response["surviving_entries"] == 1
        hits_before = service.stats()["cache_hits"]
        again = service.query("ABA")
        assert service.stats()["cache_hits"] == hits_before + 1
        assert again.positions == survivor == index.locate("ABA")

    def test_probability_neutral_update_keeps_entry(self):
        source, index, service = fresh_update_fixture()
        service.query("AC")  # occurs at 7 via P(A@7) = 0.5, P(C@8) = 1
        # The update only moves the B/C split at position 7; P(A@7) stays
        # exactly 0.5, so every probed 'AC' probability is bit-identical.
        # Exact binary fractions summing to 1.0: renormalization is a no-op
        # and P(A@7) keeps its exact bits.
        response = service.update([(7, {"A": 0.5, "B": 0.125, "C": 0.375})])
        assert response["invalidated_entries"] == 0
        hits_before = service.stats()["cache_hits"]
        service.query("AC")
        assert service.stats()["cache_hits"] == hits_before + 1

    def test_update_invalidates_only_affected_among_many(self):
        source, index, service = fresh_update_fixture()
        service.query("ABAB")   # touches position 1
        service.query("BA")     # touches position 1 via starts {0,1}
        service.query("AA")     # tail-only pattern, P=0.25 per A at 6..11
        response = service.update([(1, {"A": 0.5, "B": 0.5})])
        # P(A at 1) goes 0 → 0.5, which moves probed probabilities of all
        # three patterns (e.g. 'AA' at start 0 goes 0 → 0.5): all are
        # affected, none may be served stale.
        assert response["invalidated_entries"] == 3
        for pattern in ("ABAB", "BA", "AA"):
            assert service.query(pattern).positions == index.locate(pattern)

    def test_update_with_cache_disabled(self):
        source, index, service_ignored = fresh_update_fixture()
        service = QueryService(index, cache_enabled=False)
        response = service.update([(0, {"B": 1.0})])
        assert response["invalidated_entries"] == 0
        assert service.query("BB").positions == index.locate("BB")

    def test_mode_specific_entries_checked_independently(self):
        source, index, service = fresh_update_fixture()
        service.query("ABAB", mode="count")
        service.query("ABAB", mode="topk", k=2)
        response = service.update([(1, {"C": 1.0})])
        assert response["invalidated_entries"] == 2
        assert service.query("ABAB", mode="count").count == index.count("ABAB")


class TestWarmRewarm:
    """Warm-log entries invalidated by an update must be re-warmed.

    Without re-warming, an updated hot pattern misses on its first
    post-update request even though the operator declared it hot — the
    warm-up's whole point.  ``warm(..., remember=True)`` keeps the warm set
    and :meth:`QueryService.rewarm` re-executes exactly the invalidated
    entries from inside ``update`` / ``adopt_index``.
    """

    def test_update_rewarms_invalidated_warm_entries(self):
        source, index, service = fresh_update_fixture()
        warm = service.warm(["ABAB", "CC", "ABAB"], remember=True)
        assert warm["warmed"] == 2
        # Breaks every ABAB occurrence; 'CC' stays probability-0 over the
        # probed starts and survives.
        response = service.update([(1, {"C": 1.0})])
        assert response["invalidated_entries"] == 1
        assert response["rewarmed_entries"] == 1
        # First post-update wave: the unaffected pattern hits its surviving
        # entry, the affected one hits its re-warmed entry.
        hits_before = service.stats()["cache_hits"]
        wave = service.query_many(["ABAB", "CC"])
        assert service.stats()["cache_hits"] == hits_before + 2
        # ...and the re-warmed entry is the post-update answer, not stale.
        assert wave[0].positions == index.locate("ABAB")
        assert service.stats()["rewarms"] == 1
        assert service.stats()["warm_set"] == 2

    def test_without_remember_no_rewarm(self):
        source, index, service = fresh_update_fixture()
        service.warm(["ABAB"])
        response = service.update([(1, {"C": 1.0})])
        assert response["invalidated_entries"] == 1
        assert response["rewarmed_entries"] == 0
        hits_before = service.stats()["cache_hits"]
        service.query("ABAB")  # miss: nothing re-warmed it
        assert service.stats()["cache_hits"] == hits_before

    def test_adopt_index_rewarms_invalidated_warm_entries(self):
        import numpy as np

        from repro.core.weighted_string import WeightedString

        source, index, service = fresh_update_fixture()
        service.warm(["ABAB", "CC"], remember=True)
        matrix = np.array(source.matrix, copy=True)
        matrix[1] = [0.0, 0.0, 1.0]  # B -> C at position 1
        new_source = WeightedString(matrix, source.alphabet)
        new_index = build_index(new_source, Z, kind="MWSA", ell=2)
        report = service.adopt_index(new_index, positions=[1], generation=5)
        assert report["invalidated_entries"] == 1
        assert report["rewarmed_entries"] == 1
        assert report["service_generation"] == 5
        hits_before = service.stats()["cache_hits"]
        wave = service.query_many(["ABAB", "CC"])
        assert service.stats()["cache_hits"] == hits_before + 2
        assert wave[0].positions == new_index.locate("ABAB")


@pytest.fixture()
def pwm_path(tmp_path, paper_example):
    path = tmp_path / "example.pwm"
    write_pwm(path, paper_example)
    return path


def build_args(pwm_path, *extra, kind="MWSA"):
    return ["--pwm", str(pwm_path), "--z", "4", "--kind", kind, "--ell", "4", *extra]


class TestQueryModeCli:
    def test_query_probs_json_schema(self, pwm_path, capsys):
        assert (
            cli_main(["query", *build_args(pwm_path), "--probs", "--json", "AAAA"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.query.v1"
        assert payload["mode"] == "locate_probs"
        assert payload["elapsed_seconds"] >= 0
        (result,) = payload["results"]
        assert result["positions"] == [0]
        assert result["probabilities"] == [pytest.approx(0.3, abs=1e-12)]

    def test_query_topk(self, pwm_path, capsys):
        # The WSA baseline serves patterns of any length >= 1.
        assert (
            cli_main(["query", *build_args(pwm_path, kind="WSA"), "--topk", "2", "AB"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "topk"
        result = payload["results"]["AB"]
        assert result["positions"][0] == 0
        assert len(result["positions"]) == 2
        assert result["probabilities"][0] >= result["probabilities"][1]

    def test_query_batch_count_mode_json(self, pwm_path, capsys):
        assert (
            cli_main(
                ["query-batch", *build_args(pwm_path), "--mode", "count", "--json",
                 "AAAA", "AAAA", "ABAA"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns"] == 3
        assert payload["unique_patterns"] == 2
        assert payload["patterns_per_second"] > 0
        counts = {r["pattern"]: r["count"] for r in payload["results"]}
        assert counts["AAAA"] == 1

    def test_pattern_error_exit_code_two(self, pwm_path, capsys):
        assert cli_main(["query", *build_args(pwm_path), "AA"]) == 2
        assert "error" in capsys.readouterr().err
        assert cli_main(["query", *build_args(pwm_path), ""]) == 2
        assert "empty patterns" in capsys.readouterr().err

    def test_conflicting_mode_flags_rejected(self, pwm_path, capsys):
        assert (
            cli_main(
                ["query", *build_args(pwm_path), "--mode", "count", "--topk", "2", "AAAA"]
            )
            == 1
        )
        assert "--topk" in capsys.readouterr().err
        assert cli_main(["query", *build_args(pwm_path), "--mode", "topk", "AAAA"]) == 1


class TestServeCli:
    def _serve(self, monkeypatch, capsys, pwm_path, script, *extra, kind="MWSA"):
        monkeypatch.setattr("sys.stdin", io.StringIO(script))
        exit_code = cli_main(["serve", *build_args(pwm_path, kind=kind), *extra])
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        return exit_code, lines

    def test_serve_loop(self, monkeypatch, capsys, pwm_path):
        script = (
            "AAAA\n"
            '{"pattern": "AB", "mode": "topk", "k": 2}\n'
            "AAAA\n"
            "stats\n"
        )
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, script, kind="WSA"
        )
        assert exit_code == 0
        locate, topk, repeat, stats, final = lines
        assert locate["positions"] == [0] and locate["cached"] is False
        assert topk["mode"] == "topk" and len(topk["positions"]) == 2
        assert repeat["cached"] is True
        assert stats["stats"]["hits"] == 1 and stats["stats"]["misses"] == 2
        assert final["stats"]["queries"] == 3

    def test_serve_update_op(self, monkeypatch, capsys, pwm_path):
        script = (
            "AAAA\n"
            '{"cmd": "update", "updates": [{"position": 0, "distribution": {"B": 1.0}}]}\n'
            "AAAA\n"
            "stats\n"
        )
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        before, update, after, stats, final = lines
        assert before["positions"] == [0]
        assert update["update"]["positions"] == [0]
        assert update["update"]["strategy"] in {"localized", "full-rebuild"}
        assert update["update"]["invalidated_entries"] == 1
        assert after["positions"] == []  # the update killed the occurrence
        assert after["cached"] is False
        assert stats["stats"]["updates"] == 1
        assert stats["stats"]["index_generation"] == 1

    def test_serve_malformed_update_keeps_loop_alive(self, monkeypatch, capsys, pwm_path):
        script = '{"cmd": "update", "updates": [{"position": 999}]}\nAAAA\n'
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        bad, good, final = lines
        assert "position" in bad["error"]
        assert good["positions"] == [0]

    def test_serve_update_must_be_explicit(self, monkeypatch, capsys, pwm_path):
        """A stray 'updates' field on a query must error, never mutate."""
        script = (
            '{"pattern": "AAAA", "updates": [{"position": 0, "distribution": {"B": 1.0}}]}\n'
            '{"cmd": "update", "pattern": "AAAA", "updates": []}\n'
            "AAAA\n"
        )
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        stray, mixed, query, final = lines
        assert "cmd" in stray["error"]
        assert "pattern" in mixed["error"]
        # The index was never mutated: AAAA still occurs at 0.
        assert query["positions"] == [0]
        assert final["stats"]["updates"] == 0

    def test_serve_bad_requests_keep_the_loop_alive(self, monkeypatch, capsys, pwm_path):
        script = "AAA\n{broken json\n" + '{"mode": "locate"}\n' + "AAAA\n"
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        too_short, bad_json, no_pattern, good, final = lines
        assert "length >= 4" in too_short["error"]
        assert "invalid JSON" in bad_json["error"]
        assert "'pattern' field" in no_pattern["error"]
        assert good["positions"] == [0]
        assert final["stats"]["queries"] == 1

    def test_serve_survives_wrongly_typed_requests(self, monkeypatch, capsys, pwm_path):
        """Structurally broken field types produce error lines, not crashes."""
        script = (
            '{"pattern": "AAAA", "mode": "topk", "k": "x"}\n'
            '{"pattern": "AAAA", "zs": 2}\n'
            '{"pattern": 5}\n'
            "AAAA\n"
        )
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        bad_k, bad_zs, bad_pattern, good, final = lines
        assert "k must be an integer" in bad_k["error"]
        assert "error" in bad_zs and "error" in bad_pattern
        assert good["positions"] == [0]
        assert final["stats"]["queries"] == 1

    def test_serve_no_cache(self, monkeypatch, capsys, pwm_path):
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, "AAAA\nAAAA\n", "--no-cache"
        )
        assert exit_code == 0
        assert [line["cached"] for line in lines[:2]] == [False, False]
        assert lines[-1]["stats"]["cache_enabled"] is False

    def test_serve_multi_z_sweep_request(self, monkeypatch, capsys, pwm_path):
        script = '{"pattern": "AB", "mode": "count", "zs": [2, 4]}\n'
        exit_code, lines = self._serve(
            monkeypatch, capsys, pwm_path, script, kind="WSA"
        )
        assert exit_code == 0
        response = lines[0]
        assert [entry["z"] for entry in response["sweep"]] == [2.0, 4.0]

    def test_serve_empty_sweep_is_an_error_not_a_single_z_answer(
        self, monkeypatch, capsys, pwm_path
    ):
        script = '{"pattern": "AAAA", "zs": []}\n'
        exit_code, lines = self._serve(monkeypatch, capsys, pwm_path, script)
        assert exit_code == 0
        assert "at least one z" in lines[0]["error"]


class TestUpdateCli:
    def test_update_single_file_store(self, tmp_path, pwm_path, capsys):
        store = tmp_path / "example.idx"
        assert cli_main(["build", *build_args(pwm_path), "--store", str(store)]) == 0
        capsys.readouterr()
        updates = tmp_path / "updates.json"
        updates.write_text(
            json.dumps([{"position": 0, "distribution": {"B": 1.0}}])
        )
        assert (
            cli_main(["update", "--store", str(store), "--updates-file", str(updates)])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["positions"] == [0]
        assert payload["store"]["path"] == str(store)
        # The rewritten store serves the mutated string: AAAA no longer occurs.
        assert cli_main(["query", "--store", str(store), "--json", "AAAA"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["results"][0]["positions"] == []

    def test_update_directory_store_rewrites_dirty_shards_only(self, tmp_path, capsys):
        import numpy as np

        from repro.core.alphabet import Alphabet
        from repro.core.weighted_string import WeightedString

        rng = np.random.default_rng(21)
        matrix = np.full((60, 2), 0.1)
        matrix[np.arange(60), rng.integers(0, 2, 60)] = 0.9
        write_path = tmp_path / "big.pwm"
        write_pwm(write_path, WeightedString(matrix, Alphabet("AB"), normalize=True))
        store = tmp_path / "shards"
        assert (
            cli_main(
                ["build", "--pwm", str(write_path), "--z", "4", "--ell", "4",
                 "--kind", "MWSA", "--shards", "3", "--store-dir", str(store)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            cli_main(
                ["update", "--store", str(store), "--updates",
                 '[{"position": 1, "distribution": {"A": 1.0}}]']
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "dirty-shards"
        assert payload["store"]["rewritten"] == payload["rebuilt_shards"] == [0]
        assert payload["store"]["skipped"] == 2

    def test_update_requires_exactly_one_source_of_updates(self, tmp_path, pwm_path, capsys):
        store = tmp_path / "example.idx"
        assert cli_main(["build", *build_args(pwm_path), "--store", str(store)]) == 0
        capsys.readouterr()
        assert cli_main(["update", "--store", str(store)]) == 1
        assert "exactly one" in capsys.readouterr().err


class TestCacheKeyValidation:
    """The cache-hit validation bypass: an invalid pattern must raise on the
    warm path exactly as it does on the cold path.

    numpy truncates floats on ``astype(int64)`` (``[0.9] -> [0]``), so before
    the fix a float pattern's cache key collided with the valid pattern it
    truncated to and was silently served that entry's answer.
    """

    def test_float_pattern_rejected_against_warm_cache(self, index):
        service = QueryService(index)
        valid = [0, 1, 0, 0]
        warmed = service.query(valid)
        # Both truncate to the warmed key ([0.9] -> [0], [-0.5] -> [0]):
        # before the fix these were silent cache hits with the wrong answer.
        for bad in ([0.9, 1, 0, 0], [-0.5, 1, 0, 0]):
            with pytest.raises(PatternError):
                service.query(bad)
        # The cached entry is untouched and still served for the real key.
        assert service.query(valid) is warmed
        stats = service.stats()
        assert stats["queries"] == 2  # failed requests never count
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_float_pattern_rejected_against_cold_cache(self, index):
        service = QueryService(index)
        with pytest.raises(PatternError):
            service.query([0.9, 1, 0, 0])
        assert service.stats()["queries"] == 0

    def test_out_of_range_code_rejected_cold_and_warm(self, index):
        service = QueryService(index)
        with pytest.raises(PatternError):
            service.query([9, 1, 0, 0])  # cold cache
        service.query([0, 1, 0, 0])
        with pytest.raises(PatternError):
            service.query([9, 1, 0, 0])  # warm cache
        stats = service.stats()
        assert stats["queries"] == 1 and stats["misses"] == 1

    def test_validate_rejects_what_execution_would(self, index):
        """Admission-time validation agrees with the execution paths."""
        from repro.errors import QueryError

        service = QueryService(index)
        returned = service.validate([0, 1, 0, 0])
        assert isinstance(returned, Query)
        for bad in ([0.9, 1, 0, 0], [9, 1, 0, 0], [0], ""):
            with pytest.raises(PatternError):
                service.validate(bad)
        with pytest.raises(QueryError, match="looser than the index"):
            service.validate(Query([0, 1, 0, 0], z=99.0))
        with pytest.raises(QueryError, match="looser than the index"):
            service.validate(Query([0, 1, 0, 0], mode="count", zs=(2.0, 99.0)))
        # A validated query executes without re-raising.
        assert service.query(returned).positions == index.locate([0, 1, 0, 0])


class TestProvenance:
    """Per-request cache provenance (a global hit-counter delta misattributes
    hits as soon as two requests are in flight)."""

    def test_query_many_reports_per_request_origins(self, index):
        service = QueryService(index)
        one, two = [0, 1, 0, 0], [1, 0, 1, 1]
        results, origins = service.query_many(
            [one, two, one, one], provenance=True
        )
        assert origins == ["miss", "miss", "dedup", "dedup"]
        assert results[0] is results[2] is results[3]
        results, origins = service.query_many([one, two], provenance=True)
        assert origins == ["cache", "cache"]

    def test_origins_with_cache_disabled(self, index):
        service = QueryService(index, cache_enabled=False)
        one = [0, 1, 0, 0]
        _, origins = service.query_many([one, one], provenance=True)
        assert origins == ["miss", "dedup"]
        # Nothing was cached: a later request misses again.
        _, origins = service.query_many([one], provenance=True)
        assert origins == ["miss"]

    def test_provenance_matches_counter_movement(self, index):
        service = QueryService(index)
        patterns = [[0, 1, 0, 0], [0, 1, 0, 0], [1, 0, 1, 1]]
        _, origins = service.query_many(patterns, provenance=True)
        stats = service.stats()
        assert origins.count("miss") == stats["misses"]
        assert origins.count("dedup") == stats["dedup_hits"]
        assert origins.count("cache") == stats["cache_hits"]


class _BrokenStdout:
    """A stdout whose pipe vanishes after ``works_for`` written lines."""

    def __init__(self, works_for: int) -> None:
        self.lines: list[str] = []
        self.works_for = works_for

    def write(self, text: str) -> None:
        if len(self.lines) >= self.works_for:
            raise BrokenPipeError("downstream consumer is gone")
        self.lines.append(text)

    def flush(self) -> None:
        if len(self.lines) > self.works_for:  # pragma: no cover
            raise BrokenPipeError("downstream consumer is gone")


class TestServeBrokenPipe:
    """The serve loop must exit 0 when its consumer closes the pipe
    (``repro-uncertain serve | head -1``), not traceback."""

    def test_broken_pipe_mid_stream_exits_cleanly(
        self, monkeypatch, pwm_path
    ):
        stdout = _BrokenStdout(works_for=1)
        monkeypatch.setattr("sys.stdin", io.StringIO("AAAA\nAAAA\nAAAA\n"))
        monkeypatch.setattr("sys.stdout", stdout)
        exit_code = cli_main(["serve", *build_args(pwm_path)])
        assert exit_code == 0
        # Exactly the delivered response; no stats line into a dead pipe.
        assert len(stdout.lines) == 1
        assert json.loads(stdout.lines[0])["positions"] == [0]

    def test_stdout_closed_before_first_response(self, monkeypatch, pwm_path):
        closed = io.StringIO()
        closed.close()  # writes raise ValueError("I/O operation on closed file")
        monkeypatch.setattr("sys.stdin", io.StringIO("AAAA\n"))
        monkeypatch.setattr("sys.stdout", closed)
        assert cli_main(["serve", *build_args(pwm_path)]) == 0


class TestWarm:
    def test_warm_prefills_most_frequent_patterns(self, index):
        service = QueryService(index, cache_size=2)
        log = [
            [0, 1, 0, 0], [0, 1, 0, 0], [1, 0, 1, 1],
            [0, 0, 1, 0], [0, 1, 0, 0],
        ]
        report = service.warm(log)
        assert report == {"warmed": 2, "skipped": 0, "patterns_seen": 5}
        after_warm = service.stats()
        # The first post-warm wave of the two most frequent patterns is all
        # cache hits (frequency ranks first, first appearance breaks ties).
        service.query([0, 1, 0, 0])
        service.query([1, 0, 1, 1])
        stats = service.stats()
        assert stats["hits"] - after_warm["hits"] == 2
        assert stats["misses"] == after_warm["misses"]

    def test_warm_skips_invalid_patterns(self, index):
        service = QueryService(index, cache_size=8)
        report = service.warm([[0, 1, 0, 0], [9, 9, 9, 9], [0]])
        assert report["warmed"] == 1
        assert report["skipped"] == 2
        assert report["patterns_seen"] == 3

    def test_warm_top_caps_below_capacity(self, index):
        service = QueryService(index, cache_size=100)
        report = service.warm([[0, 1, 0, 0], [1, 0, 1, 1]], top=1)
        assert report["warmed"] == 1

    def test_warm_with_cache_disabled_is_a_noop(self, index):
        service = QueryService(index, cache_enabled=False)
        report = service.warm([[0, 1, 0, 0]])
        assert report["warmed"] == 0
        assert service.stats()["queries"] == 0


class TestAdoptIndex:
    def _updated_clone(self, source, updates):
        from repro.core.weighted_string import WeightedString

        # A genuinely independent source: apply_updates on the clone must
        # not leak into the module-scoped index fixture.
        private = WeightedString(source.matrix.copy(), source.alphabet)
        clone = build_index(private, Z, kind="MWSA", ell=ELL)
        report = clone.apply_updates(updates)
        return clone, report.positions

    def test_adopt_invalidates_exactly_and_swaps_answers(self, index, source):
        service = QueryService(index)
        distant = [0, 1, 0, 0]
        # Prime the cache from both ends of the string: one pattern's window
        # covers the updated position, one cannot be affected.
        near_codes = index.source.matrix[:ELL].argmax(axis=1).tolist()
        service.query(near_codes)
        service.query(distant)
        updates = [(1, {"A": 0.55, "B": 0.45})]
        clone, positions = self._updated_clone(source, updates)
        report = service.adopt_index(clone, positions=positions, generation=7)
        assert report["service_generation"] == 7
        assert service.generation == 7
        assert report["invalidated_entries"] + report["surviving_entries"] == 2
        # Served answers now come from the adopted index.
        assert service.query(near_codes).positions == clone.locate(near_codes)
        assert service.query(distant).positions == clone.locate(distant)
        assert service.index is clone

    def test_adopt_without_positions_clears_everything(self, index, source):
        service = QueryService(index)
        service.query([0, 1, 0, 0])
        service.query([1, 0, 1, 1])
        from repro.core.weighted_string import WeightedString

        private = WeightedString(source.matrix.copy(), source.alphabet)
        clone = build_index(private, Z, kind="MWSA", ell=ELL)
        report = service.adopt_index(clone)
        assert report["invalidated_entries"] == 2
        assert report["surviving_entries"] == 0
        assert service.stats()["entries"] == 0
        # Generation advances by one when the supervisor did not pin it.
        assert service.generation == 1

    def test_adopt_keeps_unaffected_entries_hot(self, index, source):
        service = QueryService(index)
        distant = [0, 1, 0, 0]
        service.query(distant)
        updates = [(1, {"A": 0.55, "B": 0.45})]
        clone, positions = self._updated_clone(source, updates)
        # The pattern's occurrences cannot overlap position 1 only if its
        # probed window is unchanged; either way the contract holds: a hit
        # after adoption returns the adopted index's answer.
        service.adopt_index(clone, positions=positions)
        hits_before = service.stats()["hits"]
        result = service.query(distant)
        assert result.positions == clone.locate(distant)
        if service.stats()["hits"] > hits_before:
            # survived: the probed windows were bit-identical
            assert result.positions == index.locate(distant)
