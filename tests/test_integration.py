"""End-to-end and property-based integration tests.

These tests exercise the full pipeline — dataset generation → index
construction (all variants) → queries — and compare every answer against the
brute-force probability-product oracle, which is the library's ground truth.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Alphabet, WeightedString
from repro.datasets.genomes import efm_like
from repro.datasets.patterns import sample_valid_patterns
from repro.datasets.rssi import rssi_like
from repro.indexes import (
    INDEX_CLASSES,
    MinimizerWSA,
    SpaceEfficientMWST,
    WeightedSuffixArray,
    brute_force_occurrences,
    build_index,
)


class TestGenomicEndToEnd:
    def test_all_index_kinds_agree_on_genomic_data(self):
        source = efm_like(400, seed=21).weighted_string
        z, ell = 16, 12
        patterns = sample_valid_patterns(source, z, ell, 6, seed=2)
        patterns += sample_valid_patterns(source, z, ell + 6, 4, seed=3)
        indexes = [
            build_index(source, z, kind=kind, ell=ell) for kind in sorted(INDEX_CLASSES)
        ]
        for pattern in patterns:
            expected = brute_force_occurrences(source, pattern, z)
            assert expected, "sampled patterns must have at least one occurrence"
            for index in indexes:
                assert index.locate(pattern) == expected, index.name

    def test_negative_patterns_return_empty(self):
        source = efm_like(300, seed=22).weighted_string
        z, ell = 8, 10
        index = MinimizerWSA.build(source, z, ell)
        rng = random.Random(0)
        for _ in range(10):
            pattern = [rng.randrange(4) for _ in range(ell)]
            assert index.locate(pattern) == brute_force_occurrences(source, pattern, z)


class TestSensorEndToEnd:
    def test_rssi_queries_match_oracle(self):
        source = rssi_like(250, seed=33)
        z, ell = 8, 4
        patterns = sample_valid_patterns(source, z, ell, 8, seed=4)
        baseline = WeightedSuffixArray.build(source, z)
        minimizer = MinimizerWSA.build(source, z, ell)
        space_efficient = SpaceEfficientMWST.build(source, z, ell)
        for pattern in patterns:
            expected = brute_force_occurrences(source, pattern, z)
            assert baseline.locate(pattern) == expected
            assert minimizer.locate(pattern) == expected
            assert space_efficient.locate(pattern) == expected


@st.composite
def weighted_strings(draw):
    """Random small weighted strings over a binary alphabet."""
    length = draw(st.integers(min_value=4, max_value=14))
    rows = []
    for _ in range(length):
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0:
            rows.append({"A": 1.0})
        elif kind == 1:
            rows.append({"B": 1.0})
        else:
            weight = draw(st.integers(min_value=1, max_value=7))
            rows.append({"A": weight / 8, "B": 1 - weight / 8})
    # Pin the two-letter alphabet: an all-A draw must not shrink it to
    # size 1, since the pattern strategies draw codes over {0, 1}.
    return WeightedString.from_dicts(rows, alphabet=Alphabet(["A", "B"]))


class TestHypothesisIndexCorrectness:
    @settings(max_examples=20, deadline=None)
    @given(
        source=weighted_strings(),
        z=st.sampled_from([2, 4, 8]),
        pattern=st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=6),
    )
    def test_minimizer_wsa_matches_oracle(self, source, z, pattern):
        ell = 3
        index = MinimizerWSA.build(source, z, ell)
        assert index.locate(pattern) == brute_force_occurrences(source, pattern, z)

    @settings(max_examples=15, deadline=None)
    @given(
        source=weighted_strings(),
        z=st.sampled_from([2, 4, 8]),
        pattern=st.lists(st.integers(min_value=0, max_value=1), min_size=3, max_size=6),
    )
    def test_space_efficient_matches_oracle(self, source, z, pattern):
        ell = 3
        index = SpaceEfficientMWST.build(source, z, ell)
        assert index.locate(pattern) == brute_force_occurrences(source, pattern, z)

    @settings(max_examples=15, deadline=None)
    @given(source=weighted_strings(), z=st.sampled_from([2, 4, 8]))
    def test_baseline_matches_oracle_on_all_short_patterns(self, source, z):
        import itertools

        index = WeightedSuffixArray.build(source, z)
        for m in (1, 2, 3):
            for pattern in itertools.product(range(source.sigma), repeat=m):
                assert index.locate(list(pattern)) == brute_force_occurrences(
                    source, list(pattern), z
                )


class TestExampleScripts:
    def test_quickstart_example_runs(self, capsys):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "examples" / "quickstart.py"
        spec = importlib.util.spec_from_file_location("quickstart_example", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        output = capsys.readouterr().out
        assert "AAAA" in output and "4-estimation" in output
