"""Tests for repro.core.properties (property arrays and Occ_π)."""

import numpy as np
import pytest

from repro.core.properties import PropertyArray, property_occurrences
from repro.errors import WeightedStringError


class TestPropertyArray:
    def test_paper_example3(self):
        # (S2, π2) from Table 1: π2 = [4,4,5,6,6,6] (1-based) = [3,3,4,5,5,5] 0-based.
        prop = PropertyArray([3, 3, 4, 5, 5, 5])
        # P = AAA occurs at position 3 (1-based) = 2 (0-based): 2 + 3 - 1 <= π[2].
        assert prop.covers(2, 5)

    def test_from_lengths(self):
        prop = PropertyArray.from_lengths([2, 1, 1])
        assert list(prop.ends) == [1, 1, 2]
        assert prop.valid_length(0) == 2

    def test_full_and_empty(self):
        assert PropertyArray.full(4).valid_lengths().tolist() == [4, 3, 2, 1]
        assert PropertyArray.empty(4).valid_lengths().tolist() == [0, 0, 0, 0]

    def test_monotonicity_enforced(self):
        with pytest.raises(WeightedStringError):
            PropertyArray([3, 2, 2, 3])

    def test_bounds_enforced(self):
        with pytest.raises(WeightedStringError):
            PropertyArray([0, 1, 5])
        with pytest.raises(WeightedStringError):
            PropertyArray([-2, 0, 1])

    def test_dimensionality_enforced(self):
        with pytest.raises(WeightedStringError):
            PropertyArray(np.zeros((2, 2), dtype=int))

    def test_covers_edge_cases(self):
        prop = PropertyArray([1, 1, 2, 3])
        assert prop.covers(0, 0)          # empty window always covered
        assert prop.covers(0, 2)
        assert not prop.covers(0, 3)
        assert not prop.covers(7, 9)      # out of range start

    def test_total_covered_length(self):
        assert PropertyArray([1, 1, 2, 3]).total_covered_length() == 2 + 1 + 1 + 1

    def test_equality_and_repr(self):
        assert PropertyArray([0, 1]) == PropertyArray([0, 1])
        assert PropertyArray([0, 1]) != PropertyArray([1, 1])
        assert "length=2" in repr(PropertyArray([0, 1]))

    def test_ends_read_only(self):
        prop = PropertyArray([0, 1])
        with pytest.raises(ValueError):
            prop.ends[0] = 1


class TestPropertyOccurrences:
    def test_paper_example4_property_occurrences(self):
        # For pattern AB and (S3, π3) of Table 1: Occ = {1, 4} 1-based = {0, 3} 0-based.
        s3 = [0, 1, 0, 0, 1, 1]  # ABAABB
        pi3 = PropertyArray([3, 3, 4, 5, 5, 5])
        assert property_occurrences([0, 1], s3, pi3) == [0, 3]

    def test_occurrence_outside_property_rejected(self):
        prop = PropertyArray.from_lengths([1, 1, 1])
        assert property_occurrences([0, 0], [0, 0, 0], prop) == []

    def test_empty_pattern(self):
        prop = PropertyArray.full(3)
        assert property_occurrences([], [0, 1, 2], prop) == [0, 1, 2, 3]
