"""Tests for repro.core.estimation (the Theorem 2 z-estimation)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_z_estimation
from repro.core.numerics import solid_count
from repro.core.weighted_string import WeightedString
from repro.errors import InvalidThresholdError


def assert_count_property(ws, estimation, z, max_length):
    """The defining property: Count_S(P, i) = ⌊z · P(X[i..] = P)⌋ for every P, i."""
    for m in range(1, max_length + 1):
        for pattern in itertools.product(range(ws.sigma), repeat=m):
            for start in range(len(ws) - m + 1):
                expected = solid_count(ws.occurrence_probability(pattern, start), z)
                assert estimation.count(pattern, start) == expected, (
                    pattern,
                    start,
                    z,
                )


class TestShape:
    def test_width_is_floor_z(self, paper_example):
        assert build_z_estimation(paper_example, 4).width == 4
        assert build_z_estimation(paper_example, 5.5).width == 5

    def test_length_matches_source(self, paper_example, paper_estimation):
        assert paper_estimation.length == len(paper_example)

    def test_invalid_z_rejected(self, paper_example):
        with pytest.raises(InvalidThresholdError):
            build_z_estimation(paper_example, 0.5)

    def test_strings_and_properties_shapes(self, paper_estimation):
        assert paper_estimation.strings.shape == (4, 6)
        assert paper_estimation.ends.shape == (4, 6)

    def test_property_arrays_are_valid(self, paper_estimation):
        for j in range(paper_estimation.width):
            prop = paper_estimation.property_array(j)  # raises if malformed
            assert len(prop) == 6

    def test_text_and_repr(self, paper_estimation):
        assert len(paper_estimation.text(0)) == 6
        assert "width=4" in repr(paper_estimation)

    def test_empty_source(self):
        from repro.core.alphabet import Alphabet

        ws = WeightedString(np.zeros((0, 2)), Alphabet("AB"))
        estimation = build_z_estimation(ws, 4)
        assert estimation.length == 0 and estimation.width == 4


class TestCountProperty:
    def test_paper_example(self, paper_example, paper_estimation):
        assert_count_property(paper_example, paper_estimation, 4, max_length=6)

    def test_paper_example_counts_match_example4(self, paper_example, paper_estimation):
        alphabet = paper_example.alphabet
        assert paper_estimation.count(alphabet.encode("AB"), 0) == 2
        assert paper_estimation.count(alphabet.encode("A"), 0) == 4
        assert paper_estimation.count(alphabet.encode("AAA"), 0) == 1

    @pytest.mark.parametrize("z", [1, 2, 3, 8, 16])
    def test_count_property_various_z(self, paper_example, z):
        estimation = build_z_estimation(paper_example, z)
        assert_count_property(paper_example, estimation, z, max_length=4)

    @pytest.mark.parametrize("seed", range(6))
    def test_count_property_random_strings(self, random_weighted_string_factory, seed):
        ws = random_weighted_string_factory(9, sigma=3, uncertain_fraction=0.7, seed=seed)
        z = [2, 3, 4, 8, 5.5, 16][seed]
        estimation = build_z_estimation(ws, z)
        assert_count_property(ws, estimation, z, max_length=4)

    def test_occurrence_equivalence(self, paper_example, paper_estimation):
        # Count >= 1 exactly at the z-valid occurrence positions.
        for m in range(1, 5):
            for pattern in itertools.product(range(2), repeat=m):
                assert paper_estimation.occurrences(pattern) == paper_example.occurrences(
                    pattern, 4
                )

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        length=st.integers(min_value=1, max_value=7),
        z=st.sampled_from([1, 2, 4, 8, 3.5]),
    )
    def test_count_property_hypothesis(self, data, length, z):
        sigma = 2
        rows = []
        for _ in range(length):
            weights = data.draw(
                st.lists(st.integers(min_value=0, max_value=4), min_size=sigma, max_size=sigma)
            )
            if sum(weights) == 0:
                weights[0] = 1
            total = sum(weights)
            rows.append({"A": weights[0] / total, "B": weights[1] / total})
        ws = WeightedString.from_dicts(rows)
        if ws.sigma == 1:
            return
        estimation = build_z_estimation(ws, z)
        assert_count_property(ws, estimation, z, max_length=min(4, length))


class TestDerivedQuantities:
    def test_valid_lengths_consistency(self, paper_estimation):
        lengths = paper_estimation.valid_lengths()
        assert lengths.shape == (4, 6)
        assert (lengths <= np.arange(6, 0, -1)[None, :]).all()

    def test_covers(self, paper_estimation):
        for j in range(4):
            for start in range(6):
                length = int(paper_estimation.valid_lengths()[j, start])
                assert paper_estimation.covers(j, start, length)
                assert not paper_estimation.covers(j, start, length + 1)

    def test_empty_pattern_count(self, paper_estimation):
        assert paper_estimation.count([], 3) == 4

    def test_out_of_range_count(self, paper_estimation):
        assert paper_estimation.count([0], 99) == 0

    def test_size_accounting(self, paper_estimation):
        assert paper_estimation.property_suffix_count() > 0
        assert paper_estimation.total_valid_length() >= paper_estimation.property_suffix_count()
        assert paper_estimation.nbytes() > 0
