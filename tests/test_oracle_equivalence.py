"""Cross-index oracle harness: every variant must equal brute force exactly.

A seeded randomized sweep over alphabet size σ, threshold z (integral and
fractional) and window length ℓ: for each generated weighted string, all six
index variants (WST, WSA, MWST, MWSA, MWST-G, MWSA-G) plus the
space-efficient construction, the sharded architecture (a 3-shard MWSA whose
overlap makes boundary-straddling patterns exact) and the batch engine must
return exactly the brute-force ``Occ_{1/z}`` oracle on a mixed pattern
workload (valid samples from the z-estimation, uniform random patterns, and
mutated valid patterns).

With 54 seeded cases and every variant checked in each, this exceeds the
50-cases-per-variant bar and pins the query semantics while hot paths are
rewritten.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.alphabet import Alphabet
from repro.core.estimation import build_z_estimation
from repro.core.weighted_string import WeightedString
from repro.datasets.patterns import mutate_pattern, sample_valid_patterns
from repro.indexes import brute_force_occurrences, build_index

#: The paper's six variants, the space-efficient construction, and the
#: sharded architecture (built as 3 overlapping MWSA shards).
VARIANTS = ("WST", "WSA", "MWST", "MWSA", "MWST-G", "MWSA-G", "MWST-SE", "SHARDED")
BASELINES = ("WST", "WSA")

#: (σ, z, ℓ, n) sweeps; z includes fractional thresholds.
CONFIGS = (
    (2, 2.0, 3, 34),
    (2, 4.0, 4, 40),
    (2, 8.0, 5, 46),
    (3, 2.0, 4, 36),
    (3, 4.0, 3, 42),
    (3, 6.5, 5, 38),
    (4, 2.0, 5, 40),
    (4, 4.0, 6, 44),
    (5, 3.0, 4, 36),
)
SEEDS = tuple(range(6))

CASES = [
    pytest.param(sigma, z, ell, n, seed, id=f"s{sigma}-z{z:g}-l{ell}-seed{seed}")
    for (sigma, z, ell, n) in CONFIGS
    for seed in SEEDS
]


def random_source(n: int, sigma: int, seed: int) -> WeightedString:
    """A reproducible weighted string mixing certain and uncertain positions."""
    rng = np.random.default_rng(seed * 1000 + n + sigma)
    alphabet = Alphabet([chr(ord("A") + code) for code in range(sigma)])
    matrix = np.zeros((n, sigma), dtype=np.float64)
    for position in range(n):
        if rng.random() < 0.5:
            weights = rng.choice([0.0, 1.0, 1.0, 2.0, 4.0], size=sigma)
            if weights.sum() == 0.0:
                weights[rng.integers(sigma)] = 1.0
            matrix[position] = weights / weights.sum()
        else:
            matrix[position, rng.integers(sigma)] = 1.0
    return WeightedString(matrix, alphabet)


def pattern_workload(source, estimation, z, ell, seed) -> list[list[int]]:
    """Valid, random and mutated patterns spanning both sides of ℓ and 2ℓ-1."""
    rng = np.random.default_rng(seed + 99)
    patterns: list[list[int]] = []
    for m in (ell, ell + 1, 2 * ell - 1, 2 * ell):
        if m > len(source):
            continue
        try:
            patterns.extend(
                sample_valid_patterns(
                    source, z, m=m, count=2, estimation=estimation, seed=seed + m
                )
            )
        except Exception:
            pass  # no valid window of this length under this z — fine
        patterns.append(
            [int(code) for code in rng.integers(0, source.sigma, size=m)]
        )
    mutated = [
        mutate_pattern(pattern, source.sigma, 1, seed=seed + index)
        for index, pattern in enumerate(patterns[:4])
    ]
    return patterns + mutated


@pytest.mark.parametrize("sigma,z,ell,n,seed", CASES)
def test_all_variants_match_brute_force_oracle(sigma, z, ell, n, seed):
    source = random_source(n, sigma, seed)
    estimation = build_z_estimation(source, z)
    patterns = pattern_workload(source, estimation, z, ell, seed)
    assert patterns, "workload generation produced no patterns"
    oracle = {
        tuple(pattern): brute_force_occurrences(source, pattern, z)
        for pattern in patterns
    }
    for kind in VARIANTS:
        if kind == "SHARDED":
            index = build_index(
                source, z, kind="MWSA", ell=ell, shards=3, max_pattern_len=2 * ell
            )
        else:
            index = build_index(source, z, kind=kind, ell=ell, estimation=estimation)
        supported = [
            pattern
            for pattern in patterns
            if len(pattern) >= index.minimum_pattern_length
        ]
        for pattern in supported:
            assert index.locate(pattern) == oracle[tuple(pattern)], (
                f"{kind} disagrees with the oracle on {pattern}"
            )
        # The batch engine must agree with the oracle (hence with locate).
        batch = index.match_many(supported)
        assert batch == [oracle[tuple(pattern)] for pattern in supported], (
            f"{kind} batch engine disagrees with the oracle"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_baselines_match_oracle_on_short_patterns(seed):
    """Baselines also serve patterns below ℓ, down to single letters."""
    source = random_source(30, 3, seed)
    z = 4.0
    estimation = build_z_estimation(source, z)
    rng = np.random.default_rng(seed)
    patterns = [
        [int(code) for code in rng.integers(0, source.sigma, size=m)]
        for m in (1, 2, 3)
        for _ in range(3)
    ]
    for kind in BASELINES:
        index = build_index(source, z, kind=kind, estimation=estimation)
        for pattern in patterns:
            assert index.locate(pattern) == brute_force_occurrences(
                source, pattern, z
            )
        assert index.match_many(patterns) == [
            brute_force_occurrences(source, pattern, z) for pattern in patterns
        ]
