"""Tests for repro.datasets (generators, registry, pattern samplers)."""

import numpy as np
import pytest

from repro.core.numerics import is_solid_probability
from repro.datasets import (
    DATASETS,
    dataset_characteristics,
    dirichlet_weighted_string,
    efm_like,
    generate_genomic_dataset,
    human_like,
    load_dataset,
    mutate_pattern,
    paper_pattern_count,
    random_weighted_string,
    reduce_alphabet,
    rssi_family,
    rssi_like,
    sample_random_patterns,
    sample_valid_patterns,
    sars_like,
    scale_length,
    sparse_uncertainty_string,
)
from repro.errors import DatasetError


class TestSyntheticGenerators:
    def test_random_weighted_string_shape(self):
        ws = random_weighted_string(50, sigma=4, seed=1)
        assert len(ws) == 50 and ws.sigma == 4

    def test_random_weighted_string_reproducible(self):
        assert random_weighted_string(20, seed=7) == random_weighted_string(20, seed=7)

    def test_dirichlet_is_fully_uncertain(self):
        ws = dirichlet_weighted_string(40, sigma=4, seed=2)
        assert ws.delta == 1.0

    def test_dirichlet_concentration_validation(self):
        with pytest.raises(DatasetError):
            dirichlet_weighted_string(10, concentration=0.0)

    def test_sparse_uncertainty_delta(self):
        ws = sparse_uncertainty_string(2000, delta=0.05, seed=3)
        assert 0.03 <= ws.delta <= 0.07

    def test_sparse_uncertainty_validation(self):
        with pytest.raises(DatasetError):
            sparse_uncertainty_string(10, delta=1.5)
        with pytest.raises(DatasetError):
            sparse_uncertainty_string(10, second_allele_weight=0.0)

    def test_negative_length_rejected(self):
        with pytest.raises(DatasetError):
            random_weighted_string(-1)


class TestGenomicDatasets:
    def test_sars_characteristics(self):
        dataset = sars_like(3000, seed=1)
        description = dataset.describe()
        assert description["sigma"] == 4
        assert description["samples"] == 1_181
        assert 2.0 <= description["delta_percent"] <= 5.5

    def test_efm_and_human_presets(self):
        assert efm_like(1000, seed=2).weighted_string.sigma == 4
        assert human_like(1000, seed=2).weighted_string.sigma == 4

    def test_snp_frequencies_are_population_counts(self):
        dataset = generate_genomic_dataset("X", 500, samples=100, delta=0.1, seed=4)
        for snp in dataset.snps:
            assert 0 < snp.alternative_frequency < 1
            assert abs(snp.alternative_frequency * 100 - round(snp.alternative_frequency * 100)) < 1e-9

    def test_snp_rows_exportable(self):
        dataset = generate_genomic_dataset("X", 200, samples=10, delta=0.1, seed=5)
        row = dataset.snps[0].as_row()
        assert set(row) == {"position", "reference", "alternative", "frequency"}

    def test_generation_validation(self):
        with pytest.raises(DatasetError):
            generate_genomic_dataset("X", -1, 10, 0.1)
        with pytest.raises(DatasetError):
            generate_genomic_dataset("X", 10, 0, 0.1)
        with pytest.raises(DatasetError):
            generate_genomic_dataset("X", 10, 10, 1.5)

    def test_probabilities_sum_to_one(self):
        dataset = generate_genomic_dataset("X", 300, samples=50, delta=0.2, seed=6)
        sums = dataset.weighted_string.matrix.sum(axis=1)
        assert np.allclose(sums, 1.0)


class TestRSSIDatasets:
    def test_rssi_characteristics(self):
        ws = rssi_like(300, seed=1)
        assert ws.sigma == 91
        assert ws.delta > 0.9  # essentially all positions uncertain

    def test_scale_length(self):
        base = rssi_like(100, seed=2)
        doubled = scale_length(base, 2)
        assert len(doubled) == 200
        assert np.allclose(doubled.matrix[:100], base.matrix)

    def test_reduce_alphabet(self):
        base = rssi_like(100, seed=3)
        reduced = reduce_alphabet(base, 16)
        assert reduced.sigma == 16
        assert np.allclose(reduced.matrix.sum(axis=1), 1.0)

    def test_rssi_family_combines_rules(self):
        base = rssi_like(80, seed=4)
        variant = rssi_family(base, sigma=32, length_factor=2)
        assert variant.sigma == 32 and len(variant) == 160

    def test_validation(self):
        base = rssi_like(20, seed=5)
        with pytest.raises(DatasetError):
            scale_length(base, 0)
        with pytest.raises(DatasetError):
            reduce_alphabet(base, 1)
        with pytest.raises(DatasetError):
            rssi_like(-1)


class TestRegistry:
    def test_registry_contains_paper_datasets(self):
        assert set(DATASETS) == {"SARS", "EFM", "HUMAN", "RSSI"}

    def test_load_dataset_by_name(self):
        ws = load_dataset("sars", length=500)
        assert len(ws) == 500 and ws.sigma == 4

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("EBOLA")

    def test_characteristics_columns(self):
        characteristics = dataset_characteristics("RSSI", length=300)
        assert characteristics["sigma"] == 91
        assert characteristics["paper_length"] == 6_053_462
        assert characteristics["default_z"] == 16

    def test_default_z_values_match_paper(self):
        assert DATASETS["SARS"].default_z == 1024
        assert DATASETS["EFM"].default_z == 128
        assert DATASETS["HUMAN"].default_z == 8
        assert DATASETS["RSSI"].default_z == 16


class TestPatternSamplers:
    def test_paper_pattern_count(self):
        assert paper_pattern_count(35_194_566, 32) == 5_631_130
        assert paper_pattern_count(100, 2, cap=10) == 1
        assert paper_pattern_count(10_000, 8, cap=10) == 10

    def test_valid_patterns_have_occurrences(self, small_genomic_string):
        z, m = 16, 12
        patterns = sample_valid_patterns(small_genomic_string, z, m, 10, seed=0)
        assert len(patterns) == 10
        for pattern in patterns:
            assert len(pattern) == m
            probability = max(
                small_genomic_string.occurrence_probability(pattern, start)
                for start in range(len(small_genomic_string) - m + 1)
            )
            assert is_solid_probability(probability, z)

    def test_valid_pattern_validation(self, paper_example):
        with pytest.raises(DatasetError):
            sample_valid_patterns(paper_example, 4, 0, 1)
        with pytest.raises(DatasetError):
            sample_valid_patterns(paper_example, 4, 99, 1)

    def test_random_patterns(self, paper_example):
        patterns = sample_random_patterns(paper_example, 3, 5, seed=1)
        assert len(patterns) == 5
        assert all(len(pattern) == 3 for pattern in patterns)

    def test_mutate_pattern(self):
        pattern = [0, 0, 0, 0]
        mutated = mutate_pattern(pattern, sigma=4, mutations=2, seed=3)
        assert len(mutated) == 4
        assert sum(1 for a, b in zip(pattern, mutated) if a != b) == 2

    def test_mutate_pattern_validation(self):
        with pytest.raises(DatasetError):
            mutate_pattern([0], 2, -1)
        assert mutate_pattern([], 2, 1) == []
